//! Persistent non-temporal logs (`sls_ntflush`).
//!
//! Databases replace their write-ahead logs with this primitive: an
//! append-only log in the object store with a *low-latency synchronous
//! flush* that bypasses the checkpoint cycle. On restore, the application
//! reads the log tail and repairs its structures — exactly the
//! RocksDB/Redis port strategy of §4.
//!
//! Each flush is a store mini-commit (journal append + superblock flip);
//! the previous mini-commit is garbage-collected in place, so the log
//! adds a bounded number of checkpoints to the store.

use aurora_posix::fd::{FileKind, OpenFile};
use aurora_posix::{Fd, Pid};
use aurora_sim::codec::{Decoder, Encoder};
use aurora_sim::error::{Error, Result};
use aurora_vm::{PageData, PAGE_SIZE};

use crate::serialize::key_ntlog;
use crate::{GroupId, Host};

/// Live state of one persistent log.
#[derive(Debug, Clone, Copy)]
pub struct NtLogState {
    /// Store object holding the log bytes.
    pub oid: u64,
    /// Committed length in bytes.
    pub len: u64,
}

impl NtLogState {
    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.oid);
        e.u64(self.len);
        e.into_vec()
    }

    fn decode(bytes: &[u8]) -> Result<NtLogState> {
        let mut d = Decoder::new(bytes);
        Ok(NtLogState {
            oid: d.u64()?,
            len: d.u64()?,
        })
    }
}

impl Host {
    /// Creates a persistent log for `gid`, returning a descriptor in
    /// `pid` and the log id (stable across restore).
    pub fn ntlog_create(&mut self, gid: GroupId, pid: Pid) -> Result<(Fd, u64)> {
        let (log_id, oid) = {
            let group = self.sls.group_mut(gid)?;
            let log_id = group.next_ntlog;
            group.next_ntlog += 1;
            let oid = group.alloc_oid();
            group.ntlogs.insert(log_id, NtLogState { oid: oid.0, len: 0 });
            (log_id, oid)
        };
        {
            let mut store = self.sls.primary.borrow_mut();
            store.create_object(oid, 1 << 30)?;
            store.put_blob(
                &key_ntlog(gid.0, log_id),
                NtLogState { oid: oid.0, len: 0 }.encode(),
            );
        }
        let fd = self.install_ntlog_fd(pid, log_id)?;
        Ok((fd, log_id))
    }

    /// Installs a descriptor for an existing log (restored applications
    /// already hold one from the image; this is for fresh opens).
    pub fn install_ntlog_fd(&mut self, pid: Pid, log_id: u64) -> Result<Fd> {
        self.kernel.install_file(pid, OpenFile::new(FileKind::NtLog(log_id)))
    }

    fn ntlog_state(&mut self, gid: GroupId, log_id: u64) -> Result<NtLogState> {
        if let Some(state) = self
            .sls
            .group_ref(gid)
            .ok()
            .and_then(|g| g.ntlogs.get(&log_id))
        {
            return Ok(*state);
        }
        // Restored group: recover the state from the store head.
        let state = {
            let store = self.sls.primary.borrow_mut();
            let head = store
                .head()
                .ok_or_else(|| Error::not_found("store has no checkpoints"))?;
            let blob = store
                .get_blob(head, &key_ntlog(gid.0, log_id))?
                .ok_or_else(|| Error::not_found(format!("ntlog {log_id}")))?;
            NtLogState::decode(&blob)?
        };
        if let Ok(group) = self.sls.group_mut(gid) {
            group.ntlogs.insert(log_id, state);
        }
        Ok(state)
    }

    fn log_id_of(&self, pid: Pid, fd: Fd) -> Result<u64> {
        let fid = self.kernel.proc_ref(pid)?.fds.get(fd)?;
        match self
            .kernel
            .files
            .get(fid.0)
            .ok_or_else(|| Error::bad_fd("stale file"))?
            .kind
        {
            FileKind::NtLog(id) => Ok(id),
            _ => Err(Error::invalid("descriptor is not an sls log")),
        }
    }

    /// `sls_ntflush()`: appends `data` and synchronously flushes it.
    ///
    /// Returns once the bytes are power-loss-safe — the virtual clock
    /// advances to the durable instant (tens of microseconds on NVMe,
    /// far cheaper than an fsync-grade filesystem journal commit).
    pub fn sls_ntflush(&mut self, gid: GroupId, pid: Pid, fd: Fd, data: &[u8]) -> Result<()> {
        let log_id = self.log_id_of(pid, fd)?;
        let mut state = self.ntlog_state(gid, log_id)?;
        let oid = aurora_objstore::ObjId(state.oid);
        {
            let mut store = self.sls.primary.borrow_mut();
            // Append page-wise (read-modify-write the partial tail).
            let mut pos = state.len;
            let end = state.len + data.len() as u64;
            while pos < end {
                let page_idx = pos / PAGE_SIZE as u64;
                let page_off = (pos % PAGE_SIZE as u64) as usize;
                let n = ((PAGE_SIZE - page_off) as u64).min(end - pos) as usize;
                let src = &data[(pos - state.len) as usize..(pos - state.len) as usize + n];
                let page = if page_off == 0 && n == PAGE_SIZE {
                    PageData::from_bytes(src)
                } else {
                    store
                        .read_page(oid, page_idx)?
                        .unwrap_or(PageData::Zero)
                        .write(page_off, src)
                };
                store.write_page(oid, page_idx, &page)?;
                pos += n as u64;
            }
            state.len = end;
            store.put_blob(&key_ntlog(gid.0, log_id), state.encode());
            // Low-latency durability: mini-commit and wait for it.
            let (ckpt, durable) = store.commit(None)?;
            self.clock.advance_to(durable);
            // GC the previous mini-commit (bounded store growth). The
            // group may be unregistered (log addressed by its original
            // namespace after a reboot); skip the GC bookkeeping then.
            let prev = self.sls.groups.get_mut(&gid.0).map(|group| {
                let prev = group.last_ntflush_ckpt.replace(ckpt);
                group.ntlogs.insert(log_id, state);
                prev
            });
            if let Some(Some(prev)) = prev {
                if Some(prev) != store.head() {
                    let _ = store.delete_checkpoint(prev);
                }
            }
        }
        Ok(())
    }

    /// Reads the whole committed log (the restore-time repair path).
    pub fn ntlog_read(&mut self, gid: GroupId, pid: Pid, fd: Fd) -> Result<Vec<u8>> {
        let log_id = self.log_id_of(pid, fd)?;
        let state = self.ntlog_state(gid, log_id)?;
        let oid = aurora_objstore::ObjId(state.oid);
        let store = self.sls.primary.borrow_mut();
        let mut out = Vec::with_capacity(state.len as usize);
        let mut pos = 0u64;
        while pos < state.len {
            let page_idx = pos / PAGE_SIZE as u64;
            let n = (PAGE_SIZE as u64).min(state.len - pos) as usize;
            let page = store.read_page(oid, page_idx)?.unwrap_or(PageData::Zero);
            let mut buf = vec![0u8; n];
            page.read(0, &mut buf);
            out.extend_from_slice(&buf);
            pos += n as u64;
        }
        Ok(out)
    }

    /// Truncates the log (after the application checkpointed the state
    /// the log protects). Durable like a flush.
    pub fn ntlog_truncate(&mut self, gid: GroupId, pid: Pid, fd: Fd) -> Result<()> {
        let log_id = self.log_id_of(pid, fd)?;
        let mut state = self.ntlog_state(gid, log_id)?;
        state.len = 0;
        let mut store = self.sls.primary.borrow_mut();
        store.put_blob(&key_ntlog(gid.0, log_id), state.encode());
        let (ckpt, durable) = store.commit(None)?;
        self.clock.advance_to(durable);
        let prev = self.sls.groups.get_mut(&gid.0).map(|group| {
            group.ntlogs.insert(log_id, state);
            group.last_ntflush_ckpt.replace(ckpt)
        });
        if let Some(Some(prev)) = prev {
            if Some(prev) != store.head() {
                let _ = store.delete_checkpoint(prev);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ntlog_state_roundtrip() {
        for state in [
            NtLogState { oid: 0, len: 0 },
            NtLogState { oid: 7, len: 4096 },
            NtLogState { oid: u64::MAX, len: u64::MAX },
        ] {
            let bytes = state.encode();
            let out = NtLogState::decode(&bytes).unwrap();
            assert_eq!(out.oid, state.oid);
            assert_eq!(out.len, state.len);
        }
    }

    #[test]
    fn ntlog_state_truncated_rejected() {
        let bytes = NtLogState { oid: 1, len: 2 }.encode();
        assert!(NtLogState::decode(&bytes[..bytes.len() - 1]).is_err());
    }
}
