//! Seeded crash campaigns: randomized fault schedules driven through a
//! checkpoint → crash → recover → restore loop.
//!
//! A campaign expands one seed into hundreds of fault schedules (see
//! [`aurora_hw::fault::FaultPlan::random`]) and runs each against a
//! fresh host. Every schedule checkpoints a small workload under
//! injected power cuts, transient I/O errors and latency spikes, then
//! crashes the machine and checks two invariants after recovery:
//!
//! 1. **Consistency** — [`aurora_objstore::ObjectStore::scrub`] reports
//!    no problems: metadata is intact and every page of every surviving
//!    checkpoint matches its recorded content hash.
//! 2. **Atomicity** — every checkpoint that survived recovery restores
//!    to exactly the memory state captured at its barrier; recovery
//!    never surfaces a torn or mixed state.
//!
//! The harness records the expected state *before* each checkpoint
//! attempt: a crash can land after the commit record but before the
//! call returns, so a checkpoint may be durable even though the caller
//! saw an abort. Whatever subset of attempts survives, each survivor
//! must match its recorded state bit-for-bit.
//!
//! Faults are armed only while the workload runs; the plan is cleared
//! before each simulated reboot so recovery and verification execute on
//! healthy hardware (the model for "the operator replaced the cable").

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use aurora_hw::{
    BlockDev, DevHealth, FaultPlan, FaultRates, LinkFaultRates, MirrorDev, ModelDev, ReplicaState,
    ResilientDev,
};
use aurora_objstore::{CkptId, ObjectStore, StoreConfig};
use aurora_sim::error::{Error, Result};
use aurora_sim::time::SimDuration;
use aurora_sim::SimClock;
use aurora_slsfs::StoreHandle;

use crate::fleet::TenantHealth;
use crate::replicate::{promote_to_host, ReplConfig};
use crate::restore::RestoreMode;
use crate::{CheckpointOutcome, GroupId, Host};

/// Golden-ratio multiplier for deriving per-schedule seeds.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Parameters of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; schedule `i` uses `seed ^ (i * GOLDEN)`.
    pub seed: u64,
    /// Number of independent fault schedules to run.
    pub schedules: u64,
    /// Checkpoint rounds per schedule (round 0 is a fault-free
    /// baseline so recovery always has a durable state to land on).
    pub rounds: u32,
    /// Fault rates applied from round 1 onward.
    pub rates: FaultRates,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xa070_5175,
            schedules: 200,
            rounds: 6,
            rates: FaultRates::flaky(),
        }
    }
}

/// Aggregate results of a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Schedules completed.
    pub schedules: u64,
    /// Checkpoints that committed (including degraded-to-full).
    pub committed: u64,
    /// Checkpoints that degraded from incremental to full.
    pub degraded: u64,
    /// Checkpoints that committed with a degraded mirror (a replica
    /// detached, rebuilding, or unhealthy).
    pub degraded_mirror: u64,
    /// Checkpoints aborted by exhausted retries or a dead device.
    pub aborted: u64,
    /// Simulated whole-machine crashes (and recoveries).
    pub crashes: u64,
    /// Surviving checkpoints restored and compared against their
    /// recorded expected state.
    pub restores_verified: u64,
    /// Transient write errors absorbed by retries across all schedules.
    pub transient_absorbed: u64,
    /// Writes that needed at least one retry across all schedules.
    pub writes_retried: u64,
    /// Mirror read failovers (a preferred replica failed mid-read and a
    /// twin served the data) across all schedules.
    pub failovers: u64,
    /// Blocks the mirror rewrote from a twin during read repair.
    pub read_repairs: u64,
    /// Invariant violations; empty means the campaign passed.
    pub violations: Vec<String>,
}

impl CampaignReport {
    /// True when no schedule violated an invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary for logs and the CLI.
    pub fn summary(&self) -> String {
        format!(
            "{} schedules: {} committed ({} degraded, {} degraded-mirror), \
             {} aborted, {} crashes, {} restores verified, \
             {} transient errors absorbed, {} violations",
            self.schedules,
            self.committed,
            self.degraded,
            self.degraded_mirror,
            self.aborted,
            self.crashes,
            self.restores_verified,
            self.transient_absorbed,
            self.violations.len()
        )
    }
}

/// Reads the campaign size from `AURORA_CRASH_ITERS`, falling back to
/// `default`. CI runs a short fixed-seed campaign on every push and
/// scales up through this variable on nightly runs.
pub fn schedules_from_env(default: u64) -> u64 {
    std::env::var("AURORA_CRASH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs a full campaign: `cfg.schedules` independent fault schedules,
/// each on a fresh host. Schedule failures that prevent the loop itself
/// from making progress (boot errors, recovery errors) are recorded as
/// violations rather than panics so one bad seed cannot hide the rest.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut report = CampaignReport::default();
    for idx in 0..cfg.schedules {
        if let Err(e) = run_schedule(cfg, idx, &mut report) {
            report
                .violations
                .push(format!("schedule {idx}: harness error: {e}"));
        }
        report.schedules += 1;
    }
    report
}

/// Boots a host on a fresh simulated NVMe device.
fn boot_host() -> Result<Host> {
    boot_host_config(StoreConfig {
        journal_blocks: 512,
        ..StoreConfig::default()
    })
}

/// Boots a campaign host with an explicit store configuration.
fn boot_host_config(config: StoreConfig) -> Result<Host> {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 64 * 1024));
    Host::boot("campaign", dev, config)
}

/// Arms a randomized fault schedule on the primary device.
fn arm_faults(host: &mut Host, seed: u64, rates: FaultRates) {
    host.sls
        .primary
        .borrow_mut()
        .device_mut()
        .install_fault_plan(FaultPlan::random(seed, rates));
}

/// Clears any armed fault plan so recovery runs on healthy hardware.
fn disarm_faults(host: &mut Host) {
    host.sls
        .primary
        .borrow_mut()
        .device_mut()
        .install_fault_plan(FaultPlan::default());
}

/// Runs one fault schedule end to end.
fn run_schedule(cfg: &CampaignConfig, idx: u64, report: &mut CampaignReport) -> Result<()> {
    let schedule_seed = cfg.seed ^ idx.wrapping_mul(GOLDEN);
    let mut host = boot_host()?;
    let mut pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, 4 * 4096, false)?;
    let mut gid = host.persist("app", pid)?;

    // Expected memory state per checkpoint name, recorded BEFORE each
    // attempt (the commit record may survive a crash mid-call).
    let mut expected: HashMap<String, Vec<u8>> = HashMap::new();
    // Bumped on every re-arm so a schedule that keeps crashing at the
    // same write does not replay the identical decision forever.
    let mut segment: u64 = 0;

    for round in 0..cfg.rounds {
        let tag = format!("s{idx:04}-r{round:03}");
        host.kernel.mem_write(pid, addr, tag.as_bytes())?;
        let name = format!("r{round}");
        expected.insert(name.clone(), tag.into_bytes());

        let result = host.checkpoint(gid, round == 0, Some(&name));
        let crash_now = match result {
            Ok(bd) => {
                match bd.outcome {
                    CheckpointOutcome::Committed => report.committed += 1,
                    CheckpointOutcome::DegradedToFull => {
                        report.committed += 1;
                        report.degraded += 1;
                    }
                    CheckpointOutcome::DegradedMirror => {
                        report.committed += 1;
                        report.degraded_mirror += 1;
                    }
                    // No standby is attached on this path; the arm keeps
                    // the match exhaustive.
                    CheckpointOutcome::DegradedReplication => report.committed += 1,
                    CheckpointOutcome::Aborted => report.aborted += 1,
                    // This path drives `Host::checkpoint` directly, not
                    // the fleet scheduler, so quarantine never fires;
                    // the arm keeps the match exhaustive.
                    CheckpointOutcome::Quarantined => report.aborted += 1,
                }
                if bd.outcome.committed() {
                    host.clock.advance_to(bd.durable_at);
                }
                // A power cut mid-flush leaves the device dead; that is
                // the machine crashing, not an error to report.
                host.sls.primary.borrow().device().health() == DevHealth::Dead
            }
            Err(e) => {
                let dead = host.sls.primary.borrow().device().health() == DevHealth::Dead;
                if !dead {
                    report.violations.push(format!(
                        "schedule {idx} round {round}: checkpoint error on live device: {e}"
                    ));
                }
                report.aborted += 1;
                true
            }
        };

        if round == 0 {
            // Baseline is durable; arm the randomized schedule.
            arm_faults(&mut host, schedule_seed, cfg.rates);
        }

        if crash_now || round + 1 == cfg.rounds {
            disarm_faults(&mut host);
            host = host.crash_and_reboot()?;
            report.crashes += 1;
            verify_recovered(&mut host, addr, &expected, idx, report);

            // Resume the workload from the newest surviving checkpoint.
            let store = host.sls.primary.clone();
            let head = store
                .borrow()
                .head()
                .ok_or_else(|| Error::internal("no durable checkpoint after reboot"))?;
            let r = host.restore(&store, head, RestoreMode::Eager)?;
            pid = r
                .root_pid()
                .ok_or_else(|| Error::internal("restore returned no root pid"))?;
            drop(store);
            gid = host.persist("app", pid)?;

            if round + 1 < cfg.rounds {
                segment += 1;
                arm_faults(
                    &mut host,
                    schedule_seed ^ segment.wrapping_mul(GOLDEN),
                    cfg.rates,
                );
            }
        }
    }

    let rs = host.sls.primary.borrow().device().retry_stats();
    report.transient_absorbed += rs.transient_absorbed;
    report.writes_retried += rs.writes_retried;
    Ok(())
}

/// Power-cut sweep across the parallel coalesced flush.
///
/// The randomized campaign samples the fault space; this sweep walks it
/// exhaustively for the failure mode write coalescing introduces: a cut
/// *inside* a multi-block extent write. Each iteration boots a
/// materialized store (page bytes really go through the device), takes
/// a durable baseline, dirties a working set wide enough to coalesce
/// into several extents, then arms a power cut at exactly the `n`-th
/// device write and checkpoints with the 4-worker parallel flush. After
/// the crash, recovery must find a consistent store (`scrub` re-hashes
/// every surviving page, so a torn extent that leaked into a committed
/// checkpoint cannot hide) and every surviving checkpoint must restore
/// to its recorded pre-checkpoint state.
pub fn run_power_cut_sweep(cuts: u64, workers: usize) -> CampaignReport {
    let mut report = CampaignReport::default();
    for n in 1..=cuts {
        if let Err(e) = run_power_cut_iteration(n, workers, &mut report) {
            report
                .violations
                .push(format!("power-cut {n}: harness error: {e}"));
        }
        report.schedules += 1;
    }
    report
}

/// Pages dirtied per sweep round — enough to span several coalesced
/// extents even after dedup.
const SWEEP_PAGES: u64 = 96;

/// One sweep iteration: cut power at device write `n` mid-flush.
fn run_power_cut_iteration(n: u64, workers: usize, report: &mut CampaignReport) -> Result<()> {
    let mut host = boot_host_config(StoreConfig {
        journal_blocks: 512,
        materialize_data: true,
        ..StoreConfig::default()
    })?;
    host.sls.flush_workers = workers;
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, SWEEP_PAGES * 4096, false)?;
    let gid = host.persist("app", pid)?;

    let mut expected: HashMap<String, Vec<u8>> = HashMap::new();
    for round in 0..2u32 {
        let tag = format!("cut{n:04}-r{round}");
        // Distinct contents per page so nothing dedups away and the
        // flush plan really spans multiple extents.
        for p in 0..SWEEP_PAGES {
            let body = format!("{tag}-p{p:04}");
            host.kernel.mem_write(pid, addr + p * 4096, body.as_bytes())?;
        }
        expected.insert(format!("r{round}"), format!("{tag}-p0000").into_bytes());

        if round == 1 {
            arm_faults_cut(&mut host, n);
        }
        let name = format!("r{round}");
        match host.checkpoint(gid, round == 0, Some(&name)) {
            Ok(bd) => {
                if bd.outcome.committed() {
                    report.committed += 1;
                    host.clock.advance_to(bd.durable_at);
                } else {
                    report.aborted += 1;
                }
            }
            Err(e) => {
                let dead = host.sls.primary.borrow().device().health() == DevHealth::Dead;
                if !dead {
                    report.violations.push(format!(
                        "power-cut {n}: checkpoint error on live device: {e}"
                    ));
                }
                report.aborted += 1;
            }
        }
    }

    disarm_faults(&mut host);
    let mut host = host.crash_and_reboot()?;
    report.crashes += 1;
    verify_recovered(&mut host, addr, &expected, n, report);
    Ok(())
}

/// Power-cut sweep across the batched restore read pipeline.
///
/// The flush sweep proves a cut inside a coalesced *write* cannot tear
/// the store; this sweep proves the same for coalesced *reads*. Each
/// iteration boots a materialized store, commits a durable baseline
/// wide enough to span several read extents, drops every cached page so
/// the restore really hits the device, then cuts power at exactly the
/// `n`-th device read of an eager batched restore. Reads mutate
/// nothing, so after the machine reboots the store must scrub clean and
/// the baseline must restore byte-for-byte — every `n` walks the cut
/// through a different point of the read pipeline (metadata fetch,
/// first extent, mid-extent).
pub fn run_restore_power_cut_sweep(cuts: u64, workers: usize) -> CampaignReport {
    let mut report = CampaignReport::default();
    for n in 1..=cuts {
        if let Err(e) = run_restore_cut_iteration(n, workers, &mut report) {
            report
                .violations
                .push(format!("restore-cut {n}: harness error: {e}"));
        }
        report.schedules += 1;
    }
    report
}

/// One sweep iteration: cut power at device read `n` mid-restore.
fn run_restore_cut_iteration(n: u64, workers: usize, report: &mut CampaignReport) -> Result<()> {
    let mut host = boot_host_config(StoreConfig {
        journal_blocks: 512,
        materialize_data: true,
        ..StoreConfig::default()
    })?;
    host.sls.restore_workers = workers;
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, SWEEP_PAGES * 4096, false)?;
    let gid = host.persist("app", pid)?;

    let tag = format!("rcut{n:04}");
    for p in 0..SWEEP_PAGES {
        let body = format!("{tag}-p{p:04}");
        host.kernel.mem_write(pid, addr + p * 4096, body.as_bytes())?;
    }
    let mut expected: HashMap<String, Vec<u8>> = HashMap::new();
    expected.insert("r0".to_string(), format!("{tag}-p0000").into_bytes());
    let bd = host.checkpoint(gid, true, Some("r0"))?;
    host.clock.advance_to(bd.durable_at);
    report.committed += 1;
    let ckpt = bd
        .ckpt
        .ok_or_else(|| Error::internal("baseline did not commit"))?;

    // Cold start: every cached page is dropped, so the batched restore
    // must read the device — and the cut lands mid-pipeline.
    host.sls.primary.borrow_mut().drop_caches()?;
    host.sls
        .primary
        .borrow_mut()
        .device_mut()
        .install_fault_plan(FaultPlan::power_cut_on_read(n));
    let restore_result = {
        let store = host.sls.primary.clone();
        host.restore(&store, ckpt, RestoreMode::Eager)
    };
    if restore_result.is_err() {
        // The cut landed inside the restore's reads; the machine is
        // dead and the attempt is abandoned.
        report.aborted += 1;
    }

    disarm_faults(&mut host);
    let mut host = host.crash_and_reboot()?;
    report.crashes += 1;
    verify_recovered(&mut host, addr, &expected, n, report);
    Ok(())
}

/// Pages in the delta sweeps' working set — small on purpose: the point
/// is many sub-page records per round, not extent width.
const DELTA_SWEEP_PAGES: u64 = 24;

/// Rounds per delta-sweep iteration: r0 is a full baseline, r1 a
/// fault-free delta round (proving the path engages at all), r2 the
/// delta round run under the armed power cut.
const DELTA_ROUNDS: u32 = 3;

/// Chain cap used by the compaction sweep: short enough that four delta
/// rounds hit it and the final checkpoint triggers the auto-compactor.
const COMPACT_CHAIN_CAP: u32 = 4;

/// Rounds per compaction-sweep iteration: r0 base plus four delta
/// rounds; the fourth reaches [`COMPACT_CHAIN_CAP`] and its checkpoint
/// folds every chain while the cut is armed.
const COMPACT_ROUNDS: u32 = 5;

/// Boots a materialized host for the delta sweeps, optionally
/// overriding the delta chain cap.
fn delta_sweep_host(workers: usize, chain_cap: Option<u32>) -> Result<Host> {
    let mut config = StoreConfig {
        journal_blocks: 512,
        materialize_data: true,
        ..StoreConfig::default()
    };
    if let Some(cap) = chain_cap {
        config.delta_max_chain = cap;
    }
    let mut host = boot_host_config(config)?;
    host.sls.flush_workers = workers;
    Ok(host)
}

/// Page-0-anchored body written to page `p` in round `round`. Round 0
/// fills fresh pages (no committed base, so the full path applies);
/// later rounds overwrite the same small prefix so every round stages
/// one sub-page delta per page and chains grow by one per round.
fn delta_page_body(tag: &str, round: u32, p: u64) -> String {
    if round == 0 {
        format!("{tag}-base-p{p:04}")
    } else {
        format!("{tag}-r{round}-p{p:02}")
    }
}

/// Applies round `round` of the delta-sweep workload.
fn delta_round_writes(
    host: &mut Host,
    pid: aurora_posix::Pid,
    addr: u64,
    round: u32,
    tag: &str,
) -> Result<()> {
    for p in 0..DELTA_SWEEP_PAGES {
        let body = delta_page_body(tag, round, p);
        host.kernel.mem_write(pid, addr + p * 4096, body.as_bytes())?;
    }
    Ok(())
}

/// FNV-1a over a byte slice (cheap content digest for twin comparison).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Restores checkpoint `id` from the primary store, digests the whole
/// restored memory region, and tears the restored process back down.
fn restore_digest(host: &mut Host, id: CkptId, addr: u64, bytes: usize) -> Result<u64> {
    let store = host.sls.primary.clone();
    restore_digest_on(host, &store, id, addr, bytes)
}

/// Like [`restore_digest`] but restores from an explicit store — the
/// fault-domain sweep's tenants each checkpoint to their own store.
fn restore_digest_on(
    host: &mut Host,
    store: &StoreHandle,
    id: CkptId,
    addr: u64,
    bytes: usize,
) -> Result<u64> {
    let r = host.restore(store, id, RestoreMode::Eager)?;
    let np = r
        .root_pid()
        .ok_or_else(|| Error::internal("restore returned no root pid"))?;
    let mut buf = vec![0u8; bytes];
    host.kernel.mem_read(np, addr, &mut buf)?;
    let _ = host.kernel.exit(np, 0);
    host.kernel.procs.remove(&np);
    Ok(fnv1a(&buf))
}

/// Runs the delta workload on a fault-free twin host and returns the
/// full-region digest of every workload checkpoint, keyed by name. The
/// twin reboots before digesting so both sides of the comparison go
/// through the same journal-replay recovery path.
fn delta_twin_digests(
    tag: &str,
    workers: usize,
    rounds: u32,
    chain_cap: Option<u32>,
    expect_compaction: bool,
) -> Result<HashMap<String, u64>> {
    let mut host = delta_sweep_host(workers, chain_cap)?;
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, DELTA_SWEEP_PAGES * 4096, false)?;
    let gid = host.persist("app", pid)?;
    for round in 0..rounds {
        delta_round_writes(&mut host, pid, addr, round, tag)?;
        let bd = host.checkpoint(gid, round == 0, Some(&format!("r{round}")))?;
        host.clock.advance_to(bd.durable_at);
    }
    {
        let store = host.sls.primary.borrow();
        let stats = &store.stats;
        if stats.delta_records == 0 {
            return Err(Error::internal(
                "fault-free twin never staged a delta record",
            ));
        }
        if expect_compaction && stats.chains_compacted == 0 {
            return Err(Error::internal(
                "fault-free twin never triggered the chain compactor",
            ));
        }
    }
    let mut host = host.crash_and_reboot()?;
    let named: Vec<(CkptId, String)> = host
        .sls
        .primary
        .borrow()
        .checkpoints()
        .iter()
        .filter_map(|c| c.name.clone().map(|n| (c.id, n)))
        .collect();
    let mut out = HashMap::new();
    for (id, name) in named {
        // Internal checkpoints (e.g. the compactor's) are not workload
        // rounds; scrub validates them, the twin map skips them.
        if !name.starts_with('r') {
            continue;
        }
        let digest = restore_digest(&mut host, id, addr, (DELTA_SWEEP_PAGES * 4096) as usize)?;
        out.insert(name, digest);
    }
    Ok(out)
}

/// Compares every surviving workload checkpoint of a freshly recovered
/// host against the fault-free twin's digest of the same name: replay
/// of the delta log after a cut must reconstruct byte-identical memory.
fn verify_against_twin(
    host: &mut Host,
    twin: &HashMap<String, u64>,
    addr: u64,
    label: &str,
    report: &mut CampaignReport,
) {
    let survivors: Vec<(CkptId, String)> = host
        .sls
        .primary
        .borrow()
        .checkpoints()
        .iter()
        .filter_map(|c| c.name.clone().map(|n| (c.id, n)))
        .collect();
    for (id, name) in survivors {
        let Some(&want) = twin.get(&name) else {
            continue;
        };
        match restore_digest(host, id, addr, (DELTA_SWEEP_PAGES * 4096) as usize) {
            Ok(got) if got == want => report.restores_verified += 1,
            Ok(got) => report.violations.push(format!(
                "{label}: checkpoint {name} digest {got:#018x} diverges from fault-free twin {want:#018x}"
            )),
            Err(e) => report.violations.push(format!(
                "{label}: digesting surviving checkpoint {name} failed: {e}"
            )),
        }
    }
}

/// Power-cut sweep across the delta-log append path.
///
/// The flush sweep proves a cut inside a coalesced full-image write
/// cannot tear the store; this sweep proves the same for the sub-page
/// delta path, where a committed checkpoint's pages are reconstructed
/// by replaying journal-resident delta records over a base image. Each
/// iteration takes a full baseline, commits one fault-free delta round
/// (and fails if the delta path never engaged), then arms a power cut
/// at exactly the `n`-th device write of a second delta round. After
/// the crash, recovery must scrub clean, every surviving checkpoint
/// must restore to its recorded state, and every survivor's full
/// restored-memory digest must match a fault-free twin run — replay
/// equivalence, not just prefix equality.
pub fn run_delta_power_cut_sweep(cuts: u64, workers: usize) -> CampaignReport {
    let mut report = CampaignReport::default();
    let twin = match delta_twin_digests("delta", workers, DELTA_ROUNDS, None, false) {
        Ok(t) => t,
        Err(e) => {
            report
                .violations
                .push(format!("delta-cut twin: harness error: {e}"));
            return report;
        }
    };
    for n in 1..=cuts {
        if let Err(e) = run_delta_cut_iteration(n, workers, &twin, &mut report) {
            report
                .violations
                .push(format!("delta-cut {n}: harness error: {e}"));
        }
        report.schedules += 1;
    }
    report
}

/// One sweep iteration: cut power at device write `n` mid-delta-flush.
fn run_delta_cut_iteration(
    n: u64,
    workers: usize,
    twin: &HashMap<String, u64>,
    report: &mut CampaignReport,
) -> Result<()> {
    let mut host = delta_sweep_host(workers, None)?;
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, DELTA_SWEEP_PAGES * 4096, false)?;
    let gid = host.persist("app", pid)?;

    let mut expected: HashMap<String, Vec<u8>> = HashMap::new();
    for round in 0..DELTA_ROUNDS {
        delta_round_writes(&mut host, pid, addr, round, "delta")?;
        let name = format!("r{round}");
        expected.insert(name.clone(), delta_page_body("delta", round, 0).into_bytes());

        if round + 1 == DELTA_ROUNDS {
            arm_faults_cut(&mut host, n);
        }
        match host.checkpoint(gid, round == 0, Some(&name)) {
            Ok(bd) => {
                if bd.outcome.committed() {
                    report.committed += 1;
                    host.clock.advance_to(bd.durable_at);
                } else {
                    report.aborted += 1;
                }
            }
            Err(e) => {
                let dead = host.sls.primary.borrow().device().health() == DevHealth::Dead;
                if !dead {
                    report.violations.push(format!(
                        "delta-cut {n}: checkpoint error on live device: {e}"
                    ));
                }
                report.aborted += 1;
            }
        }
        if round == 1 && host.sls.primary.borrow().stats.delta_records == 0 {
            report.violations.push(format!(
                "delta-cut {n}: fault-free delta round never staged a delta record"
            ));
        }
    }

    disarm_faults(&mut host);
    let mut host = host.crash_and_reboot()?;
    report.crashes += 1;
    verify_recovered(&mut host, addr, &expected, n, report);
    verify_against_twin(&mut host, twin, addr, &format!("delta-cut {n}"), report);
    Ok(())
}

/// Power-cut sweep across the background chain compactor.
///
/// Compaction folds a delta chain back into a full base image through
/// an ordinary committed checkpoint, so a cut anywhere inside it must
/// leave either the old chain or the folded image — never a mix. Each
/// iteration builds chains up to [`COMPACT_CHAIN_CAP`] over fault-free
/// rounds, then arms a cut at device write `n` of the final round,
/// whose checkpoint both commits the capping delta and auto-triggers
/// the compactor: the ordinal walks the cut through the delta seal,
/// the superblock flip, and every write of the fold itself. Recovery
/// must scrub clean and every survivor must match the fault-free twin.
pub fn run_compact_power_cut_sweep(cuts: u64, workers: usize) -> CampaignReport {
    let mut report = CampaignReport::default();
    let twin = match delta_twin_digests(
        "compact",
        workers,
        COMPACT_ROUNDS,
        Some(COMPACT_CHAIN_CAP),
        true,
    ) {
        Ok(t) => t,
        Err(e) => {
            report
                .violations
                .push(format!("compact-cut twin: harness error: {e}"));
            return report;
        }
    };
    for n in 1..=cuts {
        if let Err(e) = run_compact_cut_iteration(n, workers, &twin, &mut report) {
            report
                .violations
                .push(format!("compact-cut {n}: harness error: {e}"));
        }
        report.schedules += 1;
    }
    report
}

/// One sweep iteration: cut power at device write `n` while the final
/// checkpoint commits the capping delta and folds every chain.
fn run_compact_cut_iteration(
    n: u64,
    workers: usize,
    twin: &HashMap<String, u64>,
    report: &mut CampaignReport,
) -> Result<()> {
    let mut host = delta_sweep_host(workers, Some(COMPACT_CHAIN_CAP))?;
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, DELTA_SWEEP_PAGES * 4096, false)?;
    let gid = host.persist("app", pid)?;

    let mut expected: HashMap<String, Vec<u8>> = HashMap::new();
    for round in 0..COMPACT_ROUNDS {
        delta_round_writes(&mut host, pid, addr, round, "compact")?;
        let name = format!("r{round}");
        expected.insert(name.clone(), delta_page_body("compact", round, 0).into_bytes());

        if round + 1 == COMPACT_ROUNDS {
            arm_faults_cut(&mut host, n);
        }
        match host.checkpoint(gid, round == 0, Some(&name)) {
            Ok(bd) => {
                if bd.outcome.committed() {
                    report.committed += 1;
                    host.clock.advance_to(bd.durable_at);
                } else {
                    report.aborted += 1;
                }
            }
            Err(e) => {
                let dead = host.sls.primary.borrow().device().health() == DevHealth::Dead;
                if !dead {
                    report.violations.push(format!(
                        "compact-cut {n}: checkpoint error on live device: {e}"
                    ));
                }
                report.aborted += 1;
            }
        }
        if round + 2 == COMPACT_ROUNDS {
            // The penultimate round ran fault-free: chains must be one
            // short of the cap, poised for the final round to fold.
            let high = host.sls.primary.borrow().stats.chain_len_max;
            if high + 1 < u64::from(COMPACT_CHAIN_CAP) {
                report.violations.push(format!(
                    "compact-cut {n}: chains only reached {high} before the final round"
                ));
            }
        }
    }

    disarm_faults(&mut host);
    let mut host = host.crash_and_reboot()?;
    report.crashes += 1;
    verify_recovered(&mut host, addr, &expected, n, report);
    verify_against_twin(&mut host, twin, addr, &format!("compact-cut {n}"), report);
    Ok(())
}

/// Rounds per fleet-sweep iteration: r0 is a serialized full baseline
/// for both tenants, r1 a fault-free pipelined round (proving cycles
/// actually overlap), r2 the pipelined round run under the armed cut.
const FLEET_ROUNDS: u32 = 3;

/// Spawns the two fleet-sweep tenants on `host`, each with its own
/// persisted group and a [`DELTA_SWEEP_PAGES`]-page arena. Both arenas
/// land at the same per-process virtual address (fresh address spaces),
/// which lets the single-address verification helpers serve both
/// tenants.
fn fleet_tenant_setup(host: &mut Host) -> Result<((aurora_posix::Pid, GroupId), (aurora_posix::Pid, GroupId), u64)> {
    let pid_a = host.kernel.spawn("tenant-a");
    let addr_a = host.kernel.mmap_anon(pid_a, DELTA_SWEEP_PAGES * 4096, false)?;
    let gid_a = host.persist("tenant-a", pid_a)?;
    let pid_b = host.kernel.spawn("tenant-b");
    let addr_b = host.kernel.mmap_anon(pid_b, DELTA_SWEEP_PAGES * 4096, false)?;
    let gid_b = host.persist("tenant-b", pid_b)?;
    if addr_a != addr_b {
        return Err(Error::internal(
            "fleet sweep tenants mapped their arenas at different addresses",
        ));
    }
    Ok(((pid_a, gid_a), (pid_b, gid_b), addr_a))
}

/// Runs the two-tenant fleet workload fault-free and returns the
/// full-region digest of every tenant checkpoint, keyed by name. Like
/// [`delta_twin_digests`], the twin reboots before digesting so both
/// sides of the comparison recover through journal replay.
fn fleet_twin_digests(workers: usize) -> Result<HashMap<String, u64>> {
    let mut host = delta_sweep_host(workers, None)?;
    let ((pid_a, gid_a), (pid_b, gid_b), addr) = fleet_tenant_setup(&mut host)?;
    for round in 0..FLEET_ROUNDS {
        delta_round_writes(&mut host, pid_a, addr, round, "a")?;
        delta_round_writes(&mut host, pid_b, addr, round, "b")?;
        if round == 0 {
            for (gid, name) in [(gid_a, "a-r0"), (gid_b, "b-r0")] {
                let bd = host.checkpoint(gid, true, Some(name))?;
                host.clock.advance_to(bd.durable_at);
            }
        } else {
            host.checkpoint_pipelined(gid_a, false, Some(&format!("a-r{round}")))?;
            host.checkpoint_pipelined(gid_b, false, Some(&format!("b-r{round}")))?;
            host.fleet_drain();
        }
    }
    if host.sls.primary.borrow().stats.delta_records == 0 {
        return Err(Error::internal(
            "fleet twin never staged a delta record",
        ));
    }
    if host.sls.fleet.stats.overlapped == 0 {
        return Err(Error::internal(
            "fleet twin never overlapped two tenants' cycles",
        ));
    }
    let mut host = host.crash_and_reboot()?;
    let named: Vec<(CkptId, String)> = host
        .sls
        .primary
        .borrow()
        .checkpoints()
        .iter()
        .filter_map(|c| c.name.clone().map(|n| (c.id, n)))
        .collect();
    let mut out = HashMap::new();
    for (id, name) in named {
        // Only the tenants' own rounds belong in the twin map.
        if !name.starts_with("a-") && !name.starts_with("b-") {
            continue;
        }
        let digest = restore_digest(&mut host, id, addr, (DELTA_SWEEP_PAGES * 4096) as usize)?;
        out.insert(name, digest);
    }
    Ok(out)
}

/// Records the outcome of one fleet-sweep checkpoint attempt, treating
/// an error on a dead device as an expected abort (the cut landed).
fn fleet_ckpt_attempt(
    host: &mut Host,
    gid: GroupId,
    full: bool,
    name: &str,
    pipelined: bool,
    label: &str,
    report: &mut CampaignReport,
) {
    let res = if pipelined {
        host.checkpoint_pipelined(gid, full, Some(name))
    } else {
        host.checkpoint(gid, full, Some(name))
    };
    match res {
        Ok(bd) => {
            if bd.outcome.committed() {
                report.committed += 1;
                if !pipelined {
                    host.clock.advance_to(bd.durable_at);
                }
            } else {
                report.aborted += 1;
            }
        }
        Err(e) => {
            let dead = host.sls.primary.borrow().device().health() == DevHealth::Dead;
            if !dead {
                report
                    .violations
                    .push(format!("{label}: checkpoint error on live device: {e}"));
            }
            report.aborted += 1;
        }
    }
}

/// Power-cut sweep across two tenants' interleaved checkpoint cycles.
///
/// The delta sweep proves a cut inside one tenant's flush cannot tear
/// the store; this sweep proves the same while the fleet scheduler
/// pipelines two tenants. Each iteration takes serialized full
/// baselines, runs one fault-free pipelined round (and fails if the
/// scheduler never overlapped the two cycles), then arms a power cut
/// at exactly the `n`-th device write of a final pipelined round —
/// the ordinal walks the cut through tenant A's capture and flush and
/// on into tenant B's, so some iterations die while A flushes and B's
/// capture is queued behind A's commit. After the crash, recovery must
/// scrub clean, every surviving checkpoint of either tenant must
/// restore to its recorded state, and every survivor's full digest
/// must match a fault-free twin run of the same interleaving.
pub fn run_fleet_power_cut_sweep(cuts: u64, workers: usize) -> CampaignReport {
    let mut report = CampaignReport::default();
    let twin = match fleet_twin_digests(workers) {
        Ok(t) => t,
        Err(e) => {
            report
                .violations
                .push(format!("fleet-cut twin: harness error: {e}"));
            return report;
        }
    };
    for n in 1..=cuts {
        if let Err(e) = run_fleet_cut_iteration(n, workers, &twin, &mut report) {
            report
                .violations
                .push(format!("fleet-cut {n}: harness error: {e}"));
        }
        report.schedules += 1;
    }
    report
}

/// One sweep iteration: cut power at device write `n` while the two
/// tenants' final cycles interleave.
fn run_fleet_cut_iteration(
    n: u64,
    workers: usize,
    twin: &HashMap<String, u64>,
    report: &mut CampaignReport,
) -> Result<()> {
    let mut host = delta_sweep_host(workers, None)?;
    let ((pid_a, gid_a), (pid_b, gid_b), addr) = fleet_tenant_setup(&mut host)?;

    let mut expected: HashMap<String, Vec<u8>> = HashMap::new();
    let label = format!("fleet-cut {n}");
    for round in 0..FLEET_ROUNDS {
        delta_round_writes(&mut host, pid_a, addr, round, "a")?;
        delta_round_writes(&mut host, pid_b, addr, round, "b")?;
        for tag in ["a", "b"] {
            expected.insert(
                format!("{tag}-r{round}"),
                delta_page_body(tag, round, 0).into_bytes(),
            );
        }

        let cut_round = round + 1 == FLEET_ROUNDS;
        if cut_round {
            arm_faults_cut(&mut host, n);
        }
        let pipelined = round > 0;
        let name_a = format!("a-r{round}");
        let name_b = format!("b-r{round}");
        fleet_ckpt_attempt(&mut host, gid_a, round == 0, &name_a, pipelined, &label, report);
        fleet_ckpt_attempt(&mut host, gid_b, round == 0, &name_b, pipelined, &label, report);
        if pipelined && !cut_round {
            host.fleet_drain();
            if host.sls.fleet.stats.overlapped == 0 {
                report.violations.push(format!(
                    "{label}: fault-free round never overlapped the two tenants' cycles"
                ));
            }
        }
        if round == 1 && host.sls.primary.borrow().stats.delta_records == 0 {
            report.violations.push(format!(
                "{label}: fault-free rounds never staged a delta record"
            ));
        }
    }

    disarm_faults(&mut host);
    let mut host = host.crash_and_reboot()?;
    report.crashes += 1;
    verify_recovered(&mut host, addr, &expected, n, report);
    verify_against_twin(&mut host, twin, addr, &label, report);
    Ok(())
}

/// Tenants in the fault-domain sweep. Tenant 0 is the poisoned one;
/// the other three prove the blast radius stays contained.
const FD_TENANTS: usize = 4;

/// Rounds per fault-domain iteration: r0 pipelined full baselines, r1 a
/// fault-free incremental round (the fleet must overlap), r2..r4 under
/// tenant 0's hostile fault plan (three consecutive failures quarantine
/// it), r5 while quarantined (the healthy fleet proceeds on schedule;
/// tenant 0's cycle is skipped), r6 and r7 after revival. A probe right
/// after revival may legitimately still fail — a latency-poisoned
/// device is draining its stalled queue — which doubles the backoff;
/// by r7 the retried probe must land and re-admit the tenant.
const FD_ROUNDS: u32 = 8;

/// First round run under the armed fault plan.
const FD_FAULT_ROUND: u32 = 2;

/// Round at whose start tenant 0's hardware is revived.
const FD_REVIVE_ROUND: u32 = 6;

/// The hostile per-tenant fault plans the sweep walks through.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TenantFault {
    /// Power is cut on the tenant store's next write and never
    /// restored: every cycle aborts until the device is replaced.
    DeadDevice,
    /// Every write stalls far past the fleet's cycle deadline: cycles
    /// commit but chronically late.
    LatencySpike,
    /// Every read from the store's data region returns a flipped bit:
    /// the incremental pre-pass sees a damaged base each cycle.
    ReadCorruption,
}

impl TenantFault {
    fn label(self) -> &'static str {
        match self {
            TenantFault::DeadDevice => "dead-device",
            TenantFault::LatencySpike => "latency-spike",
            TenantFault::ReadCorruption => "read-corruption",
        }
    }
}

/// One fault-domain tenant: its process, its persistence group, and the
/// private store the group was rehomed onto.
struct FdTenant {
    pid: aurora_posix::Pid,
    gid: GroupId,
    store: StoreHandle,
}

/// Formats a private store for fault-domain tenant `i` on its own
/// simulated NVMe device (sharing the host's clock).
fn fd_tenant_store(host: &Host, i: usize) -> Result<StoreHandle> {
    let dev = Box::new(ModelDev::nvme(
        host.clock.clone(),
        &format!("tenant{i}"),
        64 * 1024,
    ));
    let dev: Box<dyn BlockDev> = Box::new(ResilientDev::with_defaults(dev));
    let store = ObjectStore::format(
        dev,
        StoreConfig {
            journal_blocks: 512,
            materialize_data: true,
            ..StoreConfig::default()
        },
    )?;
    Ok(Rc::new(RefCell::new(store)))
}

/// Spawns the fault-domain tenants, each persisted and rehomed onto its
/// own store so a device fault is confined to one tenant. All arenas
/// land at the same per-process virtual address (fresh address spaces).
fn fd_setup(host: &mut Host) -> Result<(Vec<FdTenant>, u64)> {
    let mut tenants = Vec::new();
    let mut arena = None;
    for i in 0..FD_TENANTS {
        let name = format!("tenant-{i}");
        let pid = host.kernel.spawn(&name);
        let addr = host.kernel.mmap_anon(pid, DELTA_SWEEP_PAGES * 4096, false)?;
        let gid = host.persist(&name, pid)?;
        let store = fd_tenant_store(host, i)?;
        host.rehome_group(gid, store.clone())?;
        match arena {
            None => arena = Some(addr),
            Some(a) if a != addr => {
                return Err(Error::internal(
                    "fault-domain tenants mapped their arenas at different addresses",
                ));
            }
            Some(_) => {}
        }
        tenants.push(FdTenant { pid, gid, store });
    }
    let addr = arena.ok_or_else(|| Error::internal("no fault-domain tenants"))?;
    Ok((tenants, addr))
}

/// Runs the fault-domain workload fault-free and returns the digest of
/// every tenant checkpoint (keyed by name) plus the longest observed
/// admission-to-durable cycle span — the poisoned runs derive their
/// per-cycle deadline from it so healthy tenants never miss.
fn fd_twin_digests(workers: usize) -> Result<(HashMap<String, u64>, SimDuration)> {
    let mut host = delta_sweep_host(workers, None)?;
    let (tenants, addr) = fd_setup(&mut host)?;
    let mut max_span = SimDuration::ZERO;
    for round in 0..FD_ROUNDS {
        for (i, t) in tenants.iter().enumerate() {
            delta_round_writes(&mut host, t.pid, addr, round, &format!("t{i}"))?;
        }
        for (i, t) in tenants.iter().enumerate() {
            let before = host.clock.now();
            let name = format!("t{i}-r{round}");
            let bd = host.checkpoint_pipelined(t.gid, round == 0, Some(&name))?;
            if !bd.outcome.committed() {
                return Err(Error::internal(format!(
                    "fault-domain twin cycle {name} did not commit: {:?}",
                    bd.fault
                )));
            }
            max_span = max_span.max(bd.durable_at - before);
        }
        host.fleet_drain();
    }
    if host.sls.fleet.stats.overlapped == 0 {
        return Err(Error::internal(
            "fault-domain twin never overlapped two tenants' cycles",
        ));
    }
    let mut out = HashMap::new();
    for (i, t) in tenants.iter().enumerate() {
        let named: Vec<(CkptId, String)> = t
            .store
            .borrow()
            .checkpoints()
            .iter()
            .filter_map(|c| c.name.clone().map(|n| (c.id, n)))
            .collect();
        let store = t.store.clone();
        for (id, name) in named {
            if !name.starts_with(&format!("t{i}-")) {
                continue;
            }
            let digest =
                restore_digest_on(&mut host, &store, id, addr, (DELTA_SWEEP_PAGES * 4096) as usize)?;
            out.insert(name, digest);
        }
    }
    Ok((out, max_span))
}

/// Per-tenant fault-domain sweep: quarantine, deadlines, blast radius.
///
/// Each iteration runs an [`FD_TENANTS`]-tenant pipelined fleet where
/// every tenant checkpoints to its own store, then poisons tenant 0
/// with one hostile [`TenantFault`] plan. The poisoned tenant must walk
/// `Healthy → Degraded → Quarantined` within [`QUARANTINE_AFTER`]
/// failed cycles and be re-admitted by a probe after its hardware is
/// revived — committing or aborting without ever damaging its store —
/// while the healthy tenants' cycles commit on schedule every round,
/// record zero failures, and restore digest-equal to a fault-free twin
/// of the same interleaving. Any fault attributed to a healthy tenant
/// is a blast-radius violation.
///
/// [`QUARANTINE_AFTER`]: crate::fleet::QUARANTINE_AFTER
pub fn run_fleet_fault_domain_sweep(workers: usize) -> CampaignReport {
    let mut report = CampaignReport::default();
    let (twin, max_span) = match fd_twin_digests(workers) {
        Ok(t) => t,
        Err(e) => {
            report
                .violations
                .push(format!("fleet-domain twin: harness error: {e}"));
            return report;
        }
    };
    for fault in [
        TenantFault::DeadDevice,
        TenantFault::LatencySpike,
        TenantFault::ReadCorruption,
    ] {
        if let Err(e) = run_fd_iteration(fault, workers, &twin, max_span, &mut report) {
            report.violations.push(format!(
                "fleet-domain {}: harness error: {e}",
                fault.label()
            ));
        }
        report.schedules += 1;
    }
    report
}

/// Revives tenant 0's hardware before the probe round. A dead device is
/// "replaced": the store is remounted through journal-replay recovery
/// (the group rehomed onto the remounted handle); for the other plans
/// clearing the fault plan models the repaired fabric.
fn fd_revive(host: &mut Host, tenants: &mut [FdTenant], fault: TenantFault) -> Result<()> {
    let t0 = tenants
        .first_mut()
        .ok_or_else(|| Error::internal("no poisoned tenant"))?;
    if fault != TenantFault::DeadDevice {
        t0.store
            .borrow_mut()
            .device_mut()
            .install_fault_plan(FaultPlan::default());
        return Ok(());
    }
    // Release the group's handle first so the store can be unwrapped
    // and taken through recovery.
    let placeholder = host.sls.primary.clone();
    host.rehome_group(t0.gid, placeholder)?;
    let old = std::mem::replace(&mut t0.store, host.sls.primary.clone());
    let inner = Rc::try_unwrap(old)
        .map_err(|_| Error::internal("tenant store still shared at remount"))?
        .into_inner();
    let mut recovered = inner.recover()?;
    recovered.device_mut().install_fault_plan(FaultPlan::default());
    let fresh: StoreHandle = Rc::new(RefCell::new(recovered));
    host.rehome_group(t0.gid, fresh.clone())?;
    t0.store = fresh;
    Ok(())
}

/// One fault-domain iteration: poison tenant 0 with `fault`, drive the
/// fleet through quarantine and re-admission, verify blast radius and
/// digest equality against the twin.
fn run_fd_iteration(
    fault: TenantFault,
    workers: usize,
    twin: &HashMap<String, u64>,
    max_span: SimDuration,
    report: &mut CampaignReport,
) -> Result<()> {
    let mut host = delta_sweep_host(workers, None)?;
    let (mut tenants, addr) = fd_setup(&mut host)?;
    let label = format!("fleet-domain {}", fault.label());
    let gid0 = tenants
        .first()
        .map(|t| t.gid)
        .ok_or_else(|| Error::internal("no poisoned tenant"))?;

    // Deadline calibrated from the twin's slowest fault-free cycle:
    // generous headroom for healthy tenants, far under the spike.
    let deadline = (max_span * 8).max(SimDuration::from_millis(1));
    host.sls.fleet.cycle_deadline = deadline;

    for round in 0..FD_ROUNDS {
        if round == FD_REVIVE_ROUND {
            fd_revive(&mut host, &mut tenants, fault)?;
        }
        // Once the hardware is revived, let each round's probe actually
        // fire: idle between rounds until the backoff elapses.
        if round >= FD_REVIVE_ROUND
            && host.tenant_domain(gid0).health == TenantHealth::Quarantined
        {
            let probe_at = host.tenant_domain(gid0).next_probe;
            if host.clock.now() < probe_at {
                host.clock.advance_to(probe_at);
            }
        }
        for (i, t) in tenants.iter().enumerate() {
            delta_round_writes(&mut host, t.pid, addr, round, &format!("t{i}"))?;
        }
        if round == FD_FAULT_ROUND {
            let plan = match fault {
                TenantFault::DeadDevice => FaultPlan::power_cut(1),
                TenantFault::LatencySpike => {
                    FaultPlan::latency_spike(1, 1_000_000, deadline.as_nanos() * 4)
                }
                // The data region starts right past the journal
                // (JOURNAL_START + 512 journal blocks = LBA 514); every
                // read from it lies. Superblock and journal reads stay
                // clean so recovery itself is never the victim.
                TenantFault::ReadCorruption => {
                    FaultPlan::corrupt_read_blocks(514, 64 * 1024, 11, 2)
                }
            };
            if let Some(t0) = tenants.first() {
                t0.store.borrow_mut().device_mut().install_fault_plan(plan);
            }
        }
        for (i, t) in tenants.iter().enumerate() {
            let name = format!("t{i}-r{round}");
            match host.checkpoint_pipelined(t.gid, round == 0, Some(&name)) {
                Ok(bd) if bd.outcome == CheckpointOutcome::Quarantined => {
                    report.aborted += 1;
                    if i != 0 {
                        report.violations.push(format!(
                            "{label}: healthy tenant cycle {name} was quarantine-skipped"
                        ));
                    }
                }
                Ok(bd) if bd.outcome.committed() => report.committed += 1,
                Ok(_) => {
                    report.aborted += 1;
                    if i != 0 {
                        report
                            .violations
                            .push(format!("{label}: healthy tenant cycle {name} aborted"));
                    }
                }
                Err(e) => {
                    report.aborted += 1;
                    let dead = t.store.borrow().device().health() == DevHealth::Dead;
                    if i != 0 || !dead {
                        report.violations.push(format!(
                            "{label}: cycle {name} error on live device: {e}"
                        ));
                    }
                }
            }
        }
        // Every fault the sweep surfaced must belong to the poisoned
        // tenant: a fault attributed to anyone else escaped its domain.
        for (g, f) in host.fleet_drain() {
            if g != gid0.0 {
                report.violations.push(format!(
                    "{label}: blast radius: fault recorded for healthy tenant {g}: {f}"
                ));
            }
        }
        let health0 = host.tenant_domain(gid0).health;
        if round >= FD_FAULT_ROUND + 2 && round < FD_REVIVE_ROUND
            && health0 != TenantHealth::Quarantined
        {
            report.violations.push(format!(
                "{label}: poisoned tenant not quarantined after round {round} ({})",
                health0.as_str()
            ));
        }
    }

    fd_verify(&mut host, &tenants, fault, twin, addr, &label, report);
    Ok(())
}

/// End-of-iteration checks: health outcomes, per-tenant store
/// consistency, and digest equality against the fault-free twin.
fn fd_verify(
    host: &mut Host,
    tenants: &[FdTenant],
    fault: TenantFault,
    twin: &HashMap<String, u64>,
    addr: u64,
    label: &str,
    report: &mut CampaignReport,
) {
    let d0 = tenants
        .first()
        .map(|t| host.tenant_domain(t.gid))
        .unwrap_or_default();
    if d0.health != TenantHealth::Healthy {
        report.violations.push(format!(
            "{label}: poisoned tenant not re-admitted: {}",
            d0.health.as_str()
        ));
    }
    if d0.quarantines == 0 || d0.readmissions == 0 {
        report.violations.push(format!(
            "{label}: expected a quarantine and a re-admission, saw {} / {}",
            d0.quarantines, d0.readmissions
        ));
    }
    if fault == TenantFault::DeadDevice && d0.cycles_skipped == 0 {
        report.violations.push(format!(
            "{label}: no cycle was skipped while the tenant sat quarantined"
        ));
    }
    for (i, t) in tenants.iter().enumerate().skip(1) {
        let d = host.tenant_domain(t.gid);
        if d.health != TenantHealth::Healthy
            || d.failures != 0
            || d.deadline_misses != 0
            || d.cycles_skipped != 0
        {
            report.violations.push(format!(
                "{label}: healthy tenant {i} damaged: health {} failures {} \
                 deadline misses {} skipped {}",
                d.health.as_str(),
                d.failures,
                d.deadline_misses,
                d.cycles_skipped
            ));
        }
    }
    for (i, t) in tenants.iter().enumerate() {
        let problems = t.store.borrow_mut().scrub();
        if !problems.is_empty() {
            report.violations.push(format!(
                "{label}: tenant {i} store scrub: {}",
                problems.join("; ")
            ));
        }
        let named: Vec<(CkptId, String)> = t
            .store
            .borrow()
            .checkpoints()
            .iter()
            .filter_map(|c| c.name.clone().map(|n| (c.id, n)))
            .collect();
        let mut present: Vec<String> = Vec::new();
        let store = t.store.clone();
        for (id, name) in named {
            if !name.starts_with(&format!("t{i}-")) {
                continue;
            }
            match restore_digest_on(host, &store, id, addr, (DELTA_SWEEP_PAGES * 4096) as usize) {
                Ok(d) => match twin.get(&name) {
                    Some(&td) if td == d => {}
                    Some(_) => report.violations.push(format!(
                        "{label}: checkpoint {name} diverged from the fault-free twin"
                    )),
                    None => report.violations.push(format!(
                        "{label}: checkpoint {name} has no twin digest"
                    )),
                },
                Err(e) => report
                    .violations
                    .push(format!("{label}: restore of {name} failed: {e}")),
            }
            present.push(name);
        }
        // Healthy tenants keep every round; the poisoned tenant must at
        // least keep its pre-fault checkpoints and its post-re-admission
        // one (whether the first post-revival probe landed is
        // plan-dependent).
        let required: Vec<u32> = if i == 0 {
            vec![0, 1, FD_ROUNDS - 1]
        } else {
            (0..FD_ROUNDS).collect()
        };
        for r in required {
            let name = format!("t{i}-r{r}");
            if !present.contains(&name) {
                report
                    .violations
                    .push(format!("{label}: required checkpoint {name} missing"));
            }
        }
    }
}

/// Boots a campaign host whose primary store sits on a `width`-way
/// mirror of simulated NVMe devices sharing one clock.
fn boot_mirror_host(width: usize, config: StoreConfig) -> Result<Host> {
    let clock = SimClock::new();
    let members: Vec<Box<dyn BlockDev>> = (0..width)
        .map(|i| {
            Box::new(ModelDev::nvme(clock.clone(), &format!("nvme{i}"), 64 * 1024))
                as Box<dyn BlockDev>
        })
        .collect();
    Host::boot_mirrored("campaign", members, config)
}

/// Runs `f` against the primary store's mirror device.
fn with_mirror<T>(host: &Host, f: impl FnOnce(&mut MirrorDev) -> T) -> Result<T> {
    let mut store = host.sls.primary.borrow_mut();
    let m = store
        .device_mut()
        .as_mirror_mut()
        .ok_or_else(|| Error::internal("campaign host has no mirror"))?;
    Ok(f(m))
}

/// Replica-death sweep across the checkpoint flush.
///
/// Iteration `n` kills one replica (rotating through all of them) at
/// exactly its `n`-th device write while a multi-extent checkpoint is
/// flushing. The mirror must absorb the death: the checkpoint commits
/// (flagged `DegradedMirror`), no data is lost, and after reviving and
/// resilvering the victim the whole store must verify when served by
/// the *resilvered replica alone* — proving the rebuild copied every
/// live extent, not just the ones the failed write touched.
pub fn run_mirror_kill_sweep(cuts: u64, width: usize) -> CampaignReport {
    let mut report = CampaignReport::default();
    for n in 1..=cuts {
        if let Err(e) = run_mirror_kill_iteration(n, width, &mut report) {
            report
                .violations
                .push(format!("mirror-kill {n}: harness error: {e}"));
        }
        report.schedules += 1;
    }
    report
}

/// One sweep iteration: replica `n % width` dies at its `n`-th write.
fn run_mirror_kill_iteration(n: u64, width: usize, report: &mut CampaignReport) -> Result<()> {
    let mut host = boot_mirror_host(
        width,
        StoreConfig {
            journal_blocks: 512,
            materialize_data: true,
            ..StoreConfig::default()
        },
    )?;
    host.sls.flush_workers = 4;
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, SWEEP_PAGES * 4096, false)?;
    let gid = host.persist("app", pid)?;
    let victim = (n as usize - 1) % width;

    let mut expected: HashMap<String, Vec<u8>> = HashMap::new();
    for round in 0..2u32 {
        let tag = format!("mkill{n:04}-r{round}");
        for p in 0..SWEEP_PAGES {
            let body = format!("{tag}-p{p:04}");
            host.kernel.mem_write(pid, addr + p * 4096, body.as_bytes())?;
        }
        expected.insert(format!("r{round}"), format!("{tag}-p0000").into_bytes());

        if round == 1 {
            with_mirror(&host, |m| m.install_replica_fault_plan(victim, FaultPlan::power_cut(n)))??;
        }
        let bd = host.checkpoint(gid, round == 0, Some(&format!("r{round}")))?;
        match bd.outcome {
            CheckpointOutcome::DegradedMirror => {
                report.committed += 1;
                report.degraded_mirror += 1;
            }
            o if o.committed() => report.committed += 1,
            _ => {
                report.aborted += 1;
                report.violations.push(format!(
                    "mirror-kill {n}: checkpoint aborted despite {} surviving replica(s): {:?}",
                    width - 1,
                    bd.fault,
                ));
            }
        }
        if bd.outcome.committed() {
            host.clock.advance_to(bd.durable_at);
        }
    }

    // Revive the victim and rebuild it from the survivors.
    let degraded = with_mirror(&host, |m| m.is_degraded())?;
    if degraded {
        with_mirror(&host, |m| {
            m.install_replica_fault_plan(victim, FaultPlan::default())?;
            m.revive_replica(victim)
        })??;
        host.resilver()?;
    }
    verify_recovered(&mut host, addr, &expected, n, report);

    // Zero-data-loss proof: detach every *other* replica and verify the
    // whole store — scrub and both restores — from the rebuilt one.
    if degraded {
        with_mirror(&host, |m| -> Result<()> {
            for i in (0..width).filter(|&i| i != victim) {
                m.kill_replica(i)?;
            }
            Ok(())
        })??;
        verify_recovered(&mut host, addr, &expected, n, report);
    }
    let (f, rr) = with_mirror(&host, |m| {
        let ms = m.mirror_stats();
        (ms.failovers, ms.read_repairs)
    })?;
    report.failovers += f;
    report.read_repairs += rr;
    Ok(())
}

/// Replica-death sweep across the batched restore.
///
/// Iteration `n` cuts the *preferred* replica's power at exactly its
/// `n`-th device read while an eager cold-cache restore is running. The
/// mirror must fail over mid-restore: the restore succeeds from a twin
/// (no abort — reads are the whole point of redundancy), the victim is
/// detached, and the store verifies clean afterwards.
pub fn run_mirror_restore_failover_sweep(cuts: u64, width: usize) -> CampaignReport {
    let mut report = CampaignReport::default();
    for n in 1..=cuts {
        if let Err(e) = run_mirror_restore_iteration(n, width, &mut report) {
            report
                .violations
                .push(format!("mirror-restore {n}: harness error: {e}"));
        }
        report.schedules += 1;
    }
    report
}

/// One sweep iteration: the preferred replica dies at its `n`-th read.
fn run_mirror_restore_iteration(n: u64, width: usize, report: &mut CampaignReport) -> Result<()> {
    let mut host = boot_mirror_host(
        width,
        StoreConfig {
            journal_blocks: 512,
            materialize_data: true,
            ..StoreConfig::default()
        },
    )?;
    host.sls.restore_workers = 4;
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, SWEEP_PAGES * 4096, false)?;
    let gid = host.persist("app", pid)?;

    let tag = format!("mrest{n:04}");
    for p in 0..SWEEP_PAGES {
        let body = format!("{tag}-p{p:04}");
        host.kernel.mem_write(pid, addr + p * 4096, body.as_bytes())?;
    }
    let mut expected: HashMap<String, Vec<u8>> = HashMap::new();
    expected.insert("r0".to_string(), format!("{tag}-p0000").into_bytes());
    let bd = host.checkpoint(gid, true, Some("r0"))?;
    host.clock.advance_to(bd.durable_at);
    report.committed += 1;
    let ckpt = bd
        .ckpt
        .ok_or_else(|| Error::internal("baseline did not commit"))?;

    // Cold cache, then kill the read-preferred replica mid-restore.
    host.sls.primary.borrow_mut().drop_caches()?;
    with_mirror(&host, |m| {
        m.install_replica_fault_plan(0, FaultPlan::power_cut_on_read(n))
    })??;
    let restore_result = {
        let store = host.sls.primary.clone();
        host.restore(&store, ckpt, RestoreMode::Eager)
    };
    match restore_result {
        Ok(r) => {
            if let Some(np) = r.root_pid() {
                let want = format!("{tag}-p0000").into_bytes();
                let mut buf = vec![0u8; want.len()];
                host.kernel.mem_read(np, addr, &mut buf)?;
                if buf != want {
                    report.violations.push(format!(
                        "mirror-restore {n}: failover restore returned torn memory"
                    ));
                }
                let _ = host.kernel.exit(np, 0);
                host.kernel.procs.remove(&np);
            }
        }
        Err(e) => {
            report.aborted += 1;
            report.violations.push(format!(
                "mirror-restore {n}: restore failed despite {} surviving replica(s): {e}",
                width - 1
            ));
        }
    }
    with_mirror(&host, |m| m.install_replica_fault_plan(0, FaultPlan::default()))??;
    verify_recovered(&mut host, addr, &expected, n, report);
    report.failovers += with_mirror(&host, |m| m.mirror_stats().failovers)?;
    Ok(())
}

/// Power-cut sweep across the background resilver.
///
/// Iteration `n` rebuilds a revived replica and cuts its power at
/// exactly its `n`-th resilver write, then crashes and reboots the
/// whole machine. The half-copied replica must come back *rebuilding* —
/// never trusted for reads — so recovery sees only complete replicas;
/// re-running the resilver finishes the copy, after which the store
/// must verify served by the once-half-copied replica alone.
pub fn run_resilver_power_cut_sweep(cuts: u64, width: usize) -> CampaignReport {
    let mut report = CampaignReport::default();
    for n in 1..=cuts {
        if let Err(e) = run_resilver_cut_iteration(n, width, &mut report) {
            report
                .violations
                .push(format!("resilver-cut {n}: harness error: {e}"));
        }
        report.schedules += 1;
    }
    report
}

/// One sweep iteration: the rebuild target dies at resilver write `n`.
fn run_resilver_cut_iteration(n: u64, width: usize, report: &mut CampaignReport) -> Result<()> {
    let mut host = boot_mirror_host(
        width,
        StoreConfig {
            journal_blocks: 512,
            materialize_data: true,
            ..StoreConfig::default()
        },
    )?;
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, SWEEP_PAGES * 4096, false)?;
    let gid = host.persist("app", pid)?;
    let victim = width - 1;

    let mut expected: HashMap<String, Vec<u8>> = HashMap::new();
    let tag0 = format!("rsc{n:04}-r0");
    for p in 0..SWEEP_PAGES {
        let body = format!("{tag0}-p{p:04}");
        host.kernel.mem_write(pid, addr + p * 4096, body.as_bytes())?;
    }
    expected.insert("r0".to_string(), format!("{tag0}-p0000").into_bytes());
    let bd = host.checkpoint(gid, true, Some("r0"))?;
    host.clock.advance_to(bd.durable_at);
    report.committed += 1;

    // The victim dies cleanly; the next checkpoint runs degraded, so the
    // victim's contents are genuinely stale when it comes back.
    with_mirror(&host, |m| m.kill_replica(victim))??;
    let tag1 = format!("rsc{n:04}-r1");
    for p in 0..SWEEP_PAGES {
        let body = format!("{tag1}-p{p:04}");
        host.kernel.mem_write(pid, addr + p * 4096, body.as_bytes())?;
    }
    expected.insert("r1".to_string(), format!("{tag1}-p0000").into_bytes());
    let bd = host.checkpoint(gid, false, Some("r1"))?;
    if bd.outcome != CheckpointOutcome::DegradedMirror {
        report.violations.push(format!(
            "resilver-cut {n}: degraded checkpoint reported {:?}, expected DegradedMirror",
            bd.outcome
        ));
    }
    report.committed += 1;
    report.degraded_mirror += 1;
    host.clock.advance_to(bd.durable_at);

    // Revive the victim and cut its power mid-rebuild.
    with_mirror(&host, |m| {
        m.revive_replica(victim)?;
        m.install_replica_fault_plan(victim, FaultPlan::power_cut(n))
    })??;
    let resilver_result = host.resilver();
    let cut_fired = resilver_result.is_err();
    if cut_fired {
        report.aborted += 1;
    }

    // Whole-machine crash with the replica half-copied.
    with_mirror(&host, |m| m.install_replica_fault_plan(victim, FaultPlan::default()))??;
    let mut host = host.crash_and_reboot()?;
    report.crashes += 1;

    // A half-copied replica must never come back authoritative.
    let state = with_mirror(&host, |m| m.replica_state(victim))?;
    if cut_fired && state != Some(ReplicaState::Rebuilding) {
        report.violations.push(format!(
            "resilver-cut {n}: half-copied replica rebooted as {state:?}, not rebuilding"
        ));
    }
    verify_recovered(&mut host, addr, &expected, n, report);

    // Finish the rebuild, then verify from the rebuilt replica alone.
    if with_mirror(&host, |m| m.needs_resilver())? {
        host.resilver()?;
    }
    with_mirror(&host, |m| -> Result<()> {
        for i in (0..width).filter(|&i| i != victim) {
            m.kill_replica(i)?;
        }
        Ok(())
    })??;
    verify_recovered(&mut host, addr, &expected, n, report);
    Ok(())
}

/// Arms a single scheduled power cut at the `n`-th device write.
/// Replication kill sweep: walk the primary's death through **every
/// frame ordinal** of a continuously replicated run.
///
/// Iteration `n` attaches a hot standby behind a faulty link (drops,
/// duplicates, reordering, transient partitions — all seeded), runs
/// several checkpoint epochs, and kills the primary immediately after
/// it offers its `n`-th replication frame (retransmissions count, so
/// the cut also lands inside recovery traffic). Because epochs span
/// multiple frames, sweeping `n` covers every epoch ordinal and every
/// frame ordinal within an epoch, including mid-partition and
/// mid-retransmit deaths. Iterations whose budget exceeds the run's
/// frame count kill nobody and must converge completely.
///
/// After the kill the standby is promoted and three invariants checked:
///
/// 1. **No torn epoch** — the promoted store's head restores a state in
///    which *every* page carries the same epoch's tag; a mix of epochs
///    (or a partially applied epoch) is a violation.
/// 2. **The watermark is honoured** — the promoted epoch is at least
///    the acked watermark at death (promote may do better: frames
///    already in flight still count), and zero only if nothing was
///    ever acked.
/// 3. **Zero corruption** — the promoted store scrubs clean and every
///    standby-side import applied without error.
pub fn run_replication_kill_sweep(kills: u64, rates: LinkFaultRates) -> CampaignReport {
    let mut report = CampaignReport::default();
    for n in 1..=kills {
        if let Err(e) = run_replication_kill_iteration(n, rates, &mut report) {
            report
                .violations
                .push(format!("repl-kill {n}: harness error: {e}"));
        }
        report.schedules += 1;
    }
    report
}

/// Pages in the replicated workload — small enough to keep the sweep
/// fast, large enough that every epoch spans several frames.
const REPL_SWEEP_PAGES: u64 = 6;

/// Checkpoint epochs per sweep iteration.
const REPL_SWEEP_ROUNDS: u32 = 4;

/// One sweep iteration: kill the primary after replication frame `n`.
fn run_replication_kill_iteration(
    n: u64,
    rates: LinkFaultRates,
    report: &mut CampaignReport,
) -> Result<()> {
    let store_cfg = StoreConfig {
        journal_blocks: 512,
        materialize_data: true,
        ..StoreConfig::default()
    };
    let mut host = boot_host_config(store_cfg.clone())?;
    host.attach_standby(ReplConfig {
        seed: 0xC0FF_EE00 ^ n.wrapping_mul(GOLDEN),
        rates,
        frame_bytes: 4096,
        // The sweep measures watermark honesty, not lag policy: never
        // degrade, so every checkpoint outcome stays Committed.
        max_lag_epochs: u64::MAX,
        kill_after_data_frames: Some(n),
        standby_store: store_cfg,
        ..ReplConfig::default()
    })?;
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, REPL_SWEEP_PAGES * 4096, false)?;
    let gid = host.persist("app", pid)?;

    // epoch -> tag stamped into every page before that epoch's
    // checkpoint. The no-torn-epoch check demands the promoted state be
    // uniformly one of these.
    let mut expected: HashMap<u64, String> = HashMap::new();
    for round in 0..REPL_SWEEP_ROUNDS {
        let epoch = u64::from(round) + 1;
        let tag = format!("kill{n:04}-e{epoch:02}");
        for p in 0..REPL_SWEEP_PAGES {
            let body = format!("{tag}-p{p:02}");
            host.kernel.mem_write(pid, addr + p * 4096, body.as_bytes())?;
        }
        expected.insert(epoch, tag);
        let bd = host.checkpoint(gid, round == 0, Some(&format!("e{epoch}")))?;
        if bd.outcome.committed() {
            report.committed += 1;
            host.clock.advance_to(bd.durable_at);
        } else {
            report.aborted += 1;
        }
        host.replication_pump();
        if host.replication().is_some_and(|r| r.primary_dead()) {
            break;
        }
    }

    let survived = !host.replication().is_some_and(|r| r.primary_dead());
    if survived {
        // The kill budget exceeded the run: the session must converge.
        if let Some(r) = host.replication_mut() {
            if !r.run_until_idle(100_000) {
                report.violations.push(format!(
                    "repl-kill {n}: surviving session failed to converge"
                ));
            }
        }
    }
    let (acked, shipped) = host
        .replication()
        .map(|r| (r.acked_epoch(), r.shipped_epoch()))
        .unwrap_or((0, 0));
    let repl = host
        .detach_standby()
        .ok_or_else(|| Error::internal("replication session vanished"))?;
    report.crashes += 1; // the simulated loss of the primary machine

    let (mut standby, pr) = promote_to_host(repl, "standby")?;
    if pr.apply_errors > 0 {
        report.violations.push(format!(
            "repl-kill {n}: {} standby import error(s)",
            pr.apply_errors
        ));
    }
    if pr.promoted_epoch < acked {
        report.violations.push(format!(
            "repl-kill {n}: promoted epoch {} below acked watermark {acked}",
            pr.promoted_epoch
        ));
    }
    if survived && pr.promoted_epoch != shipped {
        report.violations.push(format!(
            "repl-kill {n}: converged standby promoted {} of {shipped} epochs",
            pr.promoted_epoch
        ));
    }

    // Invariant 3: zero corruption on the promoted store.
    let store = standby.sls.primary.clone();
    let problems = store.borrow().scrub();
    if !problems.is_empty() {
        report.violations.push(format!(
            "repl-kill {n}: promoted store scrub found {} problem(s): {}",
            problems.len(),
            problems.join("; ")
        ));
    }

    if pr.promoted_epoch == 0 {
        // Nothing ever completed: an empty standby is only legitimate
        // when nothing was acked — checked above via promoted >= acked.
        return Ok(());
    }

    // Invariants 1 + 2: the head restores exactly the promoted epoch's
    // state on every page — never a mix of epochs.
    let Some(tag) = expected.get(&pr.promoted_epoch) else {
        report.violations.push(format!(
            "repl-kill {n}: promoted unknown epoch {}",
            pr.promoted_epoch
        ));
        return Ok(());
    };
    let head = store
        .borrow()
        .head()
        .ok_or_else(|| Error::internal("promoted store has no head"))?;
    let r = standby.restore(&store, head, RestoreMode::Eager)?;
    let np = r
        .root_pid()
        .ok_or_else(|| Error::internal("promoted restore returned no root pid"))?;
    let mut clean = true;
    for p in 0..REPL_SWEEP_PAGES {
        let want = format!("{tag}-p{p:02}");
        let mut buf = vec![0u8; want.len()];
        standby.kernel.mem_read(np, addr + p * 4096, &mut buf)?;
        if buf != want.as_bytes() {
            clean = false;
            report.violations.push(format!(
                "repl-kill {n}: torn epoch — page {p} restored {:?}, expected {:?}",
                String::from_utf8_lossy(&buf),
                want
            ));
        }
    }
    if clean {
        report.restores_verified += 1;
    }
    Ok(())
}

fn arm_faults_cut(host: &mut Host, n: u64) {
    host.sls
        .primary
        .borrow_mut()
        .device_mut()
        .install_fault_plan(FaultPlan::power_cut(n));
}

/// Checks both campaign invariants on a freshly recovered host.
fn verify_recovered(
    host: &mut Host,
    addr: u64,
    expected: &HashMap<String, Vec<u8>>,
    idx: u64,
    report: &mut CampaignReport,
) {
    let store = host.sls.primary.clone();

    // Invariant 1: the recovered store is internally consistent and
    // every surviving page matches its recorded hash.
    let problems = store.borrow_mut().scrub();
    if !problems.is_empty() {
        report.violations.push(format!(
            "schedule {idx}: scrub found {} problem(s) after recovery: {}",
            problems.len(),
            problems.join("; ")
        ));
    }

    // Invariant 2: every surviving checkpoint restores to exactly the
    // state recorded at its barrier.
    let survivors: Vec<(CkptId, String)> = store
        .borrow()
        .checkpoints()
        .iter()
        .filter_map(|c| c.name.clone().map(|n| (c.id, n)))
        .collect();
    for (id, name) in survivors {
        let Some(want) = expected.get(&name) else {
            // Internal checkpoints (e.g. SLSFS bookkeeping) are not part
            // of the workload; scrub already validated their contents.
            continue;
        };
        let restored = match host.restore(&store, id, RestoreMode::Eager) {
            Ok(r) => r,
            Err(e) => {
                report.violations.push(format!(
                    "schedule {idx}: surviving checkpoint {name} failed to restore: {e}"
                ));
                continue;
            }
        };
        let Some(np) = restored.root_pid() else {
            report.violations.push(format!(
                "schedule {idx}: checkpoint {name} restored without a root pid"
            ));
            continue;
        };
        let mut buf = vec![0u8; want.len()];
        match host.kernel.mem_read(np, addr, &mut buf) {
            Ok(()) if &buf == want => report.restores_verified += 1,
            Ok(()) => report.violations.push(format!(
                "schedule {idx}: checkpoint {name} restored {:?}, expected {:?}",
                String::from_utf8_lossy(&buf),
                String::from_utf8_lossy(want)
            )),
            Err(e) => report.violations.push(format!(
                "schedule {idx}: reading restored memory of {name} failed: {e}"
            )),
        }
        let _ = host.kernel.exit(np, 0);
        host.kernel.procs.remove(&np);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_campaign_passes_both_invariants() {
        let cfg = CampaignConfig {
            schedules: 8,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.schedules, 8);
        assert!(report.committed >= 8, "every schedule has a baseline");
        assert!(report.crashes >= 8, "every schedule ends in a crash");
        assert!(report.restores_verified >= 8);
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = CampaignConfig {
            schedules: 4,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.aborted, b.aborted);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.restores_verified, b.restores_verified);
    }

    #[test]
    fn hostile_rates_still_pass() {
        let cfg = CampaignConfig {
            schedules: 4,
            rates: FaultRates::hostile(),
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        assert!(report.passed(), "violations: {:?}", report.violations);
    }

    #[test]
    fn power_cut_sweep_mid_parallel_flush_recovers_clean() {
        let report = run_power_cut_sweep(18, 4);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.crashes, 18, "every iteration ends in a crash");
        assert!(
            report.aborted > 0,
            "some cuts must land inside the coalesced flush"
        );
        assert!(
            report.restores_verified > 0,
            "baselines must survive every cut"
        );
    }

    #[test]
    fn power_cut_sweep_mid_batched_restore_leaves_store_intact() {
        let report = run_restore_power_cut_sweep(12, 4);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.crashes, 12, "every iteration ends in a crash");
        assert!(
            report.aborted > 0,
            "cuts must land inside the batched restore's reads"
        );
        assert_eq!(
            report.restores_verified, 12,
            "a read-side cut can never damage the baseline"
        );
    }

    #[test]
    fn delta_power_cut_sweep_replays_identically() {
        let report = run_delta_power_cut_sweep(14, 4);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.crashes, 14, "every iteration ends in a crash");
        assert!(
            report.aborted > 0,
            "some cuts must land inside the delta flush"
        );
        assert!(
            report.restores_verified > 0,
            "baselines must survive every cut"
        );
    }

    #[test]
    fn fleet_fault_domain_sweep_contains_the_blast() {
        let report = run_fleet_fault_domain_sweep(4);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.schedules, 3, "one iteration per fault plan");
        assert!(
            report.aborted > 0,
            "the poisoned tenant must abort or skip some cycles"
        );
        assert!(
            report.committed > 0,
            "healthy tenants must keep committing throughout"
        );
    }

    #[test]
    fn fleet_power_cut_sweep_recovers_both_tenants() {
        let report = run_fleet_power_cut_sweep(8, 4);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.crashes, 8, "every iteration ends in a crash");
        assert!(
            report.aborted > 0,
            "some cuts must land inside the interleaved cycles"
        );
        assert!(
            report.restores_verified > 0,
            "both tenants' baselines must survive every cut"
        );
    }

    #[test]
    fn compaction_power_cut_sweep_never_tears_a_chain() {
        let report = run_compact_power_cut_sweep(12, 4);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.crashes, 12, "every iteration ends in a crash");
        assert!(
            report.aborted > 0,
            "some cuts must land inside the capping round or the fold"
        );
        assert!(
            report.restores_verified > 0,
            "baselines must survive every cut"
        );
    }

    #[test]
    fn mirror_kill_sweep_mid_flush_loses_nothing() {
        let report = run_mirror_kill_sweep(12, 2);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(
            report.degraded_mirror > 0,
            "some kills must land inside the flush and degrade the mirror"
        );
        assert!(
            report.restores_verified >= 12,
            "every surviving checkpoint must verify, including from the rebuilt replica alone"
        );
    }

    #[test]
    fn mirror_kill_sweep_width_three() {
        let report = run_mirror_kill_sweep(6, 3);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.degraded_mirror > 0);
    }

    #[test]
    fn mirror_restore_sweep_fails_over_instead_of_aborting() {
        let report = run_mirror_restore_failover_sweep(10, 2);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.aborted, 0, "a mirrored restore never aborts on one dead replica");
        assert!(
            report.failovers > 0,
            "some cuts must land inside the restore's reads and fail over"
        );
    }

    #[test]
    fn resilver_power_cut_never_promotes_a_half_copied_replica() {
        let report = run_resilver_power_cut_sweep(8, 2);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(
            report.aborted > 0,
            "some cuts must land inside the resilver copy"
        );
        assert_eq!(report.crashes, 8, "every iteration reboots mid-rebuild");
        assert!(
            report.restores_verified >= 16,
            "both rounds verify after reboot and again from the rebuilt replica alone"
        );
    }

    #[test]
    fn replication_kill_sweep_never_promotes_torn_epoch() {
        // Lossy link: drops, duplicates, reorders and partitions are all
        // in play while the kill walks through the frame stream.
        let report = run_replication_kill_sweep(24, LinkFaultRates::lossy());
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.crashes, 24, "every iteration loses the primary");
        assert!(
            report.restores_verified > 0,
            "later kills must leave promotable epochs"
        );
    }

    #[test]
    fn replication_kill_sweep_clean_link_converges_past_the_stream() {
        let report = run_replication_kill_sweep(10, LinkFaultRates::clean());
        assert!(report.passed(), "violations: {:?}", report.violations);
    }

    #[test]
    fn replication_kill_sweep_is_deterministic() {
        let a = run_replication_kill_sweep(6, LinkFaultRates::lossy());
        let b = run_replication_kill_sweep(6, LinkFaultRates::lossy());
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.restores_verified, b.restores_verified);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn env_override_parses() {
        // Not set in the test environment: default flows through.
        assert_eq!(schedules_from_env(123), 123);
    }
}
