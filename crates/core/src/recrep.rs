//! Record/replay integration.
//!
//! Aurora does not implement a record/replay engine itself; it *bounds*
//! one: because checkpoints are cheap, the nondeterminism log only needs
//! to cover the window since the last checkpoint. On a failure, the
//! application is rolled back to that checkpoint and the log replayed,
//! letting a developer "witness the last seconds before a crash" with a
//! small constant overhead.
//!
//! [`RecordLog`] is that bounded log. Applications route every
//! nondeterministic input (client requests, timers, random draws) through
//! [`RecordLog::record`]; the SLS truncates the log at each checkpoint
//! via [`RecordLog::on_checkpoint`]. After a rollback,
//! [`RecordLog::begin_replay`] replays the inputs deterministically.

use aurora_objstore::CkptId;

/// A bounded nondeterminism log tied to the checkpoint cycle.
#[derive(Debug, Default)]
pub struct RecordLog {
    /// Inputs since the last checkpoint, in order.
    events: Vec<Vec<u8>>,
    /// The checkpoint this log is relative to.
    base: Option<CkptId>,
    /// Replay cursor, when replaying.
    cursor: Option<usize>,
    /// Total bytes recorded over the log's lifetime (statistics).
    pub total_recorded: u64,
    /// Times the log was truncated by a checkpoint.
    pub truncations: u64,
    /// High-water mark of the log length (events) between checkpoints.
    pub peak_len: usize,
}

impl RecordLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        RecordLog::default()
    }

    /// Routes one nondeterministic input through the log.
    ///
    /// Recording mode: appends and returns the input unchanged.
    /// Replay mode: returns the next recorded input instead (and falls
    /// back to live input when the log is exhausted, switching back to
    /// recording).
    pub fn record(&mut self, input: Vec<u8>) -> Vec<u8> {
        if let Some(cursor) = self.cursor {
            if cursor < self.events.len() {
                self.cursor = Some(cursor + 1);
                return self.events[cursor].clone();
            }
            // Log exhausted: back to live recording.
            self.cursor = None;
        }
        self.total_recorded += input.len() as u64;
        self.events.push(input.clone());
        self.peak_len = self.peak_len.max(self.events.len());
        input
    }

    /// Truncates the log: everything before `ckpt` is now covered by the
    /// checkpoint itself.
    pub fn on_checkpoint(&mut self, ckpt: CkptId) {
        self.events.clear();
        self.base = Some(ckpt);
        self.cursor = None;
        self.truncations += 1;
    }

    /// Begins replaying from the last checkpoint.
    ///
    /// The application must first be rolled back to [`RecordLog::base`].
    pub fn begin_replay(&mut self) {
        self.cursor = Some(0);
    }

    /// The checkpoint the log is relative to.
    pub fn base(&self) -> Option<CkptId> {
        self.base
    }

    /// Events currently in the log.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// True while replaying.
    pub fn replaying(&self) -> bool {
        self.cursor.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_replay_reproduces_inputs() {
        let mut log = RecordLog::new();
        log.on_checkpoint(CkptId(1));
        let inputs = [b"set a 1".to_vec(), b"set b 2".to_vec(), b"del a".to_vec()];
        for input in &inputs {
            assert_eq!(log.record(input.clone()), *input);
        }
        assert_eq!(log.len(), 3);

        log.begin_replay();
        assert!(log.replaying());
        for input in &inputs {
            // Replay ignores the live input and returns the recording.
            assert_eq!(log.record(b"live noise".to_vec()), *input);
        }
        // Exhausted: falls back to live.
        assert_eq!(log.record(b"fresh".to_vec()), b"fresh".to_vec());
        assert!(!log.replaying());
    }

    #[test]
    fn checkpoint_bounds_the_log() {
        let mut log = RecordLog::new();
        for i in 0..100u32 {
            log.record(i.to_le_bytes().to_vec());
            if i % 10 == 9 {
                log.on_checkpoint(CkptId(i as u64));
            }
        }
        assert!(log.len() <= 10, "log bounded by checkpoint interval");
        assert_eq!(log.truncations, 10);
        assert_eq!(log.peak_len, 10);
        assert_eq!(log.base(), Some(CkptId(99)));
    }
}
