//! The restore path: rebuilding an application from a checkpoint.
//!
//! Phases match Table 4's rows:
//!
//! * **Object Store Read** — fetching the manifest and every metadata
//!   record from the backend (the only phase that differs between
//!   memory-backend and disk-backend restores).
//! * **Memory state** — recreating the VM object hierarchy and address
//!   spaces. No page data is copied: objects are bound to a pager over
//!   the checkpoint image, and pages arrive on demand (lazy restore),
//!   shared COW between the image and — via the image cache — every
//!   other instance restored from the same checkpoint.
//! * **Metadata state** — recreating processes, descriptor tables,
//!   pipes, sockets (including in-flight SCM_RIGHTS descriptors), shared
//!   memory and message queues, with every identifier remapped into the
//!   destination kernel.
//!
//! Lazy restore optionally *prefetches* the hottest pages recorded in
//! the image (the clock algorithm's heat ranking) to absorb the
//! post-restore fault storm — the paper's serverless warm start.

use std::collections::HashMap;
use std::rc::Rc;
use std::thread;

use aurora_objstore::{CkptId, ObjId};
use aurora_posix::fd::{FileId, FileKind, OpenFile};
use aurora_posix::inet::{InetSocket, IsockState};
use aurora_posix::pipe::{Pipe, PipeId};
use aurora_posix::types::Tid;
use aurora_posix::unix::{UnixMsg, UnixSocket, UsockState};
use aurora_posix::{Fd, IsockId, Pid, UsockId, VnodeRef};
use aurora_sim::clock::Stopwatch;
use aurora_sim::cost;
use aurora_sim::error::{Error, Result};
use aurora_sim::time::SimDuration;
use aurora_slsfs::StoreHandle;
use aurora_vm::map::RestoreHint;
use aurora_vm::object::ResidentPage;
use aurora_vm::{MapEntry, Pager, PageData, Prot, SlsPolicy, VmoId, VmoKind};

use crate::lockdep::{OrderedMutex, RANK_RESTORE_SHARD};
use crate::metrics::{self, RestoreBreakdown};
use crate::serialize::*;
use crate::Host;

/// How memory is brought back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreMode {
    /// Page everything in during restore (no post-restore faults).
    Eager,
    /// Pure lazy: restore only the skeleton; fault pages on demand.
    Lazy,
    /// Lazy plus eager page-in of the recorded hottest pages.
    LazyPrefetch,
}

/// A pager that feeds pages from a checkpoint image in an object store.
///
/// One pager is shared by every instance restored from the same image
/// (see the pager cache in [`Host::restore`]), which is what lets their
/// faulted-in frames be shared through the VM image cache. Because it is
/// shared, it is strictly read-only: eviction never writes dirty pages
/// back through it (see `aurora-vm`'s pageout policy) — dirty image
/// pages stay resident until a checkpoint captures them.
pub struct StorePager {
    store: StoreHandle,
    at: CkptId,
}

impl StorePager {
    /// Creates a pager over `store` at checkpoint `at`.
    pub fn new(store: StoreHandle, at: CkptId) -> Self {
        StorePager { store, at }
    }
}

impl Pager for StorePager {
    fn page_in(&mut self, key: u64, idx: u64) -> aurora_sim::error::Result<PageData> {
        Ok(self
            .store
            .borrow_mut()
            .read_page_at(self.at, ObjId(key), idx)?
            .unwrap_or(PageData::Zero))
    }

    fn page_out(&mut self, _key: u64, _idx: u64, _data: &PageData) -> aurora_sim::error::Result<()> {
        Err(Error::unsupported(
            "checkpoint-image pagers are shared and read-only; dirty pages stay resident",
        ))
    }

    fn has_page(&self, key: u64, idx: u64) -> bool {
        self.store.borrow().has_page_at(self.at, ObjId(key), idx)
    }

    fn shared(&self) -> bool {
        true
    }
}

impl Host {
    /// Restores an application from checkpoint `ckpt` in `store`.
    ///
    /// Returns the phase breakdown including the pid remapping. The
    /// restored processes are *not* automatically persisted; call
    /// [`Host::persist`] on the new root to resume transparent
    /// persistence.
    pub fn restore(
        &mut self,
        store: &StoreHandle,
        ckpt: CkptId,
        mode: RestoreMode,
    ) -> Result<RestoreBreakdown> {
        let mut breakdown = RestoreBreakdown::default();
        let clock = self.clock.clone();
        let mut sw = Stopwatch::start(&clock);

        // --- Phase 1: object store read. -----------------------------------
        let (manifest, vmo_recs, proc_recs, file_recs, pipe_recs, usock_recs, isock_recs, shm_recs, msgq_recs, pshm_recs) =
            fetch_records(store, ckpt)?;
        breakdown.objstore_read = sw.lap();
        // High-latency backend reads implicitly perform part of the
        // parsing work; discount the later phases accordingly (the
        // paper's observation on disk restores).
        let discount: u64 = if breakdown.objstore_read.as_micros() > 100 {
            cost::RESTORE_DISK_DISCOUNT_PCT
        } else {
            100
        };
        let scaled = |ns: u64| SimDuration::from_nanos(ns * discount / 100);

        // --- Phase 2: memory state. ----------------------------------------
        // One pager per (store, checkpoint): instances restored from the
        // same image share it, so their faults share frames through the
        // VM image cache (the paper's mutual warm-up).
        let cache_key = (Rc::as_ptr(store) as usize, ckpt.0);
        let pager_id = match self.sls.pager_cache.get(&cache_key) {
            Some(&p) => p,
            None => {
                let p = self
                    .kernel
                    .vm
                    .register_pager(Box::new(StorePager::new(store.clone(), ckpt)));
                self.sls.pager_cache.insert(cache_key, p);
                p
            }
        };
        // Create the object shells, oldest first so backings exist.
        let mut oid_vmo: HashMap<u64, VmoId> = HashMap::new();
        for rec in &vmo_recs {
            let kind = match rec.kind {
                1 => VmoKind::Shadow,
                2 => VmoKind::SharedMem,
                3 => VmoKind::Vnode { file_id: rec.oid },
                _ => VmoKind::Anonymous,
            };
            let v = self.kernel.vm.create_object(kind, rec.size_pages);
            self.kernel.vm.object_mut(v).pager = Some((pager_id, rec.oid));
            oid_vmo.insert(rec.oid, v);
            self.clock.charge(scaled(cost::RESTORE_VMO_NS));
        }
        // Wire shadow-chain backings (the backing reference is the
        // chain's ownership; also drop the pager on shadowed levels? No:
        // every level keeps its own image pages).
        for rec in &vmo_recs {
            if let Some((boid, off)) = rec.backing {
                let v = *oid_vmo.get(&rec.oid).ok_or_else(|| {
                    Error::internal(format!("vm object for oid {} vanished", rec.oid))
                })?;
                let b = *oid_vmo
                    .get(&boid)
                    .ok_or_else(|| Error::bad_image(format!("missing backing object {boid}")))?;
                self.kernel.vm.ref_object(b);
                self.kernel.vm.object_mut(v).backing = Some((b, off));
            }
        }

        // Recreate processes and their address spaces.
        let mut pid_map: HashMap<u32, Pid> = HashMap::new();
        for rec in &proc_recs {
            let new_pid = self.kernel.spawn(&rec.name);
            pid_map.insert(rec.pid, new_pid);
            for m in &rec.map {
                let v = *oid_vmo
                    .get(&m.oid)
                    .ok_or_else(|| Error::bad_image(format!("map entry on unknown object {}", m.oid)))?;
                self.kernel.vm.ref_object(v);
                let entry = MapEntry {
                    start: m.start,
                    end: m.end,
                    object: v,
                    offset_pages: m.offset_pages,
                    prot: Prot {
                        read: m.read,
                        write: m.write,
                    },
                    shared: m.shared,
                    needs_copy: m.needs_copy,
                    policy: SlsPolicy {
                        exclude: m.exclude,
                        restore: match m.restore_hint {
                            1 => RestoreHint::Eager,
                            2 => RestoreHint::Lazy,
                            _ => RestoreHint::Auto,
                        },
                    },
                };
                self.kernel
                    .proc_mut(new_pid)?
                    .map
                    .install_entry(entry);
                self.clock.charge(scaled(cost::RESTORE_MAP_ENTRY_NS));
            }
        }

        // Region policy from `sls_mctl` restore hints: objects mapped by
        // an Eager-hinted entry page in fully even under lazy restore;
        // Lazy-hinted ones are excluded from hot-set prefetch.
        let mut force_eager: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut force_lazy: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for rec in &proc_recs {
            for m in &rec.map {
                match m.restore_hint {
                    1 => {
                        force_eager.insert(m.oid);
                    }
                    2 => {
                        force_lazy.insert(m.oid);
                    }
                    _ => {}
                }
            }
        }

        // Eager/prefetch page-in. The target list is built in the same
        // order the serial loop visits pages, so the batched pipeline
        // below installs a byte-identical memory image.
        let mut targets: Vec<(VmoId, u64, u64)> = Vec::new();
        for rec in &vmo_recs {
            let v = *oid_vmo.get(&rec.oid).ok_or_else(|| {
                Error::internal(format!("vm object for oid {} vanished", rec.oid))
            })?;
            let eager = match mode {
                RestoreMode::Eager => !force_lazy.contains(&rec.oid),
                _ => force_eager.contains(&rec.oid),
            };
            if eager {
                let map = store.borrow_mut().object_refs_at(ckpt, ObjId(rec.oid));
                targets.extend(map.into_iter().map(|(idx, _)| (v, rec.oid, idx)));
            } else if mode == RestoreMode::LazyPrefetch && !force_lazy.contains(&rec.oid) {
                targets.extend(rec.hot.iter().map(|&idx| (v, rec.oid, idx)));
            }
        }
        let workers = self.sls.restore_workers.max(1);
        if workers == 1 || targets.len() < crate::flush::PARALLEL_THRESHOLD {
            for &(v, oid, idx) in &targets {
                breakdown.pages_prefetched += self.page_in_image(v, pager_id, oid, idx)?;
            }
        } else {
            self.batched_page_in(
                manifest.gid,
                store,
                ckpt,
                pager_id,
                &targets,
                workers,
                &mut breakdown,
            )?;
        }
        breakdown.memory_state = sw.lap();

        // --- Phase 3: metadata state. ----------------------------------------
        // Pipes first (no dependencies).
        let mut pipe_map: HashMap<u32, PipeId> = HashMap::new();
        for rec in &pipe_recs {
            let mut pipe = Pipe::new();
            pipe.buf = rec.buf.iter().copied().collect();
            pipe.read_open = rec.read_open;
            pipe.write_open = rec.write_open;
            pipe_map.insert(rec.id, PipeId(self.kernel.pipes.insert(pipe)));
        }
        // Socket shells (peers wired after).
        let mut usock_map: HashMap<u32, UsockId> = HashMap::new();
        for rec in &usock_recs {
            usock_map.insert(rec.id, UsockId(self.kernel.usocks.insert(UnixSocket::new())));
        }
        let mut isock_map: HashMap<u32, IsockId> = HashMap::new();
        for rec in &isock_recs {
            let owner = pid_map
                .get(&rec.owner)
                .copied()
                .unwrap_or(aurora_posix::Pid(0));
            let sock = InetSocket {
                state: IsockState::Unbound,
                local_port: None,
                owner,
                recv: rec.recv.iter().copied().collect(),
                backlog: Default::default(),
                held: Default::default(),
            };
            isock_map.insert(rec.id, IsockId(self.kernel.isocks.insert(sock)));
        }

        // Open-file descriptions (need pipe/sock maps).
        let mut file_map: HashMap<u32, FileId> = HashMap::new();
        for rec in &file_recs {
            let kind = match &rec.kind {
                FileKindRec::Vnode(node) => FileKind::Vnode(VnodeRef {
                    mount: self.sls.slsfs_mount,
                    node: *node,
                }),
                FileKindRec::PipeRead(p) => FileKind::PipeRead(
                    *pipe_map
                        .get(p)
                        .ok_or_else(|| Error::bad_image("file references unknown pipe"))?,
                ),
                FileKindRec::PipeWrite(p) => FileKind::PipeWrite(
                    *pipe_map
                        .get(p)
                        .ok_or_else(|| Error::bad_image("file references unknown pipe"))?,
                ),
                FileKindRec::UnixSock(s) => FileKind::UnixSock(
                    *usock_map
                        .get(s)
                        .ok_or_else(|| Error::bad_image("file references unknown usock"))?,
                ),
                FileKindRec::InetSock(s) => FileKind::InetSock(
                    *isock_map
                        .get(s)
                        .ok_or_else(|| Error::bad_image("file references unknown isock"))?,
                ),
                FileKindRec::PosixShm(n) => FileKind::PosixShm(n.clone()),
                FileKindRec::NtLog(id) => FileKind::NtLog(*id),
            };
            // Restored with zero references; each install adds one.
            let mut file = OpenFile::new(kind);
            file.offset = rec.offset;
            file.flags = rec.flags;
            file.external_consistency = rec.ec;
            file.refs = 0;
            let fid = FileId(self.kernel.files.insert(file));
            file_map.insert(rec.id, fid);
            // Vnodes re-acquire their on-disk open reference.
            if let FileKindRec::Vnode(node) = &rec.kind {
                self.kernel.vfs.fs(self.sls.slsfs_mount).open_ref(*node, 1)?;
            }
        }

        // Wire socket state, queues and bindings.
        for rec in &usock_recs {
            let sid = *usock_map.get(&rec.id).ok_or_else(|| {
                Error::internal(format!("unix socket {} missing from shell pass", rec.id))
            })?;
            let state = match &rec.state {
                SockStateRec::Unbound => UsockState::Unbound,
                SockStateRec::Listening => UsockState::Listening,
                SockStateRec::Connected(p) => match usock_map.get(p) {
                    Some(np) => UsockState::Connected(*np),
                    None => UsockState::Disconnected,
                },
                SockStateRec::Disconnected => UsockState::Disconnected,
            };
            let recv = rec
                .recv
                .iter()
                .map(|(bytes, fds)| {
                    let fds = fds
                        .iter()
                        .filter_map(|f| file_map.get(f).copied())
                        .collect::<Vec<_>>();
                    // In-flight descriptors hold references.
                    UnixMsg {
                        bytes: bytes.clone(),
                        fds,
                    }
                })
                .collect::<Vec<_>>();
            for msg in &recv {
                for f in &msg.fds {
                    if let Some(file) = self.kernel.files.get_mut(f.0) {
                        file.refs += 1;
                    }
                }
            }
            let backlog = rec
                .backlog
                .iter()
                .filter_map(|b| usock_map.get(b).copied())
                .collect();
            let bound_path = match &rec.bound_path {
                Some(path) if !self.kernel.usock_binds.contains_key(path) => {
                    self.kernel.usock_binds.insert(path.clone(), sid);
                    Some(path.clone())
                }
                other => other.clone(),
            };
            let sock = self.kernel.usocks.get_mut(sid.0).ok_or_else(|| {
                Error::internal(format!("unix socket {} missing after shell pass", sid.0))
            })?;
            sock.state = state;
            sock.recv = recv.into();
            sock.backlog = backlog;
            sock.bound_path = bound_path;
        }
        for rec in &isock_recs {
            let sid = *isock_map.get(&rec.id).ok_or_else(|| {
                Error::internal(format!("inet socket {} missing from shell pass", rec.id))
            })?;
            let state = match &rec.state {
                SockStateRec::Unbound => IsockState::Unbound,
                SockStateRec::Listening => IsockState::Listening,
                SockStateRec::Connected(p) => match isock_map.get(p) {
                    Some(np) => IsockState::Connected(*np),
                    None => IsockState::Disconnected,
                },
                SockStateRec::Disconnected => IsockState::Disconnected,
            };
            let backlog = rec
                .backlog
                .iter()
                .filter_map(|b| isock_map.get(b).copied())
                .collect();
            // Rebind the port when free; otherwise the socket restores
            // degraded (listening without a port registration).
            let port = match rec.port {
                Some(p) if !self.kernel.ports.contains_key(&p) => {
                    self.kernel.ports.insert(p, sid);
                    Some(p)
                }
                other => other,
            };
            let sock = self.kernel.isocks.get_mut(sid.0).ok_or_else(|| {
                Error::internal(format!("inet socket {} missing after shell pass", sid.0))
            })?;
            sock.state = state;
            sock.backlog = backlog;
            sock.local_port = port;
        }

        // Descriptor tables, threads, credentials, signals, parenthood.
        for rec in &proc_recs {
            let new_pid = *pid_map.get(&rec.pid).ok_or_else(|| {
                Error::internal(format!("pid {} missing from shell pass", rec.pid))
            })?;
            {
                let proc = self.kernel.proc_mut(new_pid)?;
                proc.cwd = rec.cwd.clone();
                proc.cred.uid = rec.uid;
                proc.cred.gid = rec.gid;
                proc.sig.pending = rec.sig_pending;
                proc.sig.blocked = rec.sig_blocked;
                proc.sig.actions = rec.sig_actions_array();
                proc.threads.clear();
                for (tid, cpu) in &rec.threads {
                    proc.threads.push(aurora_posix::types::Thread {
                        tid: Tid(*tid),
                        cpu: cpu.clone(),
                    });
                }
                if let Some(&parent) = pid_map.get(&rec.ppid) {
                    proc.ppid = parent;
                }
            }
            for (fd, old_fid) in &rec.fds {
                let fid = *file_map
                    .get(old_fid)
                    .ok_or_else(|| Error::bad_image("fd references unknown file"))?;
                self.kernel
                    .proc_mut(new_pid)?
                    .fds
                    .install_at(Fd(*fd), fid)?;
                if let Some(file) = self.kernel.files.get_mut(fid.0) {
                    file.refs += 1;
                }
            }
            if let Some(&parent) = pid_map.get(&rec.ppid) {
                self.kernel.proc_mut(parent)?.children.push(new_pid);
            }
        }

        // SysV shared memory.
        for rec in &shm_recs {
            let v = *oid_vmo
                .get(&rec.oid)
                .ok_or_else(|| Error::bad_image("shm references unknown object"))?;
            if self.kernel.sysv_shms.contains_key(&rec.key) {
                continue; // Restored alongside a live segment: keep live.
            }
            self.kernel.vm.ref_object(v);
            self.kernel.sysv_shms.insert(
                rec.key,
                aurora_posix::SysvShm {
                    key: rec.key,
                    size: rec.size,
                    object: v,
                    nattch: 0,
                    removed: rec.removed,
                },
            );
        }
        // POSIX shared memory.
        for rec in &pshm_recs {
            let v = *oid_vmo
                .get(&rec.oid)
                .ok_or_else(|| Error::bad_image("pshm references unknown object"))?;
            if self.kernel.posix_shms.contains_key(&rec.name) {
                continue;
            }
            self.kernel.vm.ref_object(v);
            self.kernel.posix_shms.insert(
                rec.name.clone(),
                aurora_posix::PosixShm {
                    object: v,
                    size: rec.size,
                    unlinked: rec.unlinked,
                    open_refs: rec.open_refs,
                },
            );
        }
        // Message queues.
        for rec in &msgq_recs {
            let q = self.kernel.msgqs.entry(rec.key).or_default();
            if q.capacity == 0 {
                q.capacity = aurora_posix::sysv::MSGMNB;
            }
            q.msgs = rec
                .msgs
                .iter()
                .map(|(t, data)| aurora_posix::sysv::SysvMsg {
                    mtype: *t,
                    data: data.clone(),
                })
                .collect();
        }
        // Container.
        if let Some((name, root)) = &manifest.container {
            let ct = self.kernel.container_create(name, root);
            for (_, &new_pid) in pid_map.iter() {
                self.kernel.container_add(ct, new_pid)?;
            }
        }

        // Charge the recreation cost: a fixed orchestration component
        // plus one parse/wire cost per record.
        self.clock.charge(scaled(cost::RESTORE_GROUP_FIXED_NS));
        for bytes in proc_recs.iter().map(|r| r.encode().len()) {
            self.clock
                .charge(scaled(cost::meta_restore(bytes).as_nanos()));
        }
        for n in [
            file_recs.len(),
            pipe_recs.len(),
            usock_recs.len(),
            isock_recs.len(),
            shm_recs.len(),
            msgq_recs.len(),
            pshm_recs.len(),
        ] {
            for _ in 0..n {
                self.clock
                    .charge(scaled(cost::meta_restore(96).as_nanos()));
            }
        }

        // Drop the pager-less object references we created above: each
        // object was born with one reference that nothing owns.
        for (_, &v) in oid_vmo.iter() {
            self.kernel.vm.unref_object(v);
        }

        breakdown.metadata_state = sw.lap();
        breakdown.total =
            breakdown.objstore_read + breakdown.memory_state + breakdown.metadata_state;
        let mut pid_pairs: Vec<(u32, u32)> = pid_map.iter().map(|(o, n)| (*o, n.0)).collect();
        pid_pairs.sort();
        breakdown.pid_map = pid_pairs;
        self.sls.stats.restores += 1;
        metrics::METRICS.lock().restores_completed += 1;
        Ok(breakdown)
    }

    /// The batched page-in pipeline: resolves every target against the
    /// checkpoint in one pass, reads the missing blocks as vectored
    /// extents through the store's bounded read cache, content-hashes
    /// the fetched pages on `workers` threads, and wires frames in the
    /// same order the serial loop would — so the resulting memory image
    /// is byte-identical for any worker count (the differential test in
    /// `tests/parallel_restore_diff.rs` checks exactly this).
    #[allow(clippy::too_many_arguments)]
    fn batched_page_in(
        &mut self,
        gid: u32,
        store: &StoreHandle,
        ckpt: CkptId,
        pager: aurora_vm::PagerId,
        targets: &[(VmoId, u64, u64)],
        workers: usize,
        breakdown: &mut RestoreBreakdown,
    ) -> Result<()> {
        let clock = self.clock.clone();
        let mut sw = Stopwatch::start(&clock);

        // Pass 1: wire what is already resident — shared image frames
        // from sibling restores — and collect the rest for the fetch.
        let mut fetch: Vec<(VmoId, u64, u64)> = Vec::new();
        let mut queued: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
        for &(v, oid, idx) in targets {
            if self.kernel.vm.object(v).page(idx).is_some() || !queued.insert((oid, idx)) {
                continue;
            }
            if let Some(frame) = self
                .kernel
                .vm
                .image_cache_get(pager, oid, idx)
                .filter(|f| self.kernel.vm.frames.exists(*f))
            {
                self.kernel.vm.frames.ref_frame(frame);
                self.kernel.vm.object_mut(v).insert_page(
                    idx,
                    ResidentPage {
                        frame,
                        write_epoch: 0,
                        cow_protected: false,
                        referenced: true,
                        heat: 1,
                    },
                );
                self.clock
                    .charge(SimDuration::from_nanos(cost::RESTORE_PAGE_WIRE_NS));
                breakdown.pages_prefetched += 1;
                continue;
            }
            fetch.push((v, oid, idx));
        }
        breakdown.restore_workers = workers as u64;
        if fetch.is_empty() {
            breakdown.read_stage += sw.lap();
            return Ok(());
        }

        // Pass 2: one read plan for every missing page; dedup-shared
        // blocks resolve once, adjacent blocks coalesce into extents.
        let plan_targets: Vec<(ObjId, u64)> =
            fetch.iter().map(|&(_, oid, idx)| (ObjId(oid), idx)).collect();
        let (plan, outcome) = {
            let mut st = store.borrow_mut();
            let plan = st.plan_reads_at(ckpt, &plan_targets);
            let outcome = st.execute_read_plan(&plan)?;
            (plan, outcome)
        };
        breakdown.read_stage += sw.lap();

        // Pass 3: content-hash the freshly fetched pages in parallel.
        // The hashes feed the store's content index (warm twin blocks)
        // and the cost is divided across the workers. The target group's
        // own barrier serializes use of the shard collector — restores
        // of unrelated tenants pipeline with checkpoints, exactly like
        // the flush path.
        let fetched: Vec<(u64, PageData)> = outcome
            .fetched
            .iter()
            .filter_map(|b| outcome.pages.get(b).map(|p| (*b, p.clone())))
            .collect();
        let pairs = {
            let group_barrier = crate::fleet::barrier_for(gid);
            let _cycle = group_barrier.lock();
            hash_fetched(&fetched, workers)
        };
        self.clock
            .charge(cost::hash_stage(fetched.len() as u64, workers as u64));
        store.borrow_mut().note_read_hashes(&pairs);
        breakdown.hash_stage += sw.lap();

        // Pass 4: wire frames in serial target order. Delta-backed pages
        // fetched their chain's *base* block through the plan; the chain
        // replays over it here.
        for (i, &(v, oid, idx)) in fetch.iter().enumerate() {
            let chain = plan.chains.get(i).copied().flatten();
            let data = match plan.resolved.get(i).copied().flatten() {
                Some(ptr) => {
                    let base = outcome.pages.get(&ptr.0).cloned().ok_or_else(|| {
                        Error::internal(format!("planned block {} missing from read outcome", ptr.0))
                    })?;
                    match chain {
                        Some(lsn) => store.borrow().apply_chain(&base, lsn)?,
                        None => base,
                    }
                }
                None => {
                    // A chain head with no resolvable base means the log
                    // lost records — zero-filling would hide corruption.
                    if let Some(lsn) = chain {
                        return Err(Error::corrupt(format!(
                            "object {oid} page {idx}: delta chain at lsn {lsn} \
                             has no resolvable base"
                        )));
                    }
                    PageData::Zero
                }
            };
            let frame = self.kernel.vm.frames.alloc(data);
            self.kernel.vm.image_cache_put(pager, oid, idx, frame);
            self.kernel.vm.object_mut(v).insert_page(
                idx,
                ResidentPage {
                    frame,
                    write_epoch: 0,
                    cow_protected: false,
                    referenced: true,
                    heat: 1,
                },
            );
            breakdown.pages_prefetched += 1;
        }

        breakdown.cache_hits += outcome.cache_hits;
        breakdown.cache_misses += outcome.cache_misses;
        breakdown.extents_read += outcome.extents_read;
        {
            let mut m = metrics::METRICS.lock();
            m.restore_workers = workers as u64;
            m.restore_pages_hashed += fetched.len() as u64;
            m.restore_cache_hits += outcome.cache_hits;
            m.restore_cache_misses += outcome.cache_misses;
            m.restore_extents += outcome.extents_read;
        }
        Ok(())
    }

    /// Forgets the shared restore image for (`store`, `ckpt`): the
    /// cached pager is unregistered and its image-cache frames dropped.
    /// Subsequent restores from the checkpoint start cold, as on a
    /// machine that has never run the application — the state warm-start
    /// benchmarks measure against.
    pub fn release_image(&mut self, store: &StoreHandle, ckpt: CkptId) {
        let cache_key = (Rc::as_ptr(store) as usize, ckpt.0);
        if let Some(pager) = self.sls.pager_cache.remove(&cache_key) {
            self.kernel.vm.unregister_pager(pager);
        }
    }

    /// Pages one image page into an object, counting it when resident
    /// work actually happened.
    fn page_in_image(
        &mut self,
        v: VmoId,
        pager: aurora_vm::PagerId,
        oid: u64,
        idx: u64,
    ) -> Result<u64> {
        if self.kernel.vm.object(v).page(idx).is_some() {
            return Ok(0);
        }
        // Shared image frame: wire it; otherwise fetch from the store.
        if let Some(frame) = self
            .kernel
            .vm
            .image_cache_get(pager, oid, idx)
            .filter(|f| self.kernel.vm.frames.exists(*f))
        {
            self.kernel.vm.frames.ref_frame(frame);
            self.kernel.vm.object_mut(v).insert_page(
                idx,
                ResidentPage {
                    frame,
                    write_epoch: 0,
                    cow_protected: false,
                    referenced: true,
                    heat: 1,
                },
            );
            self.clock
                .charge(SimDuration::from_nanos(cost::RESTORE_PAGE_WIRE_NS));
            return Ok(1);
        }
        let data = self.kernel.vm.pager_mut(pager).page_in(oid, idx)?;
        let frame = self.kernel.vm.frames.alloc(data);
        self.kernel.vm.image_cache_put(pager, oid, idx, frame);
        self.kernel.vm.object_mut(v).insert_page(
            idx,
            ResidentPage {
                frame,
                write_epoch: 0,
                cow_protected: false,
                referenced: true,
                heat: 1,
            },
        );
        Ok(1)
    }

    /// Rolls a live persistence group back to a checkpoint
    /// (`sls_rollback`): the current members are killed and the group is
    /// re-created from the image. Pending speculation flags are raised
    /// for the restored processes.
    pub fn rollback(
        &mut self,
        gid: crate::GroupId,
        ckpt: Option<CkptId>,
    ) -> Result<RestoreBreakdown> {
        let (store, ckpt) = {
            let group = self.sls.group_ref(gid)?;
            let ckpt = match ckpt {
                Some(c) => c,
                None => group
                    .last_checkpoint()
                    .ok_or_else(|| Error::invalid("group has no checkpoints"))?,
            };
            let backend = group
                .backends
                .first()
                .ok_or_else(|| Error::internal("group has no backends"))?;
            (backend.store.clone(), ckpt)
        };
        // Kill the current incarnation.
        let members = self.group_members(gid);
        for pid in &members {
            let _ = self.kernel.exit(*pid, 128);
            self.kernel.procs.remove(pid);
        }
        let breakdown = self.restore(&store, ckpt, RestoreMode::LazyPrefetch)?;
        // Re-register the restored tree under the SAME group so periodic
        // checkpointing and history continue seamlessly.
        for (_, new) in &breakdown.pid_map {
            self.kernel.proc_mut(Pid(*new))?.persist_group = Some(gid.0);
            self.sls.rolled_back.insert(Pid(*new));
        }
        if let Some(root) = breakdown.root_pid() {
            let group = self.sls.group_mut(gid)?;
            group.root = root;
            // The restored incarnation's memory is new VM objects; the
            // next checkpoint must be full (with image consolidation).
            for backend in group.backends.iter_mut() {
                backend.needs_full = true;
            }
        }
        self.sls.stats.rollbacks += 1;
        Ok(breakdown)
    }
}

/// Collector for the restore hash stage: workers push
/// `(shard index, hashes)` pairs as they finish. The single driving
/// thread runs one hash stage at a time (under the target group's
/// barrier), so at most one stage uses this collector at once even
/// though unrelated tenants' cycles pipeline.
static RESTORE_SHARD: OrderedMutex<Vec<(usize, Vec<u64>)>> =
    OrderedMutex::new(RANK_RESTORE_SHARD, "restore_shard", Vec::new());

/// Content-hashes fetched `(block, page)` pairs on `workers` threads
/// and returns `(block, hash)` pairs in input order. Mirrors
/// `crate::flush::hash_plan`: shard boundaries depend only on input
/// length and worker count, and reassembly sorts by shard index, so the
/// output is byte-identical to a serial pass for any worker count.
fn hash_fetched(pages: &[(u64, PageData)], workers: usize) -> Vec<(u64, u64)> {
    let workers = workers.max(1);
    if workers == 1 || pages.len() < crate::flush::PARALLEL_THRESHOLD {
        return hash_fetched_serial(pages);
    }
    let shard_len = pages.len().div_ceil(workers);
    {
        RESTORE_SHARD.lock().clear();
    }
    thread::scope(|s| {
        for (shard_idx, shard) in pages.chunks(shard_len).enumerate() {
            s.spawn(move || {
                let hashes: Vec<u64> = shard.iter().map(|(_, p)| p.content_hash()).collect();
                {
                    RESTORE_SHARD.lock().push((shard_idx, hashes));
                }
            });
        }
    });
    let mut shards = std::mem::take(&mut *RESTORE_SHARD.lock());
    shards.sort_unstable_by_key(|&(idx, _)| idx);
    let hashes: Vec<u64> = shards.into_iter().flat_map(|(_, h)| h).collect();
    if hashes.len() != pages.len() {
        // A worker vanished (spawn failure). Fall back to the serial
        // pass rather than wiring pages with missing hashes.
        return hash_fetched_serial(pages);
    }
    pages.iter().map(|&(b, _)| b).zip(hashes).collect()
}

/// The single-threaded reference pass.
fn hash_fetched_serial(pages: &[(u64, PageData)]) -> Vec<(u64, u64)> {
    pages.iter().map(|(b, p)| (*b, p.content_hash())).collect()
}

/// Fetches and parses every record of a checkpoint. All device read
/// charges happen here (the "Object Store Read" phase).
#[allow(clippy::type_complexity)]
fn fetch_records(
    store: &StoreHandle,
    ckpt: CkptId,
) -> Result<(
    ManifestRec,
    Vec<VmoRec>,
    Vec<ProcRec>,
    Vec<FileRec>,
    Vec<PipeRec>,
    Vec<UsockRec>,
    Vec<IsockRec>,
    Vec<ShmRec>,
    Vec<MsgqRec>,
    Vec<PshmRec>,
)> {
    let st = store.borrow_mut();
    // The manifest key embeds the group id. Several groups can share a
    // store, so take the manifest written nearest to this checkpoint in
    // its chain — that is the group the checkpoint belongs to.
    let manifest_key = st
        .nearest_blob_key(ckpt, "/manifest")
        .ok_or_else(|| Error::bad_image("checkpoint has no manifest"))?;
    let manifest = ManifestRec::decode(
        &st.get_blob(ckpt, &manifest_key)?
            .ok_or_else(|| Error::bad_image("manifest unreadable"))?,
    )?;
    let gid = manifest.gid;

    let fetch = |key: String| -> Result<Vec<u8>> {
        st.get_blob(ckpt, &key)?
            .ok_or_else(|| Error::bad_image(format!("missing record {key}")))
    };
    let mut vmos = Vec::new();
    for oid in &manifest.vmos {
        vmos.push(VmoRec::decode(&fetch(key_vmo(gid, *oid))?)?);
    }
    let mut procs = Vec::new();
    for pid in &manifest.pids {
        procs.push(ProcRec::decode(&fetch(key_proc(gid, *pid))?)?);
    }
    let mut files = Vec::new();
    for id in &manifest.files {
        files.push(FileRec::decode(&fetch(key_file(gid, *id))?)?);
    }
    let mut pipes = Vec::new();
    for id in &manifest.pipes {
        pipes.push(PipeRec::decode(&fetch(key_pipe(gid, *id))?)?);
    }
    let mut usocks = Vec::new();
    for id in &manifest.usocks {
        usocks.push(UsockRec::decode(&fetch(key_usock(gid, *id))?)?);
    }
    let mut isocks = Vec::new();
    for id in &manifest.isocks {
        isocks.push(IsockRec::decode(&fetch(key_isock(gid, *id))?)?);
    }
    let mut shms = Vec::new();
    for key in &manifest.shms {
        shms.push(ShmRec::decode(&fetch(key_shm(gid, *key))?)?);
    }
    let mut msgqs = Vec::new();
    for key in &manifest.msgqs {
        msgqs.push(MsgqRec::decode(&fetch(key_msgq(gid, *key))?)?);
    }
    let mut pshms = Vec::new();
    for name in &manifest.pshms {
        pshms.push(PshmRec::decode(&fetch(key_pshm(gid, name))?)?);
    }
    Ok((
        manifest, vmos, procs, files, pipes, usocks, isocks, shms, msgqs, pshms,
    ))
}
