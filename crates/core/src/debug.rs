//! Time-travel debugging over checkpoint history (§4).
//!
//! "Aurora creates periodic checkpoints of a running application that
//! can later be inspected with a debugger or executed. We can use this
//! to build a type of time travel debugger or, since new incremental
//! checkpoints leave old ones intact, to bisect the history to find
//! violations of invariants."
//!
//! [`HistoryBrowser`] wraps exactly that workflow: enumerate a group's
//! checkpoint history, *probe* any point in time by restoring a
//! disposable incarnation and running an inspection closure against it,
//! and bisect for the first checkpoint violating a predicate.
//! Repeatedly probing the same image is also how nondeterministic
//! failures are reproduced ("Repeatedly restoring from the same image
//! can uncover nondeterministic failures").

use aurora_objstore::CkptId;
use aurora_posix::Pid;
use aurora_sim::error::{Error, Result};
use aurora_slsfs::StoreHandle;

use crate::restore::RestoreMode;
use crate::{GroupId, Host};

/// A browsable checkpoint history of one persistence group.
pub struct HistoryBrowser {
    store: StoreHandle,
    history: Vec<CkptId>,
}

/// Result of a bisection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bisection {
    /// Index (into the history) of the last checkpoint satisfying the
    /// predicate.
    pub last_good: usize,
    /// Index of the first checkpoint violating it.
    pub first_bad: usize,
    /// Probes performed (restores of disposable incarnations).
    pub probes: u32,
}

impl HistoryBrowser {
    /// Opens the history of `gid` as currently recorded on its primary
    /// backend.
    pub fn open(host: &Host, gid: GroupId) -> Result<HistoryBrowser> {
        let group = host.sls.group_ref(gid)?;
        Ok(HistoryBrowser {
            store: group.backends[0].store.clone(),
            history: group.history.clone(),
        })
    }

    /// The checkpoints, oldest first.
    pub fn checkpoints(&self) -> &[CkptId] {
        &self.history
    }

    /// Number of browsable points in time.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True when the history is empty.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Restores checkpoint `index` as a disposable incarnation, runs
    /// `inspect` against it, then tears the incarnation down. The
    /// live application is never disturbed.
    pub fn probe<R>(
        &self,
        host: &mut Host,
        index: usize,
        inspect: impl FnOnce(&mut Host, Pid) -> R,
    ) -> Result<R> {
        let ckpt = *self
            .history
            .get(index)
            .ok_or_else(|| Error::invalid(format!("history index {index}")))?;
        let r = host.restore(&self.store, ckpt, RestoreMode::LazyPrefetch)?;
        let pids: Vec<Pid> = r.pid_map.iter().map(|(_, n)| Pid(*n)).collect();
        let root = r
            .root_pid()
            .ok_or_else(|| Error::bad_image("probe restored no process"))?;
        let out = inspect(host, root);
        for pid in pids {
            let _ = host.kernel.exit(pid, 0);
            host.kernel.procs.remove(&pid);
        }
        Ok(out)
    }

    /// Probes the same checkpoint `times` times, collecting each
    /// inspection result — the repeated-restore workflow for shaking out
    /// nondeterministic failures.
    pub fn probe_repeatedly<R>(
        &self,
        host: &mut Host,
        index: usize,
        times: u32,
        mut inspect: impl FnMut(&mut Host, Pid) -> R,
    ) -> Result<Vec<R>> {
        let mut out = Vec::with_capacity(times as usize);
        for _ in 0..times {
            out.push(self.probe(host, index, &mut inspect)?);
        }
        Ok(out)
    }

    /// Bisects the history for the first checkpoint where `good`
    /// returns false.
    ///
    /// Requires the first checkpoint to be good and the last to be bad;
    /// returns `InvalidArgument` otherwise. `O(log n)` probes.
    pub fn bisect(
        &self,
        host: &mut Host,
        mut good: impl FnMut(&mut Host, Pid) -> bool,
    ) -> Result<Bisection> {
        if self.history.len() < 2 {
            return Err(Error::invalid("bisection needs at least two checkpoints"));
        }
        let mut probes = 0u32;
        let mut lo = 0usize;
        let mut hi = self.history.len() - 1;
        probes += 1;
        if !self.probe(host, lo, &mut good)? {
            return Err(Error::invalid("first checkpoint already violates the invariant"));
        }
        probes += 1;
        if self.probe(host, hi, &mut good)? {
            return Err(Error::invalid("last checkpoint still satisfies the invariant"));
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            probes += 1;
            if self.probe(host, mid, &mut good)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Bisection {
            last_good: lo,
            first_bad: hi,
            probes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_hw::ModelDev;
    use aurora_objstore::StoreConfig;
    use aurora_sim::SimClock;

    fn boot() -> Host {
        let clock = SimClock::new();
        let dev = Box::new(ModelDev::nvme(clock, "nvme0", 64 * 1024));
        Host::boot("dbg", dev, StoreConfig::default()).unwrap()
    }

    /// Builds a group with 12 checkpoints; register 0 counts steps and
    /// "corruption" begins at step 8 (register 1 stops following).
    fn scenario() -> (Host, GroupId, Pid) {
        let mut host = boot();
        let pid = host.kernel.spawn("app");
        host.kernel.mmap_anon(pid, 4096, false).unwrap();
        let gid = host.persist("app", pid).unwrap();
        for step in 1..=12u64 {
            host.kernel.set_reg(pid, 0, step).unwrap();
            if step < 8 {
                host.kernel.set_reg(pid, 1, step).unwrap();
            }
            host.checkpoint(gid, false, None).unwrap();
        }
        (host, gid, pid)
    }

    fn invariant(host: &mut Host, pid: Pid) -> bool {
        host.kernel.get_reg(pid, 0).unwrap() == host.kernel.get_reg(pid, 1).unwrap()
    }

    #[test]
    fn probing_does_not_disturb_the_live_app() {
        let (mut host, gid, pid) = scenario();
        let browser = HistoryBrowser::open(&host, gid).unwrap();
        assert_eq!(browser.len(), 12);
        let step_at_3 = browser
            .probe(&mut host, 3, |h, p| h.kernel.get_reg(p, 0).unwrap())
            .unwrap();
        assert_eq!(step_at_3, 4);
        // The live app still has its latest state and keeps running.
        assert_eq!(host.kernel.get_reg(pid, 0).unwrap(), 12);
        host.checkpoint(gid, false, None).unwrap();
    }

    #[test]
    fn bisection_finds_the_first_bad_checkpoint() {
        let (mut host, gid, _pid) = scenario();
        let browser = HistoryBrowser::open(&host, gid).unwrap();
        let result = browser.bisect(&mut host, invariant).unwrap();
        // Step 8 (history index 7) is the first violating image.
        assert_eq!(result.first_bad, 7);
        assert_eq!(result.last_good, 6);
        assert!(result.probes <= 6, "log2(12) probes, got {}", result.probes);
    }

    #[test]
    fn bisection_rejects_degenerate_ranges() {
        let mut host = boot();
        let pid = host.kernel.spawn("app");
        host.kernel.mmap_anon(pid, 4096, false).unwrap();
        let gid = host.persist("app", pid).unwrap();
        host.checkpoint(gid, false, None).unwrap();
        let browser = HistoryBrowser::open(&host, gid).unwrap();
        assert!(browser.bisect(&mut host, |_, _| true).is_err());
        host.checkpoint(gid, false, None).unwrap();
        let browser = HistoryBrowser::open(&host, gid).unwrap();
        // All good: bisection must refuse rather than fabricate.
        assert!(browser.bisect(&mut host, |_, _| true).is_err());
        assert!(browser.bisect(&mut host, |_, _| false).is_err());
    }

    #[test]
    fn repeated_probes_are_deterministic_here() {
        let (mut host, gid, _pid) = scenario();
        let browser = HistoryBrowser::open(&host, gid).unwrap();
        let runs = browser
            .probe_repeatedly(&mut host, 5, 4, |h, p| h.kernel.get_reg(p, 0).unwrap())
            .unwrap();
        assert_eq!(runs, vec![6, 6, 6, 6]);
    }
}
