//! `sls send` / `sls recv` and live migration.
//!
//! Checkpoints are self-contained, so sharing or migrating an
//! application is just moving bytes: [`Host::send_checkpoint`] exports a
//! chain-merged stream (pipe it to a file, hand it to another user) and
//! [`Host::recv_checkpoint`] imports it. [`live_migrate`] implements the
//! classic iterative pre-copy loop on top of incremental checkpoints:
//! ship a full image while the application keeps running, then ship
//! shrinking deltas, and only stop the source for the final round.

use aurora_hw::LinkModel;
use aurora_objstore::CkptId;
use aurora_sim::error::{Error, Result};
use aurora_sim::hash::fnv64;
use aurora_sim::{Decoder, Encoder};

use crate::metrics::RestoreBreakdown;
use crate::restore::RestoreMode;
use crate::{GroupId, Host};

/// Magic of a sealed `sls send` image file: "SLSIMG01".
pub const IMAGE_MAGIC: u64 = 0x534C_5349_4D47_3031;

/// Format version of the image envelope. Bump on layout changes; the
/// decoder rejects newer versions with a typed error instead of
/// misparsing them.
pub const IMAGE_VERSION: u16 = 1;

/// Seals a checkpoint stream into the on-disk `sls send` image envelope:
/// magic, format version, whole-image content digest, then the payload.
///
/// The digest covers every payload byte, so truncation and bit flips are
/// detected before the stream parser ever runs — `sls recv` on a damaged
/// file fails with a typed error instead of silently importing garbage.
pub fn encode_image(payload: &[u8]) -> Vec<u8> {
    let mut e = Encoder::with_capacity(payload.len() + 32);
    e.u64(IMAGE_MAGIC);
    e.u16(IMAGE_VERSION);
    e.u64(fnv64(payload));
    e.bytes(payload);
    e.into_vec()
}

/// Opens a sealed image envelope, returning the verified payload.
///
/// Typed failures, in check order:
/// * [`aurora_sim::error::ErrorKind::BadImage`] — too short to hold the
///   header, wrong magic (not an sls image at all), or truncated payload;
/// * [`aurora_sim::error::ErrorKind::Unsupported`] — a format version
///   newer than this binary writes (cross-version file);
/// * [`aurora_sim::error::ErrorKind::Corrupt`] — the payload digest does
///   not match (bit flip in transit or at rest).
pub fn decode_image(bytes: &[u8]) -> Result<Vec<u8>> {
    let mut d = Decoder::new(bytes);
    let magic = d
        .u64()
        .map_err(|_| Error::bad_image("file too short to be an sls image"))?;
    if magic != IMAGE_MAGIC {
        return Err(Error::bad_image("not an sls image file (bad magic)"));
    }
    let version = d
        .u16()
        .map_err(|_| Error::bad_image("sls image truncated in the header"))?;
    if version > IMAGE_VERSION {
        return Err(Error::unsupported(format!(
            "sls image format version {version} is newer than this binary \
             supports (max {IMAGE_VERSION})"
        )));
    }
    let digest = d
        .u64()
        .map_err(|_| Error::bad_image("sls image truncated in the header"))?;
    let payload = d
        .bytes()
        .map_err(|_| Error::bad_image("sls image truncated: payload incomplete"))?;
    if fnv64(payload) != digest {
        return Err(Error::corrupt(
            "sls image digest mismatch: the file was corrupted",
        ));
    }
    Ok(payload.to_vec())
}

/// Statistics of one live migration.
#[derive(Debug, Clone, Default)]
pub struct MigrationStats {
    /// Pre-copy rounds performed (including the final stop round).
    pub rounds: u32,
    /// Bytes shipped per round.
    pub round_bytes: Vec<u64>,
    /// Total bytes over the wire.
    pub total_bytes: u64,
    /// Source downtime (virtual) for the final stop-and-copy round.
    pub downtime: aurora_sim::time::SimDuration,
    /// Restore breakdown on the destination.
    pub restore: RestoreBreakdown,
}

impl Host {
    /// Exports a checkpoint (the latest when `ckpt` is `None`) as a
    /// self-contained byte stream (`sls send`).
    ///
    /// The stream carries exactly the sending group's namespace —
    /// its memory objects, persistent logs and metadata records — not
    /// the whole machine's history, so the receiver sees one
    /// unambiguous application.
    pub fn send_checkpoint(&mut self, gid: GroupId, ckpt: Option<CkptId>) -> Result<Vec<u8>> {
        let (store, ckpt, ns) = {
            let group = self.sls.group_ref(gid)?;
            let ckpt = match ckpt {
                Some(c) => c,
                None => group
                    .last_checkpoint()
                    .ok_or_else(|| Error::invalid("group has no checkpoints"))?,
            };
            let backend = group
                .backends
                .first()
                .ok_or_else(|| Error::invalid("group has no backends"))?;
            (backend.store.clone(), ckpt, group.ns())
        };
        let prefix = format!("g{}/", gid.0);
        let stream = store.borrow_mut().export_checkpoint_filtered(
            ckpt,
            |oid| oid & !0xFFFF_FFFF_FFFF == ns,
            |key| key.starts_with(&prefix),
        )?;
        Ok(encode_image(&stream))
    }

    /// Imports a sealed checkpoint image into this host's primary store
    /// (`sls recv`); returns the new checkpoint id, ready to restore.
    ///
    /// The envelope is verified first ([`decode_image`]): truncated,
    /// bit-flipped, and newer-version files fail with typed errors
    /// before any stream record is parsed.
    pub fn recv_checkpoint(&mut self, image: &[u8]) -> Result<CkptId> {
        let payload = decode_image(image)?;
        let (ckpt, durable) = self.sls.primary.borrow_mut().import_stream(&payload)?;
        self.clock.advance_to(durable);
        Ok(ckpt)
    }
}

/// Live-migrates a persistence group from `src` to `dst` over `link`.
///
/// Pre-copy rounds continue until the delta stops shrinking (or
/// `max_rounds`); the final round stops the source, ships the last delta,
/// restores on the destination, and kills the source incarnation.
pub fn live_migrate(
    src: &mut Host,
    dst: &mut Host,
    gid: GroupId,
    link: &mut LinkModel,
    max_rounds: u32,
) -> Result<MigrationStats> {
    let mut stats = MigrationStats::default();
    let store = src
        .sls
        .group_ref(gid)?
        .backends
        .first()
        .ok_or_else(|| Error::invalid("group has no backends"))?
        .store
        .clone();

    // Round 1: full image while the application runs.
    let breakdown = src.checkpoint(gid, true, Some("migrate-base"))?;
    let base = breakdown.ckpt.ok_or_else(|| Error::internal("no ckpt id"))?;
    let full_stream = store.borrow_mut().export_checkpoint(base)?;
    // Charge the wire for the logical image size (pages are encoded
    // compactly in the stream, but a real migration moves real bytes).
    let full_logical = store.borrow().logical_size(base)?;
    link.transfer_sync(full_logical.max(full_stream.len() as u64));
    let (_, durable) = dst.sls.primary.borrow_mut().import_stream(&full_stream)?;
    dst.clock.advance_to(durable);
    stats.rounds = 1;
    stats.round_bytes.push(full_logical.max(full_stream.len() as u64));
    stats.total_bytes += full_logical.max(full_stream.len() as u64);

    // Iterative pre-copy: ship deltas while they shrink.
    let mut last_len = full_logical.max(full_stream.len() as u64) as usize;
    for _ in 1..max_rounds.max(2) - 1 {
        let breakdown = src.checkpoint(gid, false, None)?;
        let ckpt = breakdown.ckpt.ok_or_else(|| Error::internal("no ckpt id"))?;
        let delta = store.borrow_mut().export_delta(ckpt)?;
        let logical = store
            .borrow()
            .delta_logical_size(ckpt)?
            .max(delta.len() as u64);
        link.transfer_sync(logical);
        let (_, durable) = dst.sls.primary.borrow_mut().import_delta(&delta)?;
        dst.clock.advance_to(durable);
        stats.rounds += 1;
        stats.round_bytes.push(logical);
        stats.total_bytes += logical;
        if logical as usize >= last_len || logical < 4096 {
            break; // Converged (or not converging: stop copying).
        }
        last_len = logical as usize;
    }

    // Final round: stop the source, ship the last delta, switch over.
    let t0 = src.clock.now();
    let members = src.group_members(gid);
    for &pid in &members {
        src.kernel.stop_process(pid)?;
    }
    let breakdown = src.checkpoint(gid, false, Some("migrate-final"))?;
    let final_ckpt = breakdown.ckpt.ok_or_else(|| Error::internal("no ckpt id"))?;
    let delta = store.borrow_mut().export_delta(final_ckpt)?;
    let logical = store
        .borrow()
        .delta_logical_size(final_ckpt)?
        .max(delta.len() as u64);
    link.transfer_sync(logical);
    let (dst_ckpt, durable) = dst.sls.primary.borrow_mut().import_delta(&delta)?;
    dst.clock.advance_to(durable);
    stats.rounds += 1;
    stats.round_bytes.push(logical);
    stats.total_bytes += logical;

    // Restore on the destination, then retire the source incarnation.
    let primary = dst.sls.primary.clone();
    stats.restore = dst.restore(&primary, dst_ckpt, RestoreMode::LazyPrefetch)?;
    for pid in members {
        let _ = src.kernel.exit(pid, 0);
        src.kernel.procs.remove(&pid);
    }
    stats.downtime = src.clock.now().since(t0);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_sim::error::ErrorKind;

    #[test]
    fn image_envelope_roundtrips() {
        for payload in [&b""[..], &b"x"[..], &[0u8; 4096][..], &[0xA5u8; 70_000][..]] {
            let sealed = encode_image(payload);
            assert_eq!(decode_image(&sealed).unwrap(), payload);
        }
    }

    #[test]
    fn truncated_image_is_a_typed_error() {
        let sealed = encode_image(b"the quick brown fox");
        // Every possible truncation point fails loudly, never imports.
        for len in 0..sealed.len() {
            let err = decode_image(&sealed[..len]).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::BadImage, "truncated at {len}");
        }
    }

    #[test]
    fn bit_flips_anywhere_in_the_payload_are_detected() {
        let sealed = encode_image(&[0x3Cu8; 256]);
        let header = sealed.len() - 256;
        for (pos, bit) in [(header, 0), (header + 128, 7), (sealed.len() - 1, 3)] {
            let mut bad = sealed.clone();
            bad[pos] ^= 1 << bit;
            let err = decode_image(&bad).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Corrupt, "flip at byte {pos} bit {bit}");
        }
    }

    #[test]
    fn wrong_magic_is_not_an_sls_image() {
        let mut sealed = encode_image(b"payload");
        sealed[0] ^= 0xFF;
        let err = decode_image(&sealed).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::BadImage);
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn newer_format_version_is_rejected_not_misparsed() {
        let payload = b"from the future";
        let mut e = Encoder::new();
        e.u64(IMAGE_MAGIC);
        e.u16(IMAGE_VERSION + 1);
        e.u64(fnv64(payload));
        e.bytes(payload);
        let err = decode_image(&e.into_vec()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Unsupported);
        assert!(err.to_string().contains("version"), "{err}");
    }
}
