//! `sls send` / `sls recv` and live migration.
//!
//! Checkpoints are self-contained, so sharing or migrating an
//! application is just moving bytes: [`Host::send_checkpoint`] exports a
//! chain-merged stream (pipe it to a file, hand it to another user) and
//! [`Host::recv_checkpoint`] imports it. [`live_migrate`] implements the
//! classic iterative pre-copy loop on top of incremental checkpoints:
//! ship a full image while the application keeps running, then ship
//! shrinking deltas, and only stop the source for the final round.

use aurora_hw::LinkModel;
use aurora_objstore::CkptId;
use aurora_sim::error::{Error, Result};

use crate::metrics::RestoreBreakdown;
use crate::restore::RestoreMode;
use crate::{GroupId, Host};

/// Statistics of one live migration.
#[derive(Debug, Clone, Default)]
pub struct MigrationStats {
    /// Pre-copy rounds performed (including the final stop round).
    pub rounds: u32,
    /// Bytes shipped per round.
    pub round_bytes: Vec<u64>,
    /// Total bytes over the wire.
    pub total_bytes: u64,
    /// Source downtime (virtual) for the final stop-and-copy round.
    pub downtime: aurora_sim::time::SimDuration,
    /// Restore breakdown on the destination.
    pub restore: RestoreBreakdown,
}

impl Host {
    /// Exports a checkpoint (the latest when `ckpt` is `None`) as a
    /// self-contained byte stream (`sls send`).
    ///
    /// The stream carries exactly the sending group's namespace —
    /// its memory objects, persistent logs and metadata records — not
    /// the whole machine's history, so the receiver sees one
    /// unambiguous application.
    pub fn send_checkpoint(&mut self, gid: GroupId, ckpt: Option<CkptId>) -> Result<Vec<u8>> {
        let (store, ckpt, ns) = {
            let group = self.sls.group_ref(gid)?;
            let ckpt = match ckpt {
                Some(c) => c,
                None => group
                    .last_checkpoint()
                    .ok_or_else(|| Error::invalid("group has no checkpoints"))?,
            };
            (group.backends[0].store.clone(), ckpt, group.ns())
        };
        let prefix = format!("g{}/", gid.0);
        let stream = store.borrow_mut().export_checkpoint_filtered(
            ckpt,
            |oid| oid & !0xFFFF_FFFF_FFFF == ns,
            |key| key.starts_with(&prefix),
        );
        stream
    }

    /// Imports a checkpoint stream into this host's primary store
    /// (`sls recv`); returns the new checkpoint id, ready to restore.
    pub fn recv_checkpoint(&mut self, stream: &[u8]) -> Result<CkptId> {
        let (ckpt, durable) = self.sls.primary.borrow_mut().import_stream(stream)?;
        self.clock.advance_to(durable);
        Ok(ckpt)
    }
}

/// Live-migrates a persistence group from `src` to `dst` over `link`.
///
/// Pre-copy rounds continue until the delta stops shrinking (or
/// `max_rounds`); the final round stops the source, ships the last delta,
/// restores on the destination, and kills the source incarnation.
pub fn live_migrate(
    src: &mut Host,
    dst: &mut Host,
    gid: GroupId,
    link: &mut LinkModel,
    max_rounds: u32,
) -> Result<MigrationStats> {
    let mut stats = MigrationStats::default();
    let store = src.sls.group_ref(gid)?.backends[0].store.clone();

    // Round 1: full image while the application runs.
    let breakdown = src.checkpoint(gid, true, Some("migrate-base"))?;
    let base = breakdown.ckpt.ok_or_else(|| Error::internal("no ckpt id"))?;
    let full_stream = store.borrow_mut().export_checkpoint(base)?;
    // Charge the wire for the logical image size (pages are encoded
    // compactly in the stream, but a real migration moves real bytes).
    let full_logical = store.borrow().logical_size(base)?;
    link.transfer_sync(full_logical.max(full_stream.len() as u64));
    let (_, durable) = dst.sls.primary.borrow_mut().import_stream(&full_stream)?;
    dst.clock.advance_to(durable);
    stats.rounds = 1;
    stats.round_bytes.push(full_logical.max(full_stream.len() as u64));
    stats.total_bytes += full_logical.max(full_stream.len() as u64);

    // Iterative pre-copy: ship deltas while they shrink.
    let mut last_len = full_logical.max(full_stream.len() as u64) as usize;
    for _ in 1..max_rounds.max(2) - 1 {
        let breakdown = src.checkpoint(gid, false, None)?;
        let ckpt = breakdown.ckpt.ok_or_else(|| Error::internal("no ckpt id"))?;
        let delta = store.borrow_mut().export_delta(ckpt)?;
        let logical = store
            .borrow()
            .delta_logical_size(ckpt)?
            .max(delta.len() as u64);
        link.transfer_sync(logical);
        let (_, durable) = dst.sls.primary.borrow_mut().import_delta(&delta)?;
        dst.clock.advance_to(durable);
        stats.rounds += 1;
        stats.round_bytes.push(logical);
        stats.total_bytes += logical;
        if logical as usize >= last_len || logical < 4096 {
            break; // Converged (or not converging: stop copying).
        }
        last_len = logical as usize;
    }

    // Final round: stop the source, ship the last delta, switch over.
    let t0 = src.clock.now();
    let members = src.group_members(gid);
    for &pid in &members {
        src.kernel.stop_process(pid)?;
    }
    let breakdown = src.checkpoint(gid, false, Some("migrate-final"))?;
    let final_ckpt = breakdown.ckpt.ok_or_else(|| Error::internal("no ckpt id"))?;
    let delta = store.borrow_mut().export_delta(final_ckpt)?;
    let logical = store
        .borrow()
        .delta_logical_size(final_ckpt)?
        .max(delta.len() as u64);
    link.transfer_sync(logical);
    let (dst_ckpt, durable) = dst.sls.primary.borrow_mut().import_delta(&delta)?;
    dst.clock.advance_to(durable);
    stats.rounds += 1;
    stats.round_bytes.push(logical);
    stats.total_bytes += logical;

    // Restore on the destination, then retire the source incarnation.
    let primary = dst.sls.primary.clone();
    stats.restore = dst.restore(&primary, dst_ckpt, RestoreMode::LazyPrefetch)?;
    for pid in members {
        let _ = src.kernel.exit(pid, 0);
        src.kernel.procs.remove(&pid);
    }
    stats.downtime = src.clock.now().since(t0);
    Ok(stats)
}
