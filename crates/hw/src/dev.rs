//! The block-device model.
//!
//! A [`ModelDev`] charges `access latency + bytes/bandwidth` per request
//! against a single service queue (`busy_until`): back-to-back requests
//! pipeline behind one another the way a real NVMe submission queue does.
//!
//! Durability semantics mirror real hardware:
//!
//! * Devices with a **volatile write cache** (NVMe flash) acknowledge
//!   writes when they reach the cache; the data only becomes
//!   power-loss-safe once a subsequent `flush` *completes*.
//! * Devices in the **persistence domain** (NVDIMM, battery-backed) make
//!   writes durable at their completion instant; `flush` is a no-op
//!   barrier.
//! * Volatile devices (ramdisk) never persist across power failure; they
//!   model the paper's in-memory ephemeral checkpoint backend.

use std::collections::HashMap;
use std::sync::Arc;

use aurora_sim::cost::dev as costdev;
use aurora_sim::error::{Error, Result};
use aurora_sim::time::{SimDuration, SimTime};
use aurora_sim::SimClock;

use crate::fault::{FaultAction, FaultPlan};
use crate::mirror::MirrorDev;
use crate::retry::{DevHealth, RetryStats};
use crate::BLOCK_SIZE;

/// Static device description.
#[derive(Debug, Clone)]
pub struct DevInfo {
    /// Human-readable device name (`nvme0`, `nvd0`, ...).
    pub name: String,
    /// Capacity in blocks.
    pub blocks: u64,
    /// Whether data survives power failure at all.
    pub persistent: bool,
    /// Whether completed-but-unflushed writes survive power failure.
    pub persistence_domain: bool,
}

/// Operation counters for a device.
#[derive(Debug, Default, Clone)]
pub struct DevStats {
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Flush barriers issued.
    pub flushes: u64,
}

/// Cost model for a device.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Per-request access latency (ns).
    pub latency_ns: u64,
    /// Read bandwidth (bytes/sec).
    pub read_bw: u64,
    /// Write bandwidth (bytes/sec).
    pub write_bw: u64,
}

/// The block-device interface used by the object store and backends.
pub trait BlockDev {
    /// Device description.
    fn info(&self) -> &DevInfo;

    /// Operation counters.
    fn stats(&self) -> &DevStats;

    /// Synchronously reads `buf.len()` bytes starting at block `lba`.
    ///
    /// Advances the virtual clock to the request's completion.
    fn read(&mut self, lba: u64, buf: &mut [u8]) -> Result<()>;

    /// Submits a write without waiting; returns its completion instant.
    ///
    /// The caller's clock is *not* advanced — this is how checkpoint data
    /// is flushed in the background while the application keeps running.
    fn submit_write(&mut self, lba: u64, data: &[u8]) -> Result<SimTime>;

    /// Synchronously writes and waits for completion (not durability).
    fn write(&mut self, lba: u64, data: &[u8]) -> Result<()>;

    /// Submits a run of adjacent blocks starting at `lba` as one vectored
    /// request; returns the completion instant of the whole extent. Does
    /// not advance the caller's clock.
    ///
    /// Coalescing changes cost, never contents: the default
    /// implementation degenerates to one [`BlockDev::submit_write`] per
    /// block. [`ModelDev`] overrides it to charge a single access latency
    /// for the extent while still consulting the fault plan once per
    /// block, so power cuts and transient errors land mid-extent exactly
    /// where they would on the serial path.
    fn write_blocks(&mut self, lba: u64, blocks: &[&[u8]]) -> Result<SimTime> {
        let mut done = self.clock().now();
        for (i, b) in blocks.iter().enumerate() {
            done = done.max(self.submit_write(lba + i as u64, b)?);
        }
        Ok(done)
    }

    /// Reads a run of adjacent blocks starting at `lba` as one vectored
    /// request, filling each buffer in `bufs` with one block. Advances
    /// the virtual clock to the request's completion.
    ///
    /// Coalescing changes cost, never contents: the default
    /// implementation degenerates to one [`BlockDev::read`] per block.
    /// [`ModelDev`] overrides it to charge a single access latency for
    /// the extent while still consulting the fault plan once per block,
    /// so read faults land mid-extent exactly where they would on the
    /// serial path.
    ///
    /// # Partial-failure contract (all-or-error)
    ///
    /// On `Err`, **no buffer in `bufs` holds authoritative data** — a
    /// mid-extent fault must not leave earlier buffers ambiguously
    /// filled. [`ModelDev`] upholds this by consulting every per-block
    /// fault before filling any buffer; the default per-block loop here
    /// may partially fill `bufs` before erroring, so
    /// [`crate::retry::ResilientDev`] (which every store-facing device
    /// sits behind) re-establishes the contract by zeroing the buffers
    /// on a failed extent. Callers must treat `bufs` as unspecified
    /// after an error and never consume it.
    fn read_blocks(&mut self, lba: u64, bufs: &mut [Vec<u8>]) -> Result<()> {
        for (i, b) in bufs.iter_mut().enumerate() {
            self.read(lba + i as u64, b)?;
        }
        Ok(())
    }

    /// Issues a flush barrier; returns the instant at which every write
    /// submitted so far is durable. Does not advance the caller's clock.
    fn flush(&mut self) -> Result<SimTime>;

    /// Submits a *timing-only* write of `nbytes`: occupies the device
    /// queue and returns the completion instant, but stores no data.
    ///
    /// The object store uses this for bulk page payloads whose
    /// authoritative contents it tracks itself in a compact
    /// representation (see `aurora-objstore`); metadata records always go
    /// through the real [`BlockDev::submit_write`]. Keeping gigabyte
    /// working sets out of the device's byte store is what lets the
    /// paper-scale benchmarks run on laptop memory.
    fn submit_write_timing(&mut self, nbytes: u64) -> Result<SimTime>;

    /// Charges a timing-only read of `nbytes`, advancing the clock to its
    /// completion.
    fn charge_read_timing(&mut self, nbytes: u64) -> Result<()>;

    /// Cuts power: loses the volatile cache (torn interrupted write) and
    /// makes the device fail until [`BlockDev::power_on`].
    fn power_fail(&mut self);

    /// Restores power after a failure.
    fn power_on(&mut self);

    /// Whether the device is currently powered.
    fn powered(&self) -> bool;

    /// The virtual clock this device charges.
    fn clock(&self) -> &Arc<SimClock>;

    /// Installs a fault-injection plan, if the device supports one.
    ///
    /// Default: ignored. [`ModelDev`] honours it; see [`crate::fault`].
    fn install_fault_plan(&mut self, _plan: FaultPlan) {}

    /// Device health as judged by the resilience layer.
    ///
    /// Default: bare devices report [`DevHealth::Dead`] when unpowered
    /// and [`DevHealth::Healthy`] otherwise; [`crate::retry::ResilientDev`]
    /// refines this with failure-history tracking.
    fn health(&self) -> DevHealth {
        if self.powered() {
            DevHealth::Healthy
        } else {
            DevHealth::Dead
        }
    }

    /// Retry/fault-absorption counters, if the device tracks them.
    ///
    /// Default: all zero (bare devices do not retry).
    fn retry_stats(&self) -> RetryStats {
        RetryStats::default()
    }

    /// Attempts to repair block `lba` from redundancy: reads each stored
    /// copy, and if one passes `verify`, rewrites the copies that do not
    /// and returns the verified bytes.
    ///
    /// Default: `Ok(None)` — a single device has no twin to repair from.
    /// [`MirrorDev`] implements real read-repair; the object store calls
    /// this when a block fails content-hash verification, turning a
    /// one-replica corruption into a rewrite instead of an error.
    fn repair_block(
        &mut self,
        _lba: u64,
        _verify: &mut dyn FnMut(&[u8]) -> bool,
    ) -> Result<Option<Vec<u8>>> {
        Ok(None)
    }

    /// The underlying [`MirrorDev`], if this device is (or wraps) one.
    fn as_mirror(&self) -> Option<&MirrorDev> {
        None
    }

    /// Mutable access to the underlying [`MirrorDev`], if any.
    fn as_mirror_mut(&mut self) -> Option<&mut MirrorDev> {
        None
    }
}

/// Queue depth assumed for bulk asynchronous writes: per-request access
/// latency is amortized across this many in-flight submissions.
const WRITE_QUEUE_DEPTH: u64 = 16;

/// A pending cached write (acknowledged, not yet durable).
#[derive(Debug, Clone)]
struct CachedWrite {
    lba: u64,
    data: Vec<u8>,
}

/// The standard modelled device. See module docs for semantics.
pub struct ModelDev {
    info: DevInfo,
    model: CostModel,
    clock: Arc<SimClock>,
    busy_until: SimTime,
    /// Durable contents, by block number. Sparse: absent blocks read zero.
    stable: HashMap<u64, Vec<u8>>,
    /// Writes acknowledged but not yet flushed (volatile-cache devices).
    cache: Vec<CachedWrite>,
    powered: bool,
    stats: DevStats,
    fault: Option<FaultPlan>,
    writes_seen: u64,
    reads_seen: u64,
}

impl ModelDev {
    /// Creates a device with an explicit model.
    pub fn new(clock: Arc<SimClock>, info: DevInfo, model: CostModel) -> Self {
        ModelDev {
            info,
            model,
            clock,
            busy_until: SimTime::ZERO,
            stable: HashMap::new(),
            cache: Vec::new(),
            powered: true,
            stats: DevStats::default(),
            fault: None,
            writes_seen: 0,
            reads_seen: 0,
        }
    }

    /// An Optane 900P-class NVMe flash device (volatile write cache).
    pub fn nvme(clock: Arc<SimClock>, name: &str, blocks: u64) -> Self {
        ModelDev::new(
            clock,
            DevInfo {
                name: name.to_string(),
                blocks,
                persistent: true,
                persistence_domain: false,
            },
            CostModel {
                latency_ns: costdev::NVME_LAT_NS,
                read_bw: costdev::NVME_READ_BW,
                write_bw: costdev::NVME_WRITE_BW,
            },
        )
    }

    /// An NVDIMM: byte-class latency, writes durable at completion.
    pub fn nvdimm(clock: Arc<SimClock>, name: &str, blocks: u64) -> Self {
        ModelDev::new(
            clock,
            DevInfo {
                name: name.to_string(),
                blocks,
                persistent: true,
                persistence_domain: true,
            },
            CostModel {
                latency_ns: costdev::NVDIMM_LAT_NS,
                read_bw: costdev::NVDIMM_BW,
                write_bw: costdev::NVDIMM_BW,
            },
        )
    }

    /// A DRAM-backed ephemeral device (lost on power failure).
    pub fn ramdisk(clock: Arc<SimClock>, name: &str, blocks: u64) -> Self {
        ModelDev::new(
            clock,
            DevInfo {
                name: name.to_string(),
                blocks,
                persistent: false,
                persistence_domain: false,
            },
            CostModel {
                latency_ns: costdev::RAM_LAT_NS,
                read_bw: costdev::RAM_BW,
                write_bw: costdev::RAM_BW,
            },
        )
    }

    /// Installs a fault-injection plan. Request counting restarts at the
    /// installation point, so `power_cut(1)` hits the next write and
    /// `power_cut_on_read(1)` the next read.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
        self.writes_seen = 0;
        self.reads_seen = 0;
    }

    fn check_powered(&self) -> Result<()> {
        if self.powered {
            Ok(())
        } else {
            Err(Error::device_dead(self.info.name.clone()))
        }
    }

    fn check_range(&self, lba: u64, len: usize) -> Result<()> {
        if !len.is_multiple_of(BLOCK_SIZE) {
            return Err(Error::invalid(format!(
                "unaligned i/o length {len} on {}",
                self.info.name
            )));
        }
        let nblocks = (len / BLOCK_SIZE) as u64;
        if lba + nblocks > self.info.blocks {
            return Err(Error::no_space(format!(
                "i/o beyond device end: lba {lba} + {nblocks} > {}",
                self.info.blocks
            )));
        }
        Ok(())
    }

    /// Computes a request's completion instant and occupies the queue.
    fn service(&mut self, bytes: u64, bw: u64) -> SimTime {
        let start = self.clock.now().max(self.busy_until);
        let dur = SimDuration::from_nanos(self.model.latency_ns) + SimDuration::for_bytes(bytes, bw);
        self.busy_until = start + dur;
        self.busy_until
    }

    /// Applies a write directly to stable storage, possibly torn at
    /// `torn_at` bytes (the prefix is applied, the rest keeps old data).
    fn apply_stable(&mut self, lba: u64, data: &[u8], torn_at: Option<usize>) {
        let limit = torn_at.unwrap_or(data.len());
        for (i, chunk) in data.chunks(BLOCK_SIZE).enumerate() {
            let block_off = i * BLOCK_SIZE;
            if block_off >= limit {
                break;
            }
            let entry = self
                .stable
                .entry(lba + i as u64)
                .or_insert_with(|| vec![0u8; BLOCK_SIZE]);
            let n = (limit - block_off).min(BLOCK_SIZE);
            entry[..n].copy_from_slice(&chunk[..n]);
        }
    }

    /// Checks the fault plan before a write; returns the fault action.
    fn fault_action(&mut self, lba: u64) -> FaultAction {
        self.writes_seen += 1;
        match &self.fault {
            Some(plan) => plan.action_for_write(self.writes_seen, lba),
            None => FaultAction::None,
        }
    }

    /// Checks the fault plan before a read; returns the fault action.
    /// Reads burn their own ordinal space, so a read-side schedule does
    /// not shift write faults (and vice versa).
    fn read_fault_action(&mut self, lba: u64) -> FaultAction {
        self.reads_seen += 1;
        match &self.fault {
            Some(plan) => plan.action_for_read(self.reads_seen, lba),
            None => FaultAction::None,
        }
    }

    /// Fills one block-sized buffer from stable storage with the
    /// volatile write cache overlaid in submission order.
    fn fill_block(&self, block: u64, out: &mut [u8]) {
        match self.stable.get(&block) {
            Some(data) => out.copy_from_slice(data),
            None => out.fill(0),
        }
        for w in &self.cache {
            let wblocks = (w.data.len() / BLOCK_SIZE) as u64;
            if block >= w.lba && block < w.lba + wblocks {
                let off = ((block - w.lba) as usize) * BLOCK_SIZE;
                if let Some(src) = w.data.get(off..off + BLOCK_SIZE) {
                    out.copy_from_slice(src);
                }
            }
        }
    }

    fn drain_cache_to_stable(&mut self) {
        let cache = core::mem::take(&mut self.cache);
        for w in cache {
            self.apply_stable(w.lba, &w.data, None);
        }
    }

    /// Test/introspection hook: bytes currently sitting in the volatile
    /// write cache.
    pub fn cached_bytes(&self) -> usize {
        self.cache.iter().map(|w| w.data.len()).sum()
    }
}

impl BlockDev for ModelDev {
    fn info(&self) -> &DevInfo {
        &self.info
    }

    fn stats(&self) -> &DevStats {
        &self.stats
    }

    fn read(&mut self, lba: u64, buf: &mut [u8]) -> Result<()> {
        self.check_powered()?;
        self.check_range(lba, buf.len())?;
        // One fault ordinal per request, like `submit_write`.
        let mut corrupt = None;
        match self.read_fault_action(lba) {
            FaultAction::None => {}
            FaultAction::TransientError => {
                // The request bounces with a retryable error before any
                // data moves; a retry of the same read may succeed.
                return Err(Error::io(format!(
                    "{}: transient read error at lba {lba}",
                    self.info.name
                )));
            }
            FaultAction::LatencySpike { extra_ns } => {
                let stall_from = self.clock.now().max(self.busy_until);
                self.busy_until = stall_from + SimDuration::from_nanos(extra_ns);
            }
            FaultAction::PowerCut { .. } => {
                // Reads never mutate media: power just dies mid-request.
                self.power_fail();
                return Err(Error::device_dead(format!(
                    "{}: power cut during read",
                    self.info.name
                )));
            }
            FaultAction::CorruptBit { byte, bit } => corrupt = Some((byte, bit)),
        }
        let done = self.service(buf.len() as u64, self.model.read_bw);
        self.clock.advance_to(done);
        // Cache hits: a read must observe acknowledged writes even before
        // they are flushed (the device returns cached data).
        for (i, chunk) in buf.chunks_mut(BLOCK_SIZE).enumerate() {
            let block = lba + i as u64;
            match self.stable.get(&block) {
                Some(data) => chunk.copy_from_slice(data),
                None => chunk.fill(0),
            }
        }
        // Newer cached writes overwrite stable data (apply in order).
        for w in &self.cache {
            let wblocks = w.data.len() / BLOCK_SIZE;
            for wi in 0..wblocks {
                let block = w.lba + wi as u64;
                if block >= lba && block < lba + (buf.len() / BLOCK_SIZE) as u64 {
                    let dst = ((block - lba) as usize) * BLOCK_SIZE;
                    buf[dst..dst + BLOCK_SIZE]
                        .copy_from_slice(&w.data[wi * BLOCK_SIZE..(wi + 1) * BLOCK_SIZE]);
                }
            }
        }
        if let Some((byte, bit)) = corrupt {
            // Damaged media: the corruption lands in the *returned* data,
            // so a retry re-reads the same flipped bit.
            let idx = byte % buf.len().max(1);
            if let Some(target) = buf.get_mut(idx) {
                *target ^= 1 << (bit % 8);
            }
        }
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        Ok(())
    }

    fn read_blocks(&mut self, lba: u64, bufs: &mut [Vec<u8>]) -> Result<()> {
        self.check_powered()?;
        if bufs.is_empty() {
            return Ok(());
        }
        let mut total = 0usize;
        for b in bufs.iter() {
            if b.len() != BLOCK_SIZE {
                return Err(Error::invalid(format!(
                    "vectored read block is {} bytes on {}",
                    b.len(),
                    self.info.name
                )));
            }
            total += b.len();
        }
        self.check_range(lba, total)?;
        // The fault plan is consulted once per block — the same read
        // ordinals the serial path would burn — before any data moves,
        // so a transient error bounces the whole extent atomically and
        // a retry may resubmit the identical request.
        let mut corrupt: Vec<(usize, usize, u8)> = Vec::new();
        for i in 0..bufs.len() {
            let blba = lba + i as u64;
            match self.read_fault_action(blba) {
                FaultAction::None => {}
                FaultAction::TransientError => {
                    return Err(Error::io(format!(
                        "{}: transient read error at lba {blba}",
                        self.info.name
                    )));
                }
                FaultAction::LatencySpike { extra_ns } => {
                    let stall_from = self.clock.now().max(self.busy_until);
                    self.busy_until = stall_from + SimDuration::from_nanos(extra_ns);
                }
                FaultAction::PowerCut { .. } => {
                    self.power_fail();
                    return Err(Error::device_dead(format!(
                        "{}: power cut during read",
                        self.info.name
                    )));
                }
                FaultAction::CorruptBit { byte, bit } => corrupt.push((i, byte, bit)),
            }
        }
        // One queue occupancy for the whole extent — a single access
        // latency plus the extent's bytes. This is the coalescing win.
        let done = self.service(total as u64, self.model.read_bw);
        self.clock.advance_to(done);
        for (i, chunk) in bufs.iter_mut().enumerate() {
            let block = lba + i as u64;
            self.fill_block(block, chunk);
        }
        for (i, byte, bit) in corrupt {
            if let Some(buf) = bufs.get_mut(i) {
                let idx = byte % buf.len().max(1);
                if let Some(target) = buf.get_mut(idx) {
                    *target ^= 1 << (bit % 8);
                }
            }
        }
        self.stats.reads += 1;
        self.stats.bytes_read += total as u64;
        Ok(())
    }

    fn submit_write(&mut self, lba: u64, data: &[u8]) -> Result<SimTime> {
        self.check_powered()?;
        self.check_range(lba, data.len())?;
        match self.fault_action(lba) {
            FaultAction::None => {}
            FaultAction::TransientError => {
                // The request bounces with a retryable error: no data
                // lands, the device stays powered, and a retry of the
                // same write may succeed.
                return Err(Error::io(format!(
                    "{}: transient write error at lba {lba}",
                    self.info.name
                )));
            }
            FaultAction::LatencySpike { extra_ns } => {
                // Firmware stall: the queue blocks for extra_ns before
                // this request is serviced. The write itself proceeds.
                let stall_from = self.clock.now().max(self.busy_until);
                self.busy_until = stall_from + SimDuration::from_nanos(extra_ns);
            }
            FaultAction::PowerCut { torn_bytes } => {
                // The interrupted write lands torn directly in stable
                // storage (it raced the capacitors), then power dies.
                let torn = torn_bytes.min(data.len());
                if self.info.persistent {
                    self.apply_stable(lba, data, Some(torn));
                }
                self.power_fail();
                return Err(Error::device_dead(format!(
                    "{}: power cut during write",
                    self.info.name
                )));
            }
            FaultAction::CorruptBit { byte, bit } => {
                let mut corrupted = data.to_vec();
                let idx = byte % corrupted.len().max(1);
                corrupted[idx] ^= 1 << (bit % 8);
                let done = self.service(data.len() as u64, self.model.write_bw);
                if self.info.persistence_domain {
                    self.apply_stable(lba, &corrupted, None);
                } else {
                    self.cache.push(CachedWrite {
                        lba,
                        data: corrupted,
                    });
                }
                self.stats.writes += 1;
                self.stats.bytes_written += data.len() as u64;
                return Ok(done);
            }
        }
        let done = self.service(data.len() as u64, self.model.write_bw);
        if self.info.persistence_domain {
            // Persistence-domain devices are durable at completion.
            self.apply_stable(lba, data, None);
        } else {
            self.cache.push(CachedWrite {
                lba,
                data: data.to_vec(),
            });
        }
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        Ok(done)
    }

    fn write_blocks(&mut self, lba: u64, blocks: &[&[u8]]) -> Result<SimTime> {
        self.check_powered()?;
        if blocks.is_empty() {
            return Ok(self.clock.now());
        }
        let mut total = 0usize;
        for b in blocks {
            if b.len() != BLOCK_SIZE {
                return Err(Error::invalid(format!(
                    "vectored write block is {} bytes on {}",
                    b.len(),
                    self.info.name
                )));
            }
            total += b.len();
        }
        self.check_range(lba, total)?;
        // The fault plan is consulted once per block — the same write
        // ordinals the serial path would burn — so a schedule that cuts
        // power on write N lands mid-extent here.
        let mut payload: Vec<(u64, Vec<u8>)> = Vec::with_capacity(blocks.len());
        for (i, b) in blocks.iter().enumerate() {
            let blba = lba + i as u64;
            match self.fault_action(blba) {
                FaultAction::None => payload.push((blba, b.to_vec())),
                FaultAction::TransientError => {
                    // The whole extent bounces atomically: nothing before
                    // the faulting block has landed, so a retry may
                    // resubmit the identical extent.
                    return Err(Error::io(format!(
                        "{}: transient write error at lba {blba}",
                        self.info.name
                    )));
                }
                FaultAction::LatencySpike { extra_ns } => {
                    let stall_from = self.clock.now().max(self.busy_until);
                    self.busy_until = stall_from + SimDuration::from_nanos(extra_ns);
                    payload.push((blba, b.to_vec()));
                }
                FaultAction::PowerCut { torn_bytes } => {
                    // Blocks ahead of the interrupted one behave as on the
                    // serial path: durable inside the persistence domain,
                    // lost with the volatile cache otherwise. The
                    // interrupted block itself lands torn.
                    if self.info.persistent {
                        if self.info.persistence_domain {
                            for (plba, pdata) in &payload {
                                self.apply_stable(*plba, pdata, None);
                            }
                        }
                        let torn = torn_bytes.min(b.len());
                        self.apply_stable(blba, b, Some(torn));
                    }
                    self.power_fail();
                    return Err(Error::device_dead(format!(
                        "{}: power cut during write",
                        self.info.name
                    )));
                }
                FaultAction::CorruptBit { byte, bit } => {
                    let mut corrupted = b.to_vec();
                    let idx = byte % corrupted.len().max(1);
                    if let Some(target) = corrupted.get_mut(idx) {
                        *target ^= 1 << (bit % 8);
                    }
                    payload.push((blba, corrupted));
                }
            }
        }
        // One queue occupancy for the whole extent — a single access
        // latency plus the extent's bytes. This is the coalescing win.
        let done = self.service(total as u64, self.model.write_bw);
        if self.info.persistence_domain {
            for (blba, data) in &payload {
                self.apply_stable(*blba, data, None);
            }
        } else {
            for (blba, data) in payload {
                self.cache.push(CachedWrite { lba: blba, data });
            }
        }
        self.stats.writes += 1;
        self.stats.bytes_written += total as u64;
        Ok(done)
    }

    fn write(&mut self, lba: u64, data: &[u8]) -> Result<()> {
        let done = self.submit_write(lba, data)?;
        self.clock.advance_to(done);
        Ok(())
    }

    fn flush(&mut self) -> Result<SimTime> {
        self.check_powered()?;
        self.stats.flushes += 1;
        // A flush is a barrier behind everything queued, plus one access
        // latency for the cache drain itself.
        let start = self.clock.now().max(self.busy_until);
        let done = start + SimDuration::from_nanos(self.model.latency_ns);
        self.busy_until = done;
        self.drain_cache_to_stable();
        Ok(done)
    }

    fn submit_write_timing(&mut self, nbytes: u64) -> Result<SimTime> {
        self.check_powered()?;
        // Bulk asynchronous writes ride deep submission queues: access
        // latency pipelines across in-flight requests instead of
        // serializing per request (unlike the synchronous read path,
        // where dependent requests genuinely wait it out).
        let start = self.clock.now().max(self.busy_until);
        let dur = SimDuration::from_nanos(self.model.latency_ns / WRITE_QUEUE_DEPTH)
            + SimDuration::for_bytes(nbytes, self.model.write_bw);
        self.busy_until = start + dur;
        self.stats.writes += 1;
        self.stats.bytes_written += nbytes;
        Ok(self.busy_until)
    }

    fn charge_read_timing(&mut self, nbytes: u64) -> Result<()> {
        self.check_powered()?;
        let done = self.service(nbytes, self.model.read_bw);
        self.clock.advance_to(done);
        self.stats.reads += 1;
        self.stats.bytes_read += nbytes;
        Ok(())
    }

    fn power_fail(&mut self) {
        // Everything in the volatile cache is lost. The interrupted write,
        // if any, was handled by the fault path. Completed-but-cached
        // writes whose completion lies in the future never happened.
        self.cache.clear();
        if !self.info.persistent {
            self.stable.clear();
        }
        self.powered = false;
        self.busy_until = SimTime::ZERO;
    }

    fn power_on(&mut self) {
        self.powered = true;
        self.writes_seen = 0;
        self.reads_seen = 0;
    }

    fn powered(&self) -> bool {
        self.powered
    }

    fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.set_fault_plan(plan);
    }
}

impl core::fmt::Debug for ModelDev {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ModelDev")
            .field("name", &self.info.name)
            .field("blocks", &self.info.blocks)
            .field("powered", &self.powered)
            .field("cached", &self.cache.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(fill: u8) -> Vec<u8> {
        vec![fill; BLOCK_SIZE]
    }

    #[test]
    fn write_read_roundtrip() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 128);
        d.write(3, &block(0xAA)).unwrap();
        let mut buf = block(0);
        d.read(3, &mut buf).unwrap();
        assert_eq!(buf, block(0xAA));
        // Unwritten blocks read zero.
        d.read(4, &mut buf).unwrap();
        assert_eq!(buf, block(0));
    }

    #[test]
    fn read_charges_latency_and_bandwidth() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock.clone(), "nvme0", 128);
        let before = clock.now();
        let mut buf = block(0);
        d.read(0, &mut buf).unwrap();
        let elapsed = clock.now().since(before);
        // At least the 10us access latency.
        assert!(elapsed.as_micros() >= 10);
    }

    #[test]
    fn submitted_writes_do_not_advance_clock() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock.clone(), "nvme0", 128);
        let before = clock.now();
        let done = d.submit_write(0, &block(1)).unwrap();
        assert_eq!(clock.now(), before);
        assert!(done > before);
    }

    #[test]
    fn queueing_serializes_requests() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 128);
        let first = d.submit_write(0, &block(1)).unwrap();
        let second = d.submit_write(1, &block(2)).unwrap();
        assert!(second > first, "second request queues behind the first");
    }

    #[test]
    fn unflushed_writes_lost_on_power_failure() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 128);
        d.write(0, &block(0x11)).unwrap();
        let flush_done = d.flush().unwrap();
        d.clock().advance_to(flush_done);
        d.write(1, &block(0x22)).unwrap(); // never flushed
        d.power_fail();
        d.power_on();
        let mut buf = block(0);
        d.read(0, &mut buf).unwrap();
        assert_eq!(buf, block(0x11), "flushed block survives");
        d.read(1, &mut buf).unwrap();
        assert_eq!(buf, block(0), "unflushed block lost");
    }

    #[test]
    fn nvdimm_durable_without_flush() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvdimm(clock, "nvd0", 128);
        d.write(0, &block(0x33)).unwrap();
        d.power_fail();
        d.power_on();
        let mut buf = block(0);
        d.read(0, &mut buf).unwrap();
        assert_eq!(buf, block(0x33));
    }

    #[test]
    fn ramdisk_loses_everything() {
        let clock = SimClock::new();
        let mut d = ModelDev::ramdisk(clock, "md0", 128);
        d.write(0, &block(0x44)).unwrap();
        let done = d.flush().unwrap();
        d.clock().advance_to(done);
        d.power_fail();
        d.power_on();
        let mut buf = block(9);
        d.read(0, &mut buf).unwrap();
        assert_eq!(buf, block(0));
    }

    #[test]
    fn reads_see_cached_writes() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 128);
        d.write(5, &block(0x55)).unwrap(); // still in cache, no flush
        let mut buf = block(0);
        d.read(5, &mut buf).unwrap();
        assert_eq!(buf, block(0x55));
    }

    #[test]
    fn out_of_range_and_unaligned_rejected() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 4);
        assert!(d.write(4, &block(0)).is_err());
        assert!(d.write(0, &[0u8; 100]).is_err());
        let mut small = [0u8; 7];
        assert!(d.read(0, &mut small).is_err());
    }

    #[test]
    fn dead_device_errors() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 4);
        d.power_fail();
        assert!(d.write(0, &block(0)).is_err());
        let mut buf = block(0);
        assert!(d.read(0, &mut buf).is_err());
        assert!(d.flush().is_err());
        d.power_on();
        assert!(d.write(0, &block(0)).is_ok());
    }

    #[test]
    fn write_blocks_lands_every_block() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 128);
        let bufs = [block(0x10), block(0x11), block(0x12), block(0x13)];
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        let done = d.write_blocks(8, &refs).unwrap();
        d.clock().advance_to(done);
        let flushed = d.flush().unwrap();
        d.clock().advance_to(flushed);
        for (i, expect) in bufs.iter().enumerate() {
            let mut buf = block(0);
            d.read(8 + i as u64, &mut buf).unwrap();
            assert_eq!(&buf, expect, "block {i}");
        }
        assert_eq!(d.stats().writes, 1, "one request for the whole extent");
        assert_eq!(d.stats().bytes_written, 4 * BLOCK_SIZE as u64);
    }

    #[test]
    fn write_blocks_charges_one_access_latency() {
        let clock = SimClock::new();
        let mut serial = ModelDev::nvme(clock.clone(), "serial", 128);
        let mut vectored = ModelDev::nvme(clock, "vectored", 128);
        let bufs: Vec<Vec<u8>> = (0..8u8).map(block).collect();
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        let mut serial_done = SimTime::ZERO;
        for (i, b) in bufs.iter().enumerate() {
            serial_done = serial_done.max(serial.submit_write(i as u64, b).unwrap());
        }
        let vectored_done = vectored.write_blocks(0, &refs).unwrap();
        assert!(
            vectored_done < serial_done,
            "extent {vectored_done:?} should beat serial {serial_done:?}"
        );
    }

    #[test]
    fn write_blocks_power_cut_tears_mid_extent() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 128);
        // Durable old contents on the block the cut will tear.
        d.write(2, &block(0xAA)).unwrap();
        let done = d.flush().unwrap();
        d.clock().advance_to(done);
        // The first block of the extent is write ordinal 1 post-install.
        d.set_fault_plan(FaultPlan::torn_write(1, 100));
        let bufs = [block(0xB0), block(0xB1), block(0xB2)];
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        let err = d.write_blocks(0, &refs).unwrap_err();
        assert!(!d.powered());
        assert!(err.to_string().contains("power cut"), "{err}");
        d.power_on();
        // Torn block: 100-byte prefix of the new data over zeroes (the
        // block had never been written); blocks 1 and 2 never landed —
        // block 2 keeps its old durable contents.
        let mut buf = block(0);
        d.read(0, &mut buf).unwrap();
        assert!(buf[..100].iter().all(|&b| b == 0xB0), "torn prefix landed");
        assert!(buf[100..].iter().all(|&b| b == 0), "suffix untouched");
        d.read(1, &mut buf).unwrap();
        assert_eq!(buf, block(0), "block behind the cut never landed");
        d.read(2, &mut buf).unwrap();
        assert_eq!(buf, block(0xAA), "old durable data survives");
    }

    #[test]
    fn write_blocks_transient_bounces_whole_extent() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 128);
        d.set_fault_plan(FaultPlan::transient(2, 1));
        let bufs = [block(1), block(2), block(3)];
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        assert!(d.write_blocks(0, &refs).is_err());
        // Nothing landed: the extent bounces atomically, so the retry
        // below rewrites all three blocks.
        assert_eq!(d.cached_bytes(), 0);
        let done = d.write_blocks(0, &refs).unwrap();
        d.clock().advance_to(done);
        let flushed = d.flush().unwrap();
        d.clock().advance_to(flushed);
        let mut buf = block(0);
        d.read(1, &mut buf).unwrap();
        assert_eq!(buf, block(2));
    }

    #[test]
    fn write_blocks_nvdimm_durable_at_completion() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvdimm(clock, "nvd0", 128);
        let bufs = [block(0x61), block(0x62)];
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        d.write_blocks(4, &refs).unwrap();
        d.power_fail();
        d.power_on();
        let mut buf = block(0);
        d.read(4, &mut buf).unwrap();
        assert_eq!(buf, block(0x61));
        d.read(5, &mut buf).unwrap();
        assert_eq!(buf, block(0x62));
    }

    #[test]
    fn write_blocks_rejects_bad_geometry() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 4);
        let ok = block(0);
        let short = vec![0u8; 100];
        assert!(d.write_blocks(0, &[ok.as_slice(), short.as_slice()]).is_err());
        // Extent running past the device end.
        let bufs: Vec<Vec<u8>> = (0..3u8).map(block).collect();
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        assert!(d.write_blocks(2, &refs).is_err());
        // Empty extent is a no-op.
        assert!(d.write_blocks(0, &[]).is_ok());
    }

    #[test]
    fn read_blocks_returns_every_block() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 128);
        let bufs = [block(0x20), block(0x21), block(0x22)];
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        let done = d.write_blocks(8, &refs).unwrap();
        d.clock().advance_to(done);
        let reads_before = d.stats().reads;
        let mut out = vec![block(0); 3];
        d.read_blocks(8, &mut out).unwrap();
        assert_eq!(out, bufs.to_vec());
        assert_eq!(
            d.stats().reads,
            reads_before + 1,
            "one request for the whole extent"
        );
    }

    #[test]
    fn read_blocks_charges_one_access_latency() {
        let clock = SimClock::new();
        let mut serial = ModelDev::nvme(clock.clone(), "serial", 128);
        let mut vectored = ModelDev::nvme(clock, "vectored", 128);
        let serial_clock = serial.clock().clone();
        let before = serial_clock.now();
        let mut buf = block(0);
        for i in 0..8u64 {
            serial.read(i, &mut buf).unwrap();
        }
        let serial_elapsed = serial_clock.now().since(before);
        let before = vectored.clock().now();
        let mut out = vec![block(0); 8];
        vectored.read_blocks(0, &mut out).unwrap();
        let vectored_elapsed = vectored.clock().now().since(before);
        assert!(
            vectored_elapsed < serial_elapsed,
            "extent read {vectored_elapsed:?} should beat serial {serial_elapsed:?}"
        );
    }

    #[test]
    fn read_blocks_transient_bounces_whole_extent_then_recovers() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 128);
        d.write(3, &block(0x77)).unwrap();
        let done = d.flush().unwrap();
        d.clock().advance_to(done);
        d.set_fault_plan(crate::fault::FaultPlan::transient_reads(1, 2));
        let mut out = vec![block(0); 4];
        // Each bounced attempt burns one read ordinal (the faulting first
        // block); the third attempt clears the window and succeeds.
        assert!(d.read_blocks(0, &mut out).is_err());
        assert!(d.read_blocks(0, &mut out).is_err());
        d.read_blocks(0, &mut out).unwrap();
        assert_eq!(out.get(3), Some(&block(0x77)));
        assert!(d.powered());
    }

    #[test]
    fn read_blocks_power_cut_kills_device() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 128);
        d.set_fault_plan(crate::fault::FaultPlan::power_cut_on_read(2));
        let mut out = vec![block(0); 4];
        let err = d.read_blocks(0, &mut out).unwrap_err();
        assert!(err.to_string().contains("power cut"), "{err}");
        assert!(!d.powered());
        d.power_on();
        // Ordinals restart on power-on and the plan is still armed, so
        // only the first read is safe.
        let mut one = vec![block(0); 1];
        d.read_blocks(0, &mut one).unwrap();
    }

    #[test]
    fn read_blocks_region_corruption_flips_returned_bit() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 128);
        d.write(5, &block(0)).unwrap();
        let done = d.flush().unwrap();
        d.clock().advance_to(done);
        d.set_fault_plan(crate::fault::FaultPlan::corrupt_read_blocks(5, 6, 10, 3));
        let mut out = vec![block(0); 2];
        d.read_blocks(4, &mut out).unwrap();
        assert_eq!(out.first(), Some(&block(0)), "block outside region clean");
        let hit = out.get(1).cloned().unwrap_or_default();
        assert_eq!(hit.get(10), Some(&(1u8 << 3)), "one bit flipped");
        assert_eq!(hit.iter().filter(|&&b| b != 0).count(), 1);
        // A retry re-reads the same damaged media.
        let mut again = vec![block(0); 2];
        d.read_blocks(4, &mut again).unwrap();
        assert_eq!(again.get(1), Some(&hit));
    }

    #[test]
    fn read_blocks_rejects_bad_geometry() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 4);
        let mut short = vec![block(0), vec![0u8; 100]];
        assert!(d.read_blocks(0, &mut short).is_err());
        let mut past_end = vec![block(0); 3];
        assert!(d.read_blocks(2, &mut past_end).is_err());
        let mut empty: Vec<Vec<u8>> = Vec::new();
        assert!(d.read_blocks(0, &mut empty).is_ok());
    }

    #[test]
    fn stats_accumulate() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 16);
        d.write(0, &block(1)).unwrap();
        d.write(1, &block(2)).unwrap();
        let mut buf = block(0);
        d.read(0, &mut buf).unwrap();
        d.flush().unwrap();
        assert_eq!(d.stats().writes, 2);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().flushes, 1);
        assert_eq!(d.stats().bytes_written, 2 * BLOCK_SIZE as u64);
    }
}
