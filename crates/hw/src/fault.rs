//! Fault-injection plans for crash-consistency testing.
//!
//! The object store's recovery path (dual superblocks, CRC-protected
//! journal records, torn-tail tolerance) and SLSFS's open-unlinked
//! reference counts only earn trust if they are exercised against real
//! failures. A [`FaultPlan`] is installed on a device and decides, per
//! write, whether power is cut (optionally tearing the interrupted write)
//! or a bit is silently corrupted.

/// What happens to a particular write request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The write proceeds normally.
    None,
    /// Power is cut during this write; only `torn_bytes` of it land.
    PowerCut {
        /// Bytes of the interrupted write that reach stable media.
        torn_bytes: usize,
    },
    /// A single bit of the written data is flipped silently.
    CorruptBit {
        /// Byte offset (taken modulo the write length).
        byte: usize,
        /// Bit index within the byte (taken modulo 8).
        bit: u8,
    },
}

/// A deterministic fault-injection plan.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Cut power on the Nth write (1-based) after installation.
    pub power_cut_on_write: Option<u64>,
    /// Bytes of the interrupted write that land (torn write). Only
    /// meaningful with `power_cut_on_write`.
    pub torn_bytes: usize,
    /// Corrupt one bit of the Nth write (1-based).
    pub corrupt_on_write: Option<(u64, usize, u8)>,
}

impl FaultPlan {
    /// A plan that cuts power cleanly (no torn data) on write `n`.
    pub fn power_cut(n: u64) -> Self {
        FaultPlan {
            power_cut_on_write: Some(n),
            torn_bytes: 0,
            corrupt_on_write: None,
        }
    }

    /// A plan that cuts power on write `n`, landing only `torn` bytes.
    pub fn torn_write(n: u64, torn: usize) -> Self {
        FaultPlan {
            power_cut_on_write: Some(n),
            torn_bytes: torn,
            corrupt_on_write: None,
        }
    }

    /// A plan that flips bit `bit` of byte `byte` in write `n`.
    pub fn corrupt(n: u64, byte: usize, bit: u8) -> Self {
        FaultPlan {
            power_cut_on_write: None,
            torn_bytes: 0,
            corrupt_on_write: Some((n, byte, bit)),
        }
    }

    /// Resolves the action for the `nth` write (1-based).
    pub fn action_for_write(&self, nth: u64) -> FaultAction {
        if let Some(cut) = self.power_cut_on_write {
            if nth == cut {
                return FaultAction::PowerCut {
                    torn_bytes: self.torn_bytes,
                };
            }
        }
        if let Some((n, byte, bit)) = self.corrupt_on_write {
            if nth == n {
                return FaultAction::CorruptBit { byte, bit };
            }
        }
        FaultAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::{BlockDev, ModelDev};
    use crate::BLOCK_SIZE;
    use aurora_sim::SimClock;

    #[test]
    fn power_cut_triggers_on_exact_write() {
        let plan = FaultPlan::power_cut(3);
        assert_eq!(plan.action_for_write(1), FaultAction::None);
        assert_eq!(plan.action_for_write(2), FaultAction::None);
        assert_eq!(
            plan.action_for_write(3),
            FaultAction::PowerCut { torn_bytes: 0 }
        );
    }

    #[test]
    fn device_dies_at_planned_write() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 64);
        d.set_fault_plan(FaultPlan::power_cut(2));
        d.write(0, &vec![1u8; BLOCK_SIZE]).unwrap();
        assert!(d.write(1, &vec![2u8; BLOCK_SIZE]).is_err());
        assert!(!d.powered());
    }

    #[test]
    fn torn_write_lands_prefix_only() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 64);
        // First write flushed to make it durable, then a torn second write.
        d.write(0, &vec![0xAAu8; BLOCK_SIZE]).unwrap();
        let done = d.flush().unwrap();
        d.clock().advance_to(done);
        d.set_fault_plan(FaultPlan::torn_write(1, 100));
        assert!(d.write(0, &vec![0xBBu8; BLOCK_SIZE]).is_err());
        d.power_on();
        let mut buf = vec![0u8; BLOCK_SIZE];
        d.read(0, &mut buf).unwrap();
        assert!(buf[..100].iter().all(|&b| b == 0xBB), "prefix landed");
        assert!(buf[100..].iter().all(|&b| b == 0xAA), "suffix is old data");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 64);
        d.set_fault_plan(FaultPlan::corrupt(1, 10, 3));
        d.write(0, &vec![0u8; BLOCK_SIZE]).unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        d.read(0, &mut buf).unwrap();
        let flipped: Vec<usize> = buf.iter().enumerate().filter(|(_, &b)| b != 0).map(|(i, _)| i).collect();
        assert_eq!(flipped, vec![10]);
        assert_eq!(buf[10], 1 << 3);
    }
}
