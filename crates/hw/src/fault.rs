//! Fault-injection plans for crash-consistency and resilience testing.
//!
//! The object store's recovery path (dual superblocks, CRC-protected
//! journal records, torn-tail tolerance) and the checkpoint pipeline's
//! retry/degradation machinery only earn trust if they are exercised
//! against real failures. A [`FaultPlan`] is installed on a device and
//! decides, per write, whether power is cut (optionally tearing the
//! interrupted write), a bit is silently corrupted, the write fails with
//! a transient I/O error, or the device stalls.
//!
//! Plans are **stateless**: the decision for the `nth` write is a pure
//! function of the plan, so replaying the same schedule against the same
//! workload reproduces the same failure — the property the seeded crash
//! campaign (`aurora-core::campaign`) is built on. Randomized schedules
//! ([`FaultPlan::random`]) derive every decision from `mix64(seed ^ nth)`
//! rather than mutating RNG state.

use aurora_sim::rng::mix64;

/// What happens to a particular write request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The write proceeds normally.
    None,
    /// Power is cut during this write; only `torn_bytes` of it land.
    PowerCut {
        /// Bytes of the interrupted write that reach stable media.
        torn_bytes: usize,
    },
    /// A single bit of the written data is flipped silently.
    CorruptBit {
        /// Byte offset (taken modulo the write length).
        byte: usize,
        /// Bit index within the byte (taken modulo 8).
        bit: u8,
    },
    /// The write fails with a transient I/O error; no data lands and the
    /// device stays up. A retry of the same write may succeed.
    TransientError,
    /// The write succeeds but the device stalls for `extra_ns` first
    /// (firmware GC pause, link retraining, thermal throttle).
    LatencySpike {
        /// Extra service delay in nanoseconds.
        extra_ns: u64,
    },
}

/// Corruption scoped to a block region: every write that starts inside
/// `[start_lba, end_lba)` has one bit flipped. Models a bad flash die or
/// a damaged region of media rather than a single cosmic-ray event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptRegion {
    /// First affected block.
    pub start_lba: u64,
    /// One past the last affected block.
    pub end_lba: u64,
    /// Byte offset flipped (taken modulo the write length).
    pub byte: usize,
    /// Bit index within the byte.
    pub bit: u8,
}

/// Per-million fault probabilities for a randomized schedule.
///
/// Each write draws independently per fault class; a draw below the
/// class's rate triggers that fault. Power cuts are checked first, then
/// transient errors, corruption, and latency spikes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultRates {
    /// Probability (ppm) that a write cuts power.
    pub power_cut_ppm: u32,
    /// Probability (ppm) that a write fails transiently.
    pub transient_ppm: u32,
    /// Probability (ppm) that a write is silently corrupted.
    pub corrupt_ppm: u32,
    /// Probability (ppm) that a write hits a latency spike.
    pub latency_spike_ppm: u32,
}

impl FaultRates {
    /// A profile of a flaky-but-honest device: frequent transient errors
    /// and stalls, occasional power loss, no silent corruption.
    pub fn flaky() -> Self {
        FaultRates {
            power_cut_ppm: 20_000,     // 2%
            transient_ppm: 150_000,    // 15%
            corrupt_ppm: 0,
            latency_spike_ppm: 50_000, // 5%
        }
    }

    /// A profile of failing media: everything `flaky` does, plus silent
    /// corruption the CRC/scrub machinery must catch.
    pub fn hostile() -> Self {
        FaultRates {
            power_cut_ppm: 20_000,
            transient_ppm: 150_000,
            corrupt_ppm: 10_000, // 1%
            latency_spike_ppm: 50_000,
        }
    }
}

/// A seeded randomized fault schedule. Stateless: write `n` always
/// resolves to the same action for a given seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomFaults {
    /// Seed mixed into every per-write draw.
    pub seed: u64,
    /// Per-class fault probabilities.
    pub rates: FaultRates,
}

/// Domain-separation constants for the per-class hash draws, so the
/// classes trigger independently rather than on the same writes.
const DRAW_POWER_CUT: u64 = 0x9e37_79b9_7f4a_7c15;
const DRAW_TRANSIENT: u64 = 0xbf58_476d_1ce4_e5b9;
const DRAW_CORRUPT: u64 = 0x94d0_49bb_1331_11eb;
const DRAW_LATENCY: u64 = 0x2545_f491_4f6c_dd1d;
const DRAW_PARAMS: u64 = 0xd6e8_feb8_6659_fd93;

impl RandomFaults {
    fn draw(&self, nth: u64, class: u64) -> u64 {
        mix64(self.seed ^ nth.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ class)
    }

    fn triggers(&self, nth: u64, class: u64, ppm: u32) -> bool {
        ppm > 0 && self.draw(nth, class) % 1_000_000 < u64::from(ppm)
    }

    /// Resolves the action for the `nth` write.
    pub fn action_for_write(&self, nth: u64) -> FaultAction {
        let params = self.draw(nth, DRAW_PARAMS);
        if self.triggers(nth, DRAW_POWER_CUT, self.rates.power_cut_ppm) {
            // Tear anywhere in the first 4 KiB of the interrupted write.
            return FaultAction::PowerCut {
                torn_bytes: (params % 4096) as usize,
            };
        }
        if self.triggers(nth, DRAW_TRANSIENT, self.rates.transient_ppm) {
            return FaultAction::TransientError;
        }
        if self.triggers(nth, DRAW_CORRUPT, self.rates.corrupt_ppm) {
            return FaultAction::CorruptBit {
                byte: (params % 4096) as usize,
                bit: (params >> 13) as u8 % 8,
            };
        }
        if self.triggers(nth, DRAW_LATENCY, self.rates.latency_spike_ppm) {
            // 0.1–6.5 ms stall: firmware GC pause territory.
            return FaultAction::LatencySpike {
                extra_ns: 100_000 + (params % 64) * 100_000,
            };
        }
        FaultAction::None
    }
}

/// A deterministic fault-injection plan.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Cut power on the Nth write (1-based) after installation.
    pub power_cut_on_write: Option<u64>,
    /// Bytes of the interrupted write that land (torn write). Only
    /// meaningful with `power_cut_on_write`.
    pub torn_bytes: usize,
    /// Corrupt one bit of the Nth write (1-based).
    pub corrupt_on_write: Option<(u64, usize, u8)>,
    /// Fail writes `first..first + count` (1-based) with transient I/O
    /// errors; writes after the window succeed again.
    pub transient_window: Option<(u64, u64)>,
    /// Stall writes `first..first + count` (1-based) by `extra_ns` each:
    /// `(first, count, extra_ns)`.
    pub latency_window: Option<(u64, u64, u64)>,
    /// Corrupt every write landing in a block region.
    pub corrupt_region: Option<CorruptRegion>,
    /// Seeded randomized schedule, consulted after the deterministic
    /// fields above.
    pub random: Option<RandomFaults>,
    /// Cut power on the Nth *read* (1-based): the restore pipeline's
    /// mid-page-in crash. No media changes — reads never mutate state.
    pub power_cut_on_read: Option<u64>,
    /// Fail reads `first..first + count` (1-based) with transient I/O
    /// errors; reads after the window succeed again.
    pub transient_read_window: Option<(u64, u64)>,
    /// Flip one bit in the data *returned* by every read landing in a
    /// block region: damaged media that a retry re-reads unchanged, so
    /// only end-to-end content verification catches it.
    pub corrupt_read_region: Option<CorruptRegion>,
}

impl FaultPlan {
    /// A plan that cuts power cleanly (no torn data) on write `n`.
    pub fn power_cut(n: u64) -> Self {
        FaultPlan {
            power_cut_on_write: Some(n),
            ..FaultPlan::default()
        }
    }

    /// A plan that cuts power on write `n`, landing only `torn` bytes.
    pub fn torn_write(n: u64, torn: usize) -> Self {
        FaultPlan {
            power_cut_on_write: Some(n),
            torn_bytes: torn,
            ..FaultPlan::default()
        }
    }

    /// A plan that flips bit `bit` of byte `byte` in write `n`.
    pub fn corrupt(n: u64, byte: usize, bit: u8) -> Self {
        FaultPlan {
            corrupt_on_write: Some((n, byte, bit)),
            ..FaultPlan::default()
        }
    }

    /// A plan that fails writes `n..n + count` with transient I/O errors.
    pub fn transient(n: u64, count: u64) -> Self {
        FaultPlan {
            transient_window: Some((n, count)),
            ..FaultPlan::default()
        }
    }

    /// A plan that stalls writes `n..n + count` by `extra_ns` each.
    pub fn latency_spike(n: u64, count: u64, extra_ns: u64) -> Self {
        FaultPlan {
            latency_window: Some((n, count, extra_ns)),
            ..FaultPlan::default()
        }
    }

    /// A plan that corrupts every write into `[start_lba, end_lba)`.
    pub fn corrupt_blocks(start_lba: u64, end_lba: u64, byte: usize, bit: u8) -> Self {
        FaultPlan {
            corrupt_region: Some(CorruptRegion {
                start_lba,
                end_lba,
                byte,
                bit,
            }),
            ..FaultPlan::default()
        }
    }

    /// A seeded randomized multi-fault schedule.
    pub fn random(seed: u64, rates: FaultRates) -> Self {
        FaultPlan {
            random: Some(RandomFaults { seed, rates }),
            ..FaultPlan::default()
        }
    }

    /// A plan that cuts power on read `n` (1-based).
    pub fn power_cut_on_read(n: u64) -> Self {
        FaultPlan {
            power_cut_on_read: Some(n),
            ..FaultPlan::default()
        }
    }

    /// A plan that fails reads `n..n + count` with transient I/O errors.
    pub fn transient_reads(n: u64, count: u64) -> Self {
        FaultPlan {
            transient_read_window: Some((n, count)),
            ..FaultPlan::default()
        }
    }

    /// A plan that corrupts the data returned by every read of a block
    /// in `[start_lba, end_lba)`.
    pub fn corrupt_read_blocks(start_lba: u64, end_lba: u64, byte: usize, bit: u8) -> Self {
        FaultPlan {
            corrupt_read_region: Some(CorruptRegion {
                start_lba,
                end_lba,
                byte,
                bit,
            }),
            ..FaultPlan::default()
        }
    }

    /// Resolves the action for the `nth` write (1-based) starting at
    /// block `lba`.
    pub fn action_for_write(&self, nth: u64, lba: u64) -> FaultAction {
        if let Some(cut) = self.power_cut_on_write {
            if nth == cut {
                return FaultAction::PowerCut {
                    torn_bytes: self.torn_bytes,
                };
            }
        }
        if let Some((n, byte, bit)) = self.corrupt_on_write {
            if nth == n {
                return FaultAction::CorruptBit { byte, bit };
            }
        }
        if let Some((first, count)) = self.transient_window {
            if nth >= first && nth < first.saturating_add(count) {
                return FaultAction::TransientError;
            }
        }
        if let Some((first, count, extra_ns)) = self.latency_window {
            if nth >= first && nth < first.saturating_add(count) {
                return FaultAction::LatencySpike { extra_ns };
            }
        }
        if let Some(region) = self.corrupt_region {
            if lba >= region.start_lba && lba < region.end_lba {
                return FaultAction::CorruptBit {
                    byte: region.byte,
                    bit: region.bit,
                };
            }
        }
        if let Some(random) = &self.random {
            return random.action_for_write(nth);
        }
        FaultAction::None
    }

    /// Resolves the action for the `nth` read (1-based) of block `lba`.
    ///
    /// Reads have their own ordinal space and their own deterministic
    /// fields; the seeded `random` schedule only covers writes, since
    /// its rates are calibrated against write traffic.
    pub fn action_for_read(&self, nth: u64, lba: u64) -> FaultAction {
        if let Some(cut) = self.power_cut_on_read {
            if nth == cut {
                return FaultAction::PowerCut { torn_bytes: 0 };
            }
        }
        if let Some((first, count)) = self.transient_read_window {
            if nth >= first && nth < first.saturating_add(count) {
                return FaultAction::TransientError;
            }
        }
        if let Some(region) = self.corrupt_read_region {
            if lba >= region.start_lba && lba < region.end_lba {
                return FaultAction::CorruptBit {
                    byte: region.byte,
                    bit: region.bit,
                };
            }
        }
        FaultAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::{BlockDev, ModelDev};
    use crate::BLOCK_SIZE;
    use aurora_sim::error::ErrorKind;
    use aurora_sim::SimClock;

    #[test]
    fn power_cut_triggers_on_exact_write() {
        let plan = FaultPlan::power_cut(3);
        assert_eq!(plan.action_for_write(1, 0), FaultAction::None);
        assert_eq!(plan.action_for_write(2, 0), FaultAction::None);
        assert_eq!(
            plan.action_for_write(3, 0),
            FaultAction::PowerCut { torn_bytes: 0 }
        );
    }

    #[test]
    fn device_dies_at_planned_write() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 64);
        d.set_fault_plan(FaultPlan::power_cut(2));
        d.write(0, &vec![1u8; BLOCK_SIZE]).unwrap();
        assert!(d.write(1, &vec![2u8; BLOCK_SIZE]).is_err());
        assert!(!d.powered());
    }

    #[test]
    fn torn_write_lands_prefix_only() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 64);
        // First write flushed to make it durable, then a torn second write.
        d.write(0, &vec![0xAAu8; BLOCK_SIZE]).unwrap();
        let done = d.flush().unwrap();
        d.clock().advance_to(done);
        d.set_fault_plan(FaultPlan::torn_write(1, 100));
        assert!(d.write(0, &vec![0xBBu8; BLOCK_SIZE]).is_err());
        d.power_on();
        let mut buf = vec![0u8; BLOCK_SIZE];
        d.read(0, &mut buf).unwrap();
        assert!(buf[..100].iter().all(|&b| b == 0xBB), "prefix landed");
        assert!(buf[100..].iter().all(|&b| b == 0xAA), "suffix is old data");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 64);
        d.set_fault_plan(FaultPlan::corrupt(1, 10, 3));
        d.write(0, &vec![0u8; BLOCK_SIZE]).unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        d.read(0, &mut buf).unwrap();
        let flipped: Vec<usize> = buf.iter().enumerate().filter(|(_, &b)| b != 0).map(|(i, _)| i).collect();
        assert_eq!(flipped, vec![10]);
        assert_eq!(buf[10], 1 << 3);
    }

    #[test]
    fn transient_window_fails_then_recovers() {
        let plan = FaultPlan::transient(2, 3);
        assert_eq!(plan.action_for_write(1, 0), FaultAction::None);
        for n in 2..5 {
            assert_eq!(plan.action_for_write(n, 0), FaultAction::TransientError);
        }
        assert_eq!(plan.action_for_write(5, 0), FaultAction::None);
    }

    #[test]
    fn transient_error_is_io_and_device_stays_up() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock, "nvme0", 64);
        d.set_fault_plan(FaultPlan::transient(1, 2));
        let err = d.write(0, &vec![1u8; BLOCK_SIZE]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Io);
        assert!(d.powered(), "transient errors do not kill the device");
        // Second write still inside the window, third succeeds.
        assert!(d.write(0, &vec![1u8; BLOCK_SIZE]).is_err());
        d.write(0, &vec![1u8; BLOCK_SIZE]).unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        d.read(0, &mut buf).unwrap();
        assert_eq!(buf, vec![1u8; BLOCK_SIZE]);
    }

    #[test]
    fn latency_spike_stalls_but_succeeds() {
        let clock = SimClock::new();
        let mut d = ModelDev::nvme(clock.clone(), "nvme0", 64);
        d.set_fault_plan(FaultPlan::latency_spike(1, 1, 5_000_000));
        let before = clock.now();
        d.write(0, &vec![1u8; BLOCK_SIZE]).unwrap();
        let spiked = clock.now().since(before);
        assert!(spiked.as_nanos() >= 5_000_000, "spike charged: {spiked:?}");
        let mut buf = vec![0u8; BLOCK_SIZE];
        d.read(0, &mut buf).unwrap();
        assert_eq!(buf, vec![1u8; BLOCK_SIZE], "data landed despite stall");
    }

    #[test]
    fn region_corruption_hits_only_the_region() {
        let plan = FaultPlan::corrupt_blocks(10, 20, 0, 0);
        assert_eq!(plan.action_for_write(1, 9), FaultAction::None);
        assert_eq!(
            plan.action_for_write(2, 10),
            FaultAction::CorruptBit { byte: 0, bit: 0 }
        );
        assert_eq!(
            plan.action_for_write(77, 19),
            FaultAction::CorruptBit { byte: 0, bit: 0 }
        );
        assert_eq!(plan.action_for_write(78, 20), FaultAction::None);
    }

    #[test]
    fn random_schedule_is_deterministic() {
        let a = FaultPlan::random(42, FaultRates::hostile());
        let b = FaultPlan::random(42, FaultRates::hostile());
        for n in 1..2000 {
            assert_eq!(a.action_for_write(n, 0), b.action_for_write(n, 0));
        }
    }

    #[test]
    fn random_schedule_varies_with_seed() {
        let a = FaultPlan::random(1, FaultRates::hostile());
        let b = FaultPlan::random(2, FaultRates::hostile());
        let differs = (1..500).any(|n| a.action_for_write(n, 0) != b.action_for_write(n, 0));
        assert!(differs, "different seeds give different schedules");
    }

    #[test]
    fn random_rates_are_roughly_honoured() {
        let rates = FaultRates {
            transient_ppm: 100_000, // 10%
            ..FaultRates::default()
        };
        let plan = FaultPlan::random(7, rates);
        let trials = 10_000;
        let hits = (1..=trials)
            .filter(|&n| plan.action_for_write(n, 0) == FaultAction::TransientError)
            .count();
        let ratio = hits as f64 / trials as f64;
        assert!(
            (0.05..0.15).contains(&ratio),
            "transient rate {ratio} far from 10%"
        );
    }

    #[test]
    fn zero_rates_never_fault() {
        let plan = FaultPlan::random(99, FaultRates::default());
        for n in 1..1000 {
            assert_eq!(plan.action_for_write(n, 0), FaultAction::None);
        }
    }

    #[test]
    fn read_faults_have_their_own_ordinal_space() {
        let plan = FaultPlan::transient_reads(2, 2);
        // Writes are untouched by a read-only plan.
        assert_eq!(plan.action_for_write(2, 0), FaultAction::None);
        assert_eq!(plan.action_for_read(1, 0), FaultAction::None);
        assert_eq!(plan.action_for_read(2, 0), FaultAction::TransientError);
        assert_eq!(plan.action_for_read(3, 0), FaultAction::TransientError);
        assert_eq!(plan.action_for_read(4, 0), FaultAction::None);
    }

    #[test]
    fn read_power_cut_triggers_on_exact_read() {
        let plan = FaultPlan::power_cut_on_read(3);
        assert_eq!(plan.action_for_read(2, 0), FaultAction::None);
        assert_eq!(
            plan.action_for_read(3, 0),
            FaultAction::PowerCut { torn_bytes: 0 }
        );
        assert_eq!(plan.action_for_write(3, 0), FaultAction::None);
    }

    #[test]
    fn read_region_corruption_hits_only_the_region() {
        let plan = FaultPlan::corrupt_read_blocks(10, 20, 4, 1);
        assert_eq!(plan.action_for_read(1, 9), FaultAction::None);
        assert_eq!(
            plan.action_for_read(2, 10),
            FaultAction::CorruptBit { byte: 4, bit: 1 }
        );
        assert_eq!(plan.action_for_read(3, 20), FaultAction::None);
        // The write path never sees the read region.
        assert_eq!(plan.action_for_write(4, 10), FaultAction::None);
    }
}
