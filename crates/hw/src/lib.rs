//! Simulated storage and network hardware.
//!
//! The paper's testbed pairs Intel Optane 900P NVMe drives, NVDIMMs and a
//! 10 GbE NIC; the key observation Aurora builds on is that such devices
//! have closed most of the latency/bandwidth gap to memory. This crate
//! models that hardware on the virtual clock:
//!
//! * [`dev::ModelDev`] — a block device with an access-latency +
//!   bandwidth cost model, a volatile write cache with explicit flush
//!   semantics, and power-failure behaviour (unflushed writes are lost,
//!   the interrupted write may be torn).
//! * [`fault`] — fault-injection plans: cut power after N writes, tear the
//!   interrupted write, or corrupt stored bytes. Crash-consistency tests
//!   drive recovery through these.
//! * [`net`] — a point-to-point link model and a remote block device
//!   (device behind a link), used by the network checkpoint backend.
//! * [`file_dev`] — a block device backed by a real host file, giving the
//!   `sls` CLI genuine persistence across invocations.
//! * [`stripe`] — RAID-0 style striping across several devices (the
//!   paper's four-Optane testbed and its aggregate-bandwidth argument).
//! * [`mirror`] — N-way replication with read failover, read-repair from
//!   a twin, and background resilver of a revived replica; the
//!   self-healing layer under the object store.
//!
//! All devices implement [`dev::BlockDev`]. Reads are synchronous (they
//! advance the virtual clock); writes may be *submitted* asynchronously,
//! returning the virtual completion instant so the SLS can flush
//! checkpoints in the background — the separation the paper relies on to
//! keep application stop times under a millisecond.

pub mod dev;
pub mod fault;
pub mod file_dev;
pub mod mirror;
pub mod net;
pub mod retry;
pub mod stripe;

pub use dev::{BlockDev, DevInfo, DevStats, ModelDev};
pub use fault::{FaultPlan, FaultRates};
pub use mirror::{GoldenCopy, MirrorDev, MirrorStats, ReplicaState, ResilverBarrier};
pub use net::{Delivery, LinkFaultRates, LinkModel, LinkStats, RemoteDev, ReplLink};
pub use retry::{classify, DevHealth, FaultClass, ResilientDev, RetryPolicy, RetryStats};
pub use stripe::StripedDev;

/// Block size used by every simulated device (one page).
pub const BLOCK_SIZE: usize = aurora_sim::cost::PAGE_SIZE;
