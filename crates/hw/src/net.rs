//! Network link model and remote block devices.
//!
//! Aurora can attach a *network backend* to a persistence group: the
//! checkpoint stream is shipped to another host (`sls send` / `sls recv`,
//! replication, live migration). We model the paper's 10 GbE fabric as a
//! point-to-point [`LinkModel`] with one-way latency and bandwidth, and a
//! [`RemoteDev`] — a block device reached through such a link — so the
//! same object-store code runs against local and remote media.

use std::sync::Arc;

use aurora_sim::cost::dev as costdev;
use aurora_sim::error::Result;
use aurora_sim::rng::Xoshiro256;
use aurora_sim::time::{SimDuration, SimTime};
use aurora_sim::SimClock;

use crate::dev::{BlockDev, DevInfo, DevStats};

/// A point-to-point network link.
#[derive(Debug)]
pub struct LinkModel {
    /// One-way propagation + stack latency (ns).
    pub latency_ns: u64,
    /// Usable bandwidth (bytes/sec).
    pub bandwidth: u64,
    clock: Arc<SimClock>,
    busy_until: SimTime,
    /// Total bytes moved over the link.
    pub bytes_moved: u64,
}

impl LinkModel {
    /// Creates a link with explicit parameters.
    pub fn new(clock: Arc<SimClock>, latency_ns: u64, bandwidth: u64) -> Self {
        LinkModel {
            latency_ns,
            bandwidth,
            clock,
            busy_until: SimTime::ZERO,
            bytes_moved: 0,
        }
    }

    /// The paper's 10 GbE NIC (Intel X722-class).
    pub fn ten_gbe(clock: Arc<SimClock>) -> Self {
        LinkModel::new(clock, costdev::NET_LAT_NS, costdev::NET_BW)
    }

    /// Schedules a transfer of `bytes`; returns its arrival instant.
    ///
    /// Transfers pipeline: bandwidth is consumed serially, latency is
    /// added once per message.
    pub fn transfer(&mut self, bytes: u64) -> SimTime {
        let start = self.clock.now().max(self.busy_until);
        let serialize = SimDuration::for_bytes(bytes, self.bandwidth);
        self.busy_until = start + serialize;
        self.bytes_moved += bytes;
        // Arrival = fully serialized onto the wire + propagation.
        self.busy_until + SimDuration::from_nanos(self.latency_ns)
    }

    /// Schedules a transfer and waits for its arrival.
    pub fn transfer_sync(&mut self, bytes: u64) {
        let arrive = self.transfer(bytes);
        self.clock.advance_to(arrive);
    }

    /// One round trip of small control messages.
    pub fn rtt(&self) -> SimDuration {
        SimDuration::from_nanos(self.latency_ns * 2)
    }
}

/// Per-message fault probabilities for a [`ReplLink`], in parts per
/// million, applied independently to every message offered to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFaultRates {
    /// Silently drop the message.
    pub drop_ppm: u32,
    /// Deliver the message twice.
    pub dup_ppm: u32,
    /// Hold the message and deliver it *after* the next one.
    pub reorder_ppm: u32,
    /// Begin a transient partition: this message and the next
    /// `partition_msgs - 1` offered messages are all lost.
    pub partition_ppm: u32,
    /// Length of a transient partition, in swallowed messages.
    pub partition_msgs: u32,
}

impl LinkFaultRates {
    /// A perfectly behaved link.
    pub fn clean() -> Self {
        LinkFaultRates {
            drop_ppm: 0,
            dup_ppm: 0,
            reorder_ppm: 0,
            partition_ppm: 0,
            partition_msgs: 0,
        }
    }

    /// A mildly lossy WAN-ish link: ~2% drops, 1% dups, 2% reorders.
    pub fn lossy() -> Self {
        LinkFaultRates {
            drop_ppm: 20_000,
            dup_ppm: 10_000,
            reorder_ppm: 20_000,
            partition_ppm: 2_000,
            partition_msgs: 4,
        }
    }

    /// An actively hostile link: ~10% drops, 5% dups, 10% reorders, and
    /// frequent multi-message partitions.
    pub fn hostile() -> Self {
        LinkFaultRates {
            drop_ppm: 100_000,
            dup_ppm: 50_000,
            reorder_ppm: 100_000,
            partition_ppm: 10_000,
            partition_msgs: 8,
        }
    }

    /// True when every rate is zero.
    pub fn is_clean(&self) -> bool {
        self.drop_ppm == 0
            && self.dup_ppm == 0
            && self.reorder_ppm == 0
            && self.partition_ppm == 0
    }
}

/// What a [`ReplLink`] did to the messages offered to it.
#[derive(Debug, Default, Clone, Copy)]
pub struct LinkStats {
    /// Messages handed to `send`.
    pub offered: u64,
    /// Deliveries produced (a duplicated message counts twice).
    pub delivered: u64,
    /// Messages the link ate (drops + partition losses).
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages held back and delivered out of order.
    pub reordered: u64,
    /// Transient partitions begun.
    pub partitions: u64,
}

/// One message arriving off a [`ReplLink`] at a virtual instant.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Arrival instant on the receiving side.
    pub at: SimTime,
    /// Message payload.
    pub bytes: Vec<u8>,
}

/// A unidirectional message link with a seeded fault model: drops,
/// duplication, reordering and transient partitions, layered over a
/// [`LinkModel`] for latency/bandwidth cost. The replication protocol's
/// adversary.
///
/// Faults are decided by a deterministic seeded RNG, so a replication
/// run (and any failure it uncovers) replays exactly from its seed.
#[derive(Debug)]
pub struct ReplLink {
    link: LinkModel,
    rates: LinkFaultRates,
    rng: Xoshiro256,
    /// A message held back for reordering, waiting for a successor.
    held: Option<Vec<u8>>,
    /// Messages left to swallow in the current transient partition.
    partition_left: u32,
    /// Fault/delivery accounting.
    pub stats: LinkStats,
}

impl ReplLink {
    /// Builds a faulty link over `link` with the given rates and seed.
    pub fn new(link: LinkModel, rates: LinkFaultRates, seed: u64) -> Self {
        ReplLink {
            link,
            rates,
            rng: Xoshiro256::seed_from(seed ^ 0x5245_504C_4C4E_4B31), // "REPLLNK1"
            held: None,
            partition_left: 0,
            stats: LinkStats::default(),
        }
    }

    /// The underlying cost model (bytes moved, rtt).
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// One control-message round trip on the underlying link.
    pub fn rtt(&self) -> SimDuration {
        self.link.rtt()
    }

    fn roll(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.rng.next_below(1_000_000) < u64::from(ppm)
    }

    fn deliver(&mut self, bytes: &[u8]) -> Delivery {
        self.stats.delivered += 1;
        Delivery {
            at: self.link.transfer(bytes.len() as u64),
            bytes: bytes.to_vec(),
        }
    }

    /// Offers one message to the link; returns zero, one or two
    /// deliveries (plus any previously held message released behind this
    /// one). Dropped messages still consume wire time: the sender paid to
    /// serialize them before the loss.
    pub fn send(&mut self, bytes: &[u8]) -> Vec<Delivery> {
        self.stats.offered += 1;
        let mut out = Vec::new();
        // An ongoing transient partition eats everything.
        if self.partition_left > 0 {
            self.partition_left -= 1;
            self.stats.dropped += 1;
            self.link.transfer(bytes.len() as u64);
            return out;
        }
        if self.roll(self.rates.partition_ppm) {
            self.stats.partitions += 1;
            self.stats.dropped += 1;
            self.partition_left = self.rates.partition_msgs.saturating_sub(1);
            self.link.transfer(bytes.len() as u64);
            return out;
        }
        if self.roll(self.rates.drop_ppm) {
            self.stats.dropped += 1;
            self.link.transfer(bytes.len() as u64);
            return out;
        }
        if self.held.is_none() && self.roll(self.rates.reorder_ppm) {
            // Hold this message; it will ride behind the next survivor.
            self.stats.reordered += 1;
            self.held = Some(bytes.to_vec());
            return out;
        }
        out.push(self.deliver(bytes));
        if self.roll(self.rates.dup_ppm) {
            self.stats.duplicated += 1;
            out.push(self.deliver(bytes));
        }
        if let Some(h) = self.held.take() {
            out.push(self.deliver(&h));
        }
        out
    }

    /// Releases a held (reordered) message, if any — the link's "idle
    /// flush", so a reordered final message is not lost forever.
    pub fn flush_held(&mut self) -> Vec<Delivery> {
        match self.held.take() {
            Some(h) => vec![self.deliver(&h)],
            None => Vec::new(),
        }
    }
}

/// A block device on the far side of a network link.
///
/// Every request first crosses the link (charging latency + bandwidth for
/// the payload in the appropriate direction), then runs against the inner
/// device. This is the substrate for remote persistence groups.
pub struct RemoteDev<D: BlockDev> {
    link: LinkModel,
    inner: D,
}

impl<D: BlockDev> RemoteDev<D> {
    /// Wraps `inner` behind `link`.
    pub fn new(link: LinkModel, inner: D) -> Self {
        RemoteDev { link, inner }
    }

    /// Access to the link (for stats).
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Access to the inner device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the inner device (fault injection in tests).
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }
}

impl<D: BlockDev> BlockDev for RemoteDev<D> {
    fn info(&self) -> &DevInfo {
        self.inner.info()
    }

    fn stats(&self) -> &DevStats {
        self.inner.stats()
    }

    fn read(&mut self, lba: u64, buf: &mut [u8]) -> Result<()> {
        // Request goes out (small), response carries the payload back.
        let req_arrive = self.link.transfer(64);
        self.link.clock.advance_to(req_arrive);
        self.inner.read(lba, buf)?;
        self.link.transfer_sync(buf.len() as u64);
        Ok(())
    }

    fn submit_write(&mut self, lba: u64, data: &[u8]) -> Result<SimTime> {
        // The payload must cross the wire before the device sees it, but
        // the submitter does not wait for either.
        let arrive = self.link.transfer(data.len() as u64);
        let dev_done = self.inner.submit_write(lba, data)?;
        Ok(dev_done.max(arrive))
    }

    fn write_blocks(&mut self, lba: u64, blocks: &[&[u8]]) -> Result<SimTime> {
        // The whole extent crosses the wire as one message — coalescing
        // saves per-message latency on the link as well as on the device.
        let total: u64 = blocks.iter().map(|b| b.len() as u64).sum();
        let arrive = self.link.transfer(total);
        let dev_done = self.inner.write_blocks(lba, blocks)?;
        Ok(dev_done.max(arrive))
    }

    fn write(&mut self, lba: u64, data: &[u8]) -> Result<()> {
        let done = self.submit_write(lba, data)?;
        self.link.clock.advance_to(done);
        Ok(())
    }

    fn flush(&mut self) -> Result<SimTime> {
        let cmd_arrive = self.link.transfer(64);
        let dev_done = self.inner.flush()?;
        // The durability acknowledgement has to travel back.
        Ok(dev_done.max(cmd_arrive) + SimDuration::from_nanos(self.link.latency_ns))
    }

    fn submit_write_timing(&mut self, nbytes: u64) -> Result<SimTime> {
        let arrive = self.link.transfer(nbytes);
        let dev_done = self.inner.submit_write_timing(nbytes)?;
        Ok(dev_done.max(arrive))
    }

    fn charge_read_timing(&mut self, nbytes: u64) -> Result<()> {
        let req_arrive = self.link.transfer(64);
        self.link.clock.advance_to(req_arrive);
        self.inner.charge_read_timing(nbytes)?;
        self.link.transfer_sync(nbytes);
        Ok(())
    }

    fn power_fail(&mut self) {
        self.inner.power_fail();
    }

    fn power_on(&mut self) {
        self.inner.power_on();
    }

    fn powered(&self) -> bool {
        self.inner.powered()
    }

    fn clock(&self) -> &std::sync::Arc<SimClock> {
        self.inner.clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::ModelDev;
    use crate::BLOCK_SIZE;

    #[test]
    fn link_pipelines_transfers() {
        let clock = SimClock::new();
        let mut link = LinkModel::ten_gbe(clock.clone());
        let a = link.transfer(1_000_000);
        let b = link.transfer(1_000_000);
        assert!(b > a, "second message serializes behind the first");
        assert_eq!(link.bytes_moved, 2_000_000);
    }

    #[test]
    fn remote_write_costs_more_than_local() {
        let clock = SimClock::new();
        let mut local = ModelDev::nvme(clock.clone(), "nvme-local", 256);
        let remote_clock = clock.clone();
        let mut remote = RemoteDev::new(
            LinkModel::ten_gbe(remote_clock.clone()),
            ModelDev::nvme(remote_clock, "nvme-remote", 256),
        );
        let data = vec![7u8; BLOCK_SIZE];

        let t0 = clock.now();
        local.write(0, &data).unwrap();
        let local_cost = clock.now().since(t0);

        let t1 = clock.now();
        remote.write(0, &data).unwrap();
        let remote_cost = clock.now().since(t1);

        assert!(
            remote_cost > local_cost,
            "remote {remote_cost} <= local {local_cost}"
        );
    }

    #[test]
    fn remote_read_roundtrips_data() {
        let clock = SimClock::new();
        let mut remote = RemoteDev::new(
            LinkModel::ten_gbe(clock.clone()),
            ModelDev::nvme(clock, "nvme-remote", 64),
        );
        let data = vec![0x5Au8; BLOCK_SIZE];
        remote.write(3, &data).unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        remote.read(3, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn link_busy_until_serializes_back_to_back_transfers() {
        let clock = SimClock::new();
        let mut link = LinkModel::new(clock.clone(), 1_000, 1_000_000_000);
        // 1 MB at 1 GB/s serializes in exactly 1 ms; arrival adds the
        // 1 µs one-way latency once per message.
        let a = link.transfer(1_000_000);
        assert_eq!(a.since(SimTime::ZERO).as_nanos(), 1_000_000 + 1_000);
        // Second message starts only after the first leaves the wire:
        // serialization intervals are disjoint, latency still counted once.
        let b = link.transfer(1_000_000);
        assert_eq!(b.since(SimTime::ZERO).as_nanos(), 2_000_000 + 1_000);
        // After the wire drains, a fresh transfer starts at `now`, not at
        // the stale busy_until.
        clock.advance_to(SimTime::ZERO + SimDuration::from_nanos(10_000_000));
        let c = link.transfer(1_000_000);
        assert_eq!(c.since(SimTime::ZERO).as_nanos(), 11_000_000 + 1_000);
        assert_eq!(link.bytes_moved, 3_000_000);
    }

    #[test]
    fn link_rtt_is_twice_one_way_latency() {
        let clock = SimClock::new();
        let link = LinkModel::new(clock.clone(), 25_000, 1_000_000_000);
        assert_eq!(link.rtt().as_nanos(), 50_000);
        assert_eq!(
            LinkModel::ten_gbe(clock).rtt().as_nanos(),
            2 * costdev::NET_LAT_NS
        );
    }

    #[test]
    fn remote_dev_accounts_wire_bytes_per_direction() {
        let clock = SimClock::new();
        let mut remote = RemoteDev::new(
            LinkModel::ten_gbe(clock.clone()),
            ModelDev::nvme(clock, "nvme-remote", 64),
        );
        let data = vec![9u8; BLOCK_SIZE];
        remote.write(0, &data).unwrap();
        // A write ships exactly the payload.
        assert_eq!(remote.link().bytes_moved, BLOCK_SIZE as u64);
        let mut buf = vec![0u8; BLOCK_SIZE];
        remote.read(0, &mut buf).unwrap();
        // A read adds a 64-byte request plus the payload response.
        assert_eq!(remote.link().bytes_moved, 2 * BLOCK_SIZE as u64 + 64);
        remote.flush().unwrap();
        // A flush adds only the 64-byte command (the ack is pure latency).
        assert_eq!(remote.link().bytes_moved, 2 * BLOCK_SIZE as u64 + 128);
    }

    #[test]
    fn repl_link_clean_delivers_everything_in_order() {
        let clock = SimClock::new();
        let mut link = ReplLink::new(
            LinkModel::ten_gbe(clock),
            LinkFaultRates::clean(),
            7,
        );
        let mut arrivals = Vec::new();
        for i in 0u8..10 {
            for d in link.send(&[i; 100]) {
                arrivals.push((d.at, d.bytes[0]));
            }
        }
        assert_eq!(arrivals.len(), 10);
        let mut sorted = arrivals.clone();
        sorted.sort();
        assert_eq!(arrivals, sorted, "clean link preserves order");
        assert_eq!(link.stats.offered, 10);
        assert_eq!(link.stats.delivered, 10);
        assert_eq!(link.stats.dropped, 0);
    }

    #[test]
    fn repl_link_faults_are_seed_deterministic() {
        let run = |seed: u64| {
            let clock = SimClock::new();
            let mut link = ReplLink::new(
                LinkModel::ten_gbe(clock),
                LinkFaultRates::hostile(),
                seed,
            );
            let mut log = Vec::new();
            for i in 0u8..200 {
                for d in link.send(&[i; 64]) {
                    log.push((d.at, d.bytes[0]));
                }
            }
            (log, link.stats)
        };
        let (log_a, stats_a) = run(42);
        let (log_b, stats_b) = run(42);
        assert_eq!(log_a, log_b, "same seed replays identically");
        assert_eq!(stats_a.dropped, stats_b.dropped);
        let (log_c, _) = run(43);
        assert_ne!(log_a, log_c, "different seed differs");
        // A hostile link at these rates must actually misbehave.
        assert!(stats_a.dropped > 0, "expected drops: {stats_a:?}");
        assert!(stats_a.duplicated > 0, "expected dups: {stats_a:?}");
        assert!(stats_a.reordered > 0, "expected reorders: {stats_a:?}");
        // Conservation: every offered message is delivered, dropped, or
        // still held for reordering (at most one); duplicates add extras.
        let still_held = stats_a.offered + stats_a.duplicated
            - stats_a.delivered
            - stats_a.dropped;
        assert!(still_held <= 1, "at most one message held: {stats_a:?}");
    }

    #[test]
    fn repl_link_flush_held_releases_reordered_tail() {
        let clock = SimClock::new();
        // Reorder-only link: every message is a candidate to be held.
        let rates = LinkFaultRates {
            reorder_ppm: 1_000_000,
            ..LinkFaultRates::clean()
        };
        let mut link = ReplLink::new(LinkModel::ten_gbe(clock), rates, 1);
        // First send is always held (held slot empty + certain reorder).
        assert!(link.send(b"tail").is_empty());
        let out = link.flush_held();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bytes, b"tail");
        assert!(link.flush_held().is_empty());
    }

    #[test]
    fn repl_link_partition_swallows_a_run_of_messages() {
        let clock = SimClock::new();
        let rates = LinkFaultRates {
            partition_ppm: 1_000_000, // every message starts a partition
            partition_msgs: 3,
            ..LinkFaultRates::clean()
        };
        let mut link = ReplLink::new(LinkModel::ten_gbe(clock), rates, 5);
        for i in 0u8..6 {
            assert!(link.send(&[i]).is_empty(), "partition eats msg {i}");
        }
        // Six messages = two back-to-back 3-message partitions.
        assert_eq!(link.stats.partitions, 2);
        assert_eq!(link.stats.dropped, 6);
        assert_eq!(link.stats.delivered, 0);
    }

    #[test]
    fn remote_flush_includes_ack_latency() {
        let clock = SimClock::new();
        let mut remote = RemoteDev::new(
            LinkModel::ten_gbe(clock.clone()),
            ModelDev::nvme(clock.clone(), "nvme-remote", 64),
        );
        remote.write(0, &vec![1u8; BLOCK_SIZE]).unwrap();
        let durable = remote.flush().unwrap();
        // Ack must arrive at least one link latency after "now".
        assert!(durable.since(clock.now()).as_nanos() >= costdev::NET_LAT_NS);
    }
}
