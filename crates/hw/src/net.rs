//! Network link model and remote block devices.
//!
//! Aurora can attach a *network backend* to a persistence group: the
//! checkpoint stream is shipped to another host (`sls send` / `sls recv`,
//! replication, live migration). We model the paper's 10 GbE fabric as a
//! point-to-point [`LinkModel`] with one-way latency and bandwidth, and a
//! [`RemoteDev`] — a block device reached through such a link — so the
//! same object-store code runs against local and remote media.

use std::sync::Arc;

use aurora_sim::cost::dev as costdev;
use aurora_sim::error::Result;
use aurora_sim::time::{SimDuration, SimTime};
use aurora_sim::SimClock;

use crate::dev::{BlockDev, DevInfo, DevStats};

/// A point-to-point network link.
#[derive(Debug)]
pub struct LinkModel {
    /// One-way propagation + stack latency (ns).
    pub latency_ns: u64,
    /// Usable bandwidth (bytes/sec).
    pub bandwidth: u64,
    clock: Arc<SimClock>,
    busy_until: SimTime,
    /// Total bytes moved over the link.
    pub bytes_moved: u64,
}

impl LinkModel {
    /// Creates a link with explicit parameters.
    pub fn new(clock: Arc<SimClock>, latency_ns: u64, bandwidth: u64) -> Self {
        LinkModel {
            latency_ns,
            bandwidth,
            clock,
            busy_until: SimTime::ZERO,
            bytes_moved: 0,
        }
    }

    /// The paper's 10 GbE NIC (Intel X722-class).
    pub fn ten_gbe(clock: Arc<SimClock>) -> Self {
        LinkModel::new(clock, costdev::NET_LAT_NS, costdev::NET_BW)
    }

    /// Schedules a transfer of `bytes`; returns its arrival instant.
    ///
    /// Transfers pipeline: bandwidth is consumed serially, latency is
    /// added once per message.
    pub fn transfer(&mut self, bytes: u64) -> SimTime {
        let start = self.clock.now().max(self.busy_until);
        let serialize = SimDuration::for_bytes(bytes, self.bandwidth);
        self.busy_until = start + serialize;
        self.bytes_moved += bytes;
        // Arrival = fully serialized onto the wire + propagation.
        self.busy_until + SimDuration::from_nanos(self.latency_ns)
    }

    /// Schedules a transfer and waits for its arrival.
    pub fn transfer_sync(&mut self, bytes: u64) {
        let arrive = self.transfer(bytes);
        self.clock.advance_to(arrive);
    }

    /// One round trip of small control messages.
    pub fn rtt(&self) -> SimDuration {
        SimDuration::from_nanos(self.latency_ns * 2)
    }
}

/// A block device on the far side of a network link.
///
/// Every request first crosses the link (charging latency + bandwidth for
/// the payload in the appropriate direction), then runs against the inner
/// device. This is the substrate for remote persistence groups.
pub struct RemoteDev<D: BlockDev> {
    link: LinkModel,
    inner: D,
}

impl<D: BlockDev> RemoteDev<D> {
    /// Wraps `inner` behind `link`.
    pub fn new(link: LinkModel, inner: D) -> Self {
        RemoteDev { link, inner }
    }

    /// Access to the link (for stats).
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Access to the inner device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the inner device (fault injection in tests).
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }
}

impl<D: BlockDev> BlockDev for RemoteDev<D> {
    fn info(&self) -> &DevInfo {
        self.inner.info()
    }

    fn stats(&self) -> &DevStats {
        self.inner.stats()
    }

    fn read(&mut self, lba: u64, buf: &mut [u8]) -> Result<()> {
        // Request goes out (small), response carries the payload back.
        let req_arrive = self.link.transfer(64);
        self.link.clock.advance_to(req_arrive);
        self.inner.read(lba, buf)?;
        self.link.transfer_sync(buf.len() as u64);
        Ok(())
    }

    fn submit_write(&mut self, lba: u64, data: &[u8]) -> Result<SimTime> {
        // The payload must cross the wire before the device sees it, but
        // the submitter does not wait for either.
        let arrive = self.link.transfer(data.len() as u64);
        let dev_done = self.inner.submit_write(lba, data)?;
        Ok(dev_done.max(arrive))
    }

    fn write_blocks(&mut self, lba: u64, blocks: &[&[u8]]) -> Result<SimTime> {
        // The whole extent crosses the wire as one message — coalescing
        // saves per-message latency on the link as well as on the device.
        let total: u64 = blocks.iter().map(|b| b.len() as u64).sum();
        let arrive = self.link.transfer(total);
        let dev_done = self.inner.write_blocks(lba, blocks)?;
        Ok(dev_done.max(arrive))
    }

    fn write(&mut self, lba: u64, data: &[u8]) -> Result<()> {
        let done = self.submit_write(lba, data)?;
        self.link.clock.advance_to(done);
        Ok(())
    }

    fn flush(&mut self) -> Result<SimTime> {
        let cmd_arrive = self.link.transfer(64);
        let dev_done = self.inner.flush()?;
        // The durability acknowledgement has to travel back.
        Ok(dev_done.max(cmd_arrive) + SimDuration::from_nanos(self.link.latency_ns))
    }

    fn submit_write_timing(&mut self, nbytes: u64) -> Result<SimTime> {
        let arrive = self.link.transfer(nbytes);
        let dev_done = self.inner.submit_write_timing(nbytes)?;
        Ok(dev_done.max(arrive))
    }

    fn charge_read_timing(&mut self, nbytes: u64) -> Result<()> {
        let req_arrive = self.link.transfer(64);
        self.link.clock.advance_to(req_arrive);
        self.inner.charge_read_timing(nbytes)?;
        self.link.transfer_sync(nbytes);
        Ok(())
    }

    fn power_fail(&mut self) {
        self.inner.power_fail();
    }

    fn power_on(&mut self) {
        self.inner.power_on();
    }

    fn powered(&self) -> bool {
        self.inner.powered()
    }

    fn clock(&self) -> &std::sync::Arc<SimClock> {
        self.inner.clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::ModelDev;
    use crate::BLOCK_SIZE;

    #[test]
    fn link_pipelines_transfers() {
        let clock = SimClock::new();
        let mut link = LinkModel::ten_gbe(clock.clone());
        let a = link.transfer(1_000_000);
        let b = link.transfer(1_000_000);
        assert!(b > a, "second message serializes behind the first");
        assert_eq!(link.bytes_moved, 2_000_000);
    }

    #[test]
    fn remote_write_costs_more_than_local() {
        let clock = SimClock::new();
        let mut local = ModelDev::nvme(clock.clone(), "nvme-local", 256);
        let remote_clock = clock.clone();
        let mut remote = RemoteDev::new(
            LinkModel::ten_gbe(remote_clock.clone()),
            ModelDev::nvme(remote_clock, "nvme-remote", 256),
        );
        let data = vec![7u8; BLOCK_SIZE];

        let t0 = clock.now();
        local.write(0, &data).unwrap();
        let local_cost = clock.now().since(t0);

        let t1 = clock.now();
        remote.write(0, &data).unwrap();
        let remote_cost = clock.now().since(t1);

        assert!(
            remote_cost > local_cost,
            "remote {remote_cost} <= local {local_cost}"
        );
    }

    #[test]
    fn remote_read_roundtrips_data() {
        let clock = SimClock::new();
        let mut remote = RemoteDev::new(
            LinkModel::ten_gbe(clock.clone()),
            ModelDev::nvme(clock, "nvme-remote", 64),
        );
        let data = vec![0x5Au8; BLOCK_SIZE];
        remote.write(3, &data).unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        remote.read(3, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn remote_flush_includes_ack_latency() {
        let clock = SimClock::new();
        let mut remote = RemoteDev::new(
            LinkModel::ten_gbe(clock.clone()),
            ModelDev::nvme(clock.clone(), "nvme-remote", 64),
        );
        remote.write(0, &vec![1u8; BLOCK_SIZE]).unwrap();
        let durable = remote.flush().unwrap();
        // Ack must arrive at least one link latency after "now".
        assert!(durable.since(clock.now()).as_nanos() >= costdev::NET_LAT_NS);
    }
}
