//! Striped (RAID-0 style) device sets.
//!
//! The paper's testbed has *four* Intel Optane 900P drives and leans on
//! aggregate PCIe bandwidth ("up to 256 GB/s, more than that of
//! memory"). [`StripedDev`] models that: blocks stripe round-robin
//! across N member devices, reads/writes split across members'
//! independent queues, and durability is the slowest member's flush.
//! Checkpoint flush bandwidth — and with it the sustainable checkpoint
//! frequency — scales with the stripe width (see the `tables media`
//! and stripe experiments).

use std::sync::Arc;

use aurora_sim::error::{Error, Result};
use aurora_sim::time::SimTime;
use aurora_sim::SimClock;

use crate::dev::{BlockDev, DevInfo, DevStats};
use crate::BLOCK_SIZE;

/// A stripe set over homogeneous members.
pub struct StripedDev<D: BlockDev> {
    members: Vec<D>,
    info: DevInfo,
    stats: DevStats,
    /// Round-robin cursor for timing-only submissions.
    rr: usize,
}

impl<D: BlockDev> StripedDev<D> {
    /// Builds a stripe set; capacity is the sum of the members'.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty (configuration error).
    pub fn new(members: Vec<D>) -> Self {
        assert!(!members.is_empty(), "stripe needs at least one member");
        let blocks: u64 = members.iter().map(|m| m.info().blocks).sum();
        let info = DevInfo {
            name: format!("stripe{}x-{}", members.len(), members[0].info().name),
            blocks,
            persistent: members.iter().all(|m| m.info().persistent),
            persistence_domain: members.iter().all(|m| m.info().persistence_domain),
        };
        StripedDev {
            members,
            info,
            stats: DevStats::default(),
            rr: 0,
        }
    }

    /// Number of members.
    pub fn width(&self) -> usize {
        self.members.len()
    }

    fn locate(&self, lba: u64) -> (usize, u64) {
        let n = self.members.len() as u64;
        ((lba % n) as usize, lba / n)
    }
}

impl<D: BlockDev> BlockDev for StripedDev<D> {
    fn info(&self) -> &DevInfo {
        &self.info
    }

    fn stats(&self) -> &DevStats {
        &self.stats
    }

    fn read(&mut self, lba: u64, buf: &mut [u8]) -> Result<()> {
        if !buf.len().is_multiple_of(BLOCK_SIZE) {
            return Err(Error::invalid("unaligned stripe read"));
        }
        for (i, chunk) in buf.chunks_mut(BLOCK_SIZE).enumerate() {
            let (member, mlba) = self.locate(lba + i as u64);
            self.members[member].read(mlba, chunk)?;
        }
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        Ok(())
    }

    fn submit_write(&mut self, lba: u64, data: &[u8]) -> Result<SimTime> {
        if !data.len().is_multiple_of(BLOCK_SIZE) {
            return Err(Error::invalid("unaligned stripe write"));
        }
        let mut done = SimTime::ZERO;
        for (i, chunk) in data.chunks(BLOCK_SIZE).enumerate() {
            let (member, mlba) = self.locate(lba + i as u64);
            done = done.max(self.members[member].submit_write(mlba, chunk)?);
        }
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        Ok(done)
    }

    fn write_blocks(&mut self, lba: u64, blocks: &[&[u8]]) -> Result<SimTime> {
        if blocks.is_empty() {
            return Ok(self.clock().now());
        }
        // Round-robin placement means the blocks of a contiguous extent
        // land on each member as one contiguous inner run, so the split
        // preserves coalescing: each member gets a single vectored write.
        let mut runs: Vec<(Option<u64>, Vec<&[u8]>)> = vec![(None, Vec::new()); self.members.len()];
        for (i, b) in blocks.iter().enumerate() {
            let (member, mlba) = self.locate(lba + i as u64);
            if let Some(run) = runs.get_mut(member) {
                if run.0.is_none() {
                    run.0 = Some(mlba);
                }
                run.1.push(b);
            }
        }
        let mut done = SimTime::ZERO;
        for (m, (start, run)) in self.members.iter_mut().zip(runs) {
            if let Some(start) = start {
                done = done.max(m.write_blocks(start, &run)?);
            }
        }
        self.stats.writes += 1;
        self.stats.bytes_written += blocks.iter().map(|b| b.len() as u64).sum::<u64>();
        Ok(done)
    }

    fn write(&mut self, lba: u64, data: &[u8]) -> Result<()> {
        let done = self.submit_write(lba, data)?;
        self.clock().advance_to(done);
        Ok(())
    }

    fn flush(&mut self) -> Result<SimTime> {
        let mut done = SimTime::ZERO;
        for m in &mut self.members {
            done = done.max(m.flush()?);
        }
        self.stats.flushes += 1;
        Ok(done)
    }

    fn submit_write_timing(&mut self, nbytes: u64) -> Result<SimTime> {
        // Spread bulk payloads across the members round-robin so their
        // queues drain in parallel — this is where the bandwidth
        // aggregation shows up.
        let n = self.members.len();
        let share = nbytes / n as u64;
        let remainder = nbytes - share * n as u64;
        let mut done = SimTime::ZERO;
        for i in 0..n {
            let member = (self.rr + i) % n;
            let bytes = if i == 0 { share + remainder } else { share };
            if bytes > 0 {
                done = done.max(self.members[member].submit_write_timing(bytes)?);
            }
        }
        self.rr = (self.rr + 1) % n;
        self.stats.writes += 1;
        self.stats.bytes_written += nbytes;
        Ok(done)
    }

    fn charge_read_timing(&mut self, nbytes: u64) -> Result<()> {
        // Reads also split across members; the caller waits for the max.
        let n = self.members.len() as u64;
        let share = nbytes.div_ceil(n);
        for m in &mut self.members {
            m.charge_read_timing(share.min(nbytes))?;
        }
        self.stats.reads += 1;
        self.stats.bytes_read += nbytes;
        Ok(())
    }

    fn power_fail(&mut self) {
        for m in &mut self.members {
            m.power_fail();
        }
    }

    fn power_on(&mut self) {
        for m in &mut self.members {
            m.power_on();
        }
    }

    fn powered(&self) -> bool {
        self.members.iter().all(|m| m.powered())
    }

    fn clock(&self) -> &Arc<SimClock> {
        self.members[0].clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::ModelDev;

    fn stripe(n: usize) -> StripedDev<ModelDev> {
        let clock = SimClock::new();
        let members = (0..n)
            .map(|i| ModelDev::nvme(clock.clone(), &format!("nvme{i}"), 1024))
            .collect();
        StripedDev::new(members)
    }

    #[test]
    fn blocks_roundtrip_across_members() {
        let mut s = stripe(4);
        assert_eq!(s.info().blocks, 4096);
        for i in 0..16u64 {
            s.write(i, &vec![i as u8; BLOCK_SIZE]).unwrap();
        }
        let done = s.flush().unwrap();
        s.clock().advance_to(done);
        for i in 0..16u64 {
            let mut buf = vec![0u8; BLOCK_SIZE];
            s.read(i, &mut buf).unwrap();
            assert_eq!(buf, vec![i as u8; BLOCK_SIZE], "block {i}");
        }
    }

    #[test]
    fn bulk_write_bandwidth_scales_with_width() {
        // 64 MiB of timing-only writes: a 4-wide stripe should finish
        // roughly 4x sooner than a single device.
        let mut single = stripe(1);
        let t1 = single.submit_write_timing(64 << 20).unwrap();
        let lone = t1.since(single.clock().now());

        let mut quad = stripe(4);
        let t4 = quad.submit_write_timing(64 << 20).unwrap();
        let wide = t4.since(quad.clock().now());

        let speedup = lone.as_nanos() as f64 / wide.as_nanos() as f64;
        assert!(
            (3.0..=4.5).contains(&speedup),
            "expected ~4x, got {speedup:.2}x"
        );
    }

    #[test]
    fn vectored_write_splits_across_members() {
        let mut s = stripe(4);
        let bufs: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; BLOCK_SIZE]).collect();
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        // Start off-stripe-boundary so inner runs begin at differing lbas.
        let done = s.write_blocks(6, &refs).unwrap();
        s.clock().advance_to(done);
        let flushed = s.flush().unwrap();
        s.clock().advance_to(flushed);
        for (i, expect) in bufs.iter().enumerate() {
            let mut buf = vec![0u8; BLOCK_SIZE];
            s.read(6 + i as u64, &mut buf).unwrap();
            assert_eq!(&buf, expect, "block {i}");
        }
        // Each member serviced its share as a single vectored request.
        let member_writes: u64 = s.members.iter().map(|m| m.stats().writes).sum();
        assert_eq!(member_writes, 4);
    }

    #[test]
    fn durability_follows_the_slowest_member() {
        let mut s = stripe(2);
        s.write(0, &vec![1u8; BLOCK_SIZE]).unwrap();
        let done = s.flush().unwrap();
        assert!(done >= s.clock().now());
        // Power semantics fan out.
        s.power_fail();
        assert!(!s.powered());
        assert!(s.write(0, &vec![1u8; BLOCK_SIZE]).is_err());
        s.power_on();
        assert!(s.powered());
    }
}
