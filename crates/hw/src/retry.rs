//! Retry, backoff and device-health tracking.
//!
//! Real NVMe devices bounce requests transiently — firmware GC pauses,
//! thermal throttling, link resets — and a storage stack that treats
//! every `EIO` as fatal aborts checkpoints it could have completed. This
//! module classifies errors into *transient* (worth retrying) and
//! *permanent* (power loss, corruption, out of space), and wraps any
//! [`BlockDev`] in a [`ResilientDev`] that absorbs transient faults with
//! bounded exponential backoff.
//!
//! Backoff delays are charged to the device's [`SimClock`] — never
//! wall-clock — and jitter is derived from `mix64`, so a run with a given
//! fault schedule is exactly reproducible.
//!
//! The wrapper also tracks health: consecutive failures mark the device
//! [`DevHealth::Degraded`]; power loss or a dead inner device marks it
//! [`DevHealth::Dead`] until power returns. The checkpoint pipeline reads
//! this to decide between retrying, degrading to a full checkpoint, or
//! aborting while the previous snapshot stays intact.

use aurora_sim::error::{Error, ErrorKind, Result};
use aurora_sim::rng::mix64;
use aurora_sim::time::{SimDuration, SimTime};
use aurora_sim::SimClock;
use std::sync::Arc;

use crate::dev::{BlockDev, DevInfo, DevStats};
use crate::fault::FaultPlan;

/// Transient-vs-permanent classification of an [`ErrorKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Worth resubmitting the same request.
    Transient,
    /// Retrying cannot cure it; surface to the caller.
    Permanent,
}

/// Classifies every error kind for the retry layer.
///
/// `Io` models a request the device bounced (it may succeed on retry);
/// `WouldBlock` models a momentarily full queue. Everything else —
/// power loss, corruption, out-of-space, invalid arguments — will not be
/// cured by resubmitting the same request.
///
/// The match is deliberately exhaustive with no `_` arm and `aurora-lint`
/// keeps it that way: adding an `ErrorKind` variant without deciding its
/// class is a compile error, never a silent fall-through.
pub fn classify(kind: ErrorKind) -> FaultClass {
    match kind {
        ErrorKind::Io | ErrorKind::WouldBlock => FaultClass::Transient,
        ErrorKind::NotFound
        | ErrorKind::AlreadyExists
        | ErrorKind::InvalidArgument
        | ErrorKind::BadDescriptor
        | ErrorKind::NotPermitted
        | ErrorKind::NoMemory
        | ErrorKind::NoSpace
        | ErrorKind::Fault
        | ErrorKind::BrokenPipe
        | ErrorKind::NotConnected
        | ErrorKind::NotEmpty
        | ErrorKind::IsDirectory
        | ErrorKind::NotDirectory
        | ErrorKind::CrossDevice
        | ErrorKind::DeviceDead
        | ErrorKind::Corrupt
        | ErrorKind::BadImage
        | ErrorKind::Unsupported
        | ErrorKind::Internal => FaultClass::Permanent,
    }
}

/// Whether an error is worth retrying at the device layer.
pub fn is_transient(kind: ErrorKind) -> bool {
    classify(kind) == FaultClass::Transient
}

/// Device health as judged by the resilience layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DevHealth {
    /// Operating normally.
    #[default]
    Healthy,
    /// Recent consecutive failures; still accepting requests.
    Degraded,
    /// Powered off or failed permanently; requests will not succeed.
    Dead,
}

impl DevHealth {
    /// Short lowercase label for logs and the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            DevHealth::Healthy => "healthy",
            DevHealth::Degraded => "degraded",
            DevHealth::Dead => "dead",
        }
    }
}

/// Counters kept by the resilience layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Write retry attempts issued (each resubmission counts once).
    pub writes_retried: u64,
    /// Read retry attempts issued (each resubmission counts once).
    pub reads_retried: u64,
    /// Transient faults masked by an eventually-successful retry.
    pub transient_absorbed: u64,
    /// Errors returned to the caller after retries were exhausted or the
    /// error was permanent.
    pub failures_surfaced: u64,
    /// Current run of consecutive failed requests.
    pub consecutive_failures: u32,
}

/// Bounded exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry (ns); doubles per attempt.
    pub base_backoff_ns: u64,
    /// Backoff ceiling (ns).
    pub max_backoff_ns: u64,
    /// Seed for the jitter hash.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// 4 attempts, 50 µs base, 10 ms ceiling: enough to ride out a
    /// several-write transient window without stalling a checkpoint
    /// noticeably.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ns: 50_000,
            max_backoff_ns: 10_000_000,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `attempt` (1-based) of request `salt`.
    ///
    /// Exponential in the attempt with a ±50% deterministic jitter, so
    /// retries from different requests decorrelate without any shared
    /// RNG state.
    pub fn backoff_ns(&self, attempt: u32, salt: u64) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        let exp = self
            .base_backoff_ns
            .checked_shl(shift)
            .unwrap_or(u64::MAX)
            .min(self.max_backoff_ns);
        // Jitter in [50%, 150%) of the exponential value.
        let j = mix64(self.jitter_seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(attempt));
        exp / 2 + j % exp.max(1)
    }
}

/// How many consecutive failures flip a device to [`DevHealth::Degraded`].
const DEGRADE_THRESHOLD: u32 = 3;

/// A [`BlockDev`] wrapper that retries transient write/flush failures
/// with backoff and tracks device health.
pub struct ResilientDev {
    inner: Box<dyn BlockDev>,
    policy: RetryPolicy,
    health: DevHealth,
    retry_stats: RetryStats,
    /// Monotonic request counter, used as the jitter salt.
    requests: u64,
}

impl ResilientDev {
    /// Wraps `inner` with the given retry policy.
    pub fn new(inner: Box<dyn BlockDev>, policy: RetryPolicy) -> Self {
        ResilientDev {
            inner,
            policy,
            health: DevHealth::Healthy,
            retry_stats: RetryStats::default(),
            requests: 0,
        }
    }

    /// Wraps `inner` with the default policy.
    pub fn with_defaults(inner: Box<dyn BlockDev>) -> Self {
        ResilientDev::new(inner, RetryPolicy::default())
    }

    /// The wrapped device.
    pub fn inner(&self) -> &dyn BlockDev {
        self.inner.as_ref()
    }

    /// The wrapped device, mutably.
    pub fn inner_mut(&mut self) -> &mut dyn BlockDev {
        self.inner.as_mut()
    }

    fn note_success(&mut self, retries_used: u32) {
        if retries_used > 0 {
            self.retry_stats.transient_absorbed += u64::from(retries_used);
        }
        self.retry_stats.consecutive_failures = 0;
        if self.health == DevHealth::Degraded {
            self.health = DevHealth::Healthy;
        }
    }

    fn note_failure(&mut self, err: &Error) {
        self.retry_stats.failures_surfaced += 1;
        self.retry_stats.consecutive_failures =
            self.retry_stats.consecutive_failures.saturating_add(1);
        if err.kind() == ErrorKind::DeviceDead || !self.inner.powered() {
            self.health = DevHealth::Dead;
        } else if self.retry_stats.consecutive_failures >= DEGRADE_THRESHOLD {
            self.health = DevHealth::Degraded;
        }
    }

    /// Runs `op` against the inner device with retry/backoff. Backoff is
    /// charged to the device clock between attempts. `is_read` routes the
    /// per-resubmission counter to [`RetryStats::reads_retried`].
    fn with_retries<T>(
        &mut self,
        is_read: bool,
        mut op: impl FnMut(&mut dyn BlockDev) -> Result<T>,
    ) -> Result<T> {
        self.requests += 1;
        let salt = self.requests;
        let mut attempt: u32 = 1;
        loop {
            match op(self.inner.as_mut()) {
                Ok(v) => {
                    self.note_success(attempt - 1);
                    return Ok(v);
                }
                Err(e) if is_transient(e.kind()) && attempt < self.policy.max_attempts => {
                    if is_read {
                        self.retry_stats.reads_retried += 1;
                    } else {
                        self.retry_stats.writes_retried += 1;
                    }
                    let backoff = self.policy.backoff_ns(attempt, salt);
                    self.inner
                        .clock()
                        .charge(SimDuration::from_nanos(backoff));
                    attempt += 1;
                }
                Err(e) => {
                    self.note_failure(&e);
                    return Err(e);
                }
            }
        }
    }
}

impl BlockDev for ResilientDev {
    fn info(&self) -> &DevInfo {
        self.inner.info()
    }

    fn stats(&self) -> &DevStats {
        self.inner.stats()
    }

    fn read(&mut self, lba: u64, buf: &mut [u8]) -> Result<()> {
        // Reads are idempotent, so transient bounces retry like writes.
        // Corruption is *not* retried here: the model flips bits in the
        // returned data of a successful read, so detection belongs to the
        // content-hash verification above the device layer.
        self.with_retries(true, |d| d.read(lba, buf))
    }

    fn read_blocks(&mut self, lba: u64, bufs: &mut [Vec<u8>]) -> Result<()> {
        // One retry scope per extent: the model device bounces a
        // transient extent atomically (nothing is filled), so
        // resubmitting the whole extent is idempotent.
        //
        // All-or-error contract (see `BlockDev::read_blocks`): a device
        // behind this layer may not uphold it (the default trait loop
        // fills buffers one block at a time before a mid-extent fault
        // surfaces). Zero every buffer on failure so no caller can
        // mistake a partially-filled extent for data — and so a mirror
        // failing over to a twin starts from clean buffers.
        let r = self.with_retries(true, |d| d.read_blocks(lba, bufs));
        if r.is_err() {
            for b in bufs.iter_mut() {
                b.fill(0);
            }
        }
        r
    }

    fn submit_write(&mut self, lba: u64, data: &[u8]) -> Result<SimTime> {
        self.with_retries(false, |d| d.submit_write(lba, data))
    }

    fn write(&mut self, lba: u64, data: &[u8]) -> Result<()> {
        let done = self.submit_write(lba, data)?;
        self.inner.clock().advance_to(done);
        Ok(())
    }

    fn write_blocks(&mut self, lba: u64, blocks: &[&[u8]]) -> Result<SimTime> {
        // One retry scope per extent: the model device bounces a
        // transient extent atomically (nothing lands), so resubmitting
        // the whole extent is idempotent.
        self.with_retries(false, |d| d.write_blocks(lba, blocks))
    }

    fn flush(&mut self) -> Result<SimTime> {
        self.with_retries(false, |d| d.flush())
    }

    fn submit_write_timing(&mut self, nbytes: u64) -> Result<SimTime> {
        self.inner.submit_write_timing(nbytes)
    }

    fn charge_read_timing(&mut self, nbytes: u64) -> Result<()> {
        self.inner.charge_read_timing(nbytes)
    }

    fn power_fail(&mut self) {
        self.inner.power_fail();
        self.health = DevHealth::Dead;
    }

    fn power_on(&mut self) {
        self.inner.power_on();
        self.health = DevHealth::Healthy;
        self.retry_stats.consecutive_failures = 0;
    }

    fn powered(&self) -> bool {
        self.inner.powered()
    }

    fn clock(&self) -> &Arc<SimClock> {
        self.inner.clock()
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.inner.install_fault_plan(plan);
    }

    fn health(&self) -> DevHealth {
        // Dead is sticky until power returns, even if the store has not
        // issued a request since the failure.
        if !self.inner.powered() {
            DevHealth::Dead
        } else {
            self.health
        }
    }

    fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    fn repair_block(
        &mut self,
        lba: u64,
        verify: &mut dyn FnMut(&[u8]) -> bool,
    ) -> Result<Option<Vec<u8>>> {
        // No retry wrapper: a mirror underneath runs its own per-replica
        // retries, and repair is already a recovery path.
        self.inner.repair_block(lba, verify)
    }

    fn as_mirror(&self) -> Option<&crate::mirror::MirrorDev> {
        self.inner.as_mirror()
    }

    fn as_mirror_mut(&mut self) -> Option<&mut crate::mirror::MirrorDev> {
        self.inner.as_mirror_mut()
    }
}

impl core::fmt::Debug for ResilientDev {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ResilientDev")
            .field("name", &self.inner.info().name)
            .field("health", &self.health)
            .field("retry_stats", &self.retry_stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::ModelDev;
    use crate::fault::FaultRates;
    use crate::BLOCK_SIZE;

    fn resilient(blocks: u64) -> ResilientDev {
        let clock = SimClock::new();
        ResilientDev::with_defaults(Box::new(ModelDev::nvme(clock, "nvme0", blocks)))
    }

    #[test]
    fn classification_matches_retryability() {
        assert!(is_transient(ErrorKind::Io));
        assert!(is_transient(ErrorKind::WouldBlock));
        assert!(!is_transient(ErrorKind::DeviceDead));
        assert!(!is_transient(ErrorKind::Corrupt));
        assert!(!is_transient(ErrorKind::NoSpace));
        // The only transient kinds are the two the device model bounces;
        // everything else must surface so callers can degrade or abort.
        assert_eq!(classify(ErrorKind::Io), FaultClass::Transient);
        assert_eq!(classify(ErrorKind::Internal), FaultClass::Permanent);
        assert_eq!(classify(ErrorKind::BadImage), FaultClass::Permanent);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff_ns: 1000,
            max_backoff_ns: 8000,
            jitter_seed: 3,
        };
        // Jitter keeps each value in [exp/2, 3*exp/2).
        for attempt in 1..8 {
            let exp = (1000u64 << (attempt - 1)).min(8000);
            let b = p.backoff_ns(attempt, 17);
            assert!(b >= exp / 2 && b < exp + exp / 2, "attempt {attempt}: {b}");
        }
        // Deterministic for the same (attempt, salt).
        assert_eq!(p.backoff_ns(3, 17), p.backoff_ns(3, 17));
    }

    #[test]
    fn transient_faults_absorbed_by_retry() {
        let mut d = resilient(64);
        d.install_fault_plan(FaultPlan::transient(1, 2));
        // Two bounces, then success — the caller never sees an error.
        d.write(0, &vec![0x5Au8; BLOCK_SIZE]).unwrap();
        assert_eq!(d.retry_stats().writes_retried, 2);
        assert_eq!(d.retry_stats().transient_absorbed, 2);
        assert_eq!(d.retry_stats().failures_surfaced, 0);
        assert_eq!(d.health(), DevHealth::Healthy);
        let mut buf = vec![0u8; BLOCK_SIZE];
        d.read(0, &mut buf).unwrap();
        assert_eq!(buf, vec![0x5Au8; BLOCK_SIZE]);
    }

    #[test]
    fn backoff_charges_sim_time() {
        let mut d = resilient(64);
        let clock = d.clock().clone();
        d.install_fault_plan(FaultPlan::transient(1, 1));
        let before = clock.now();
        d.write(0, &vec![1u8; BLOCK_SIZE]).unwrap();
        let elapsed = clock.now().since(before);
        // At least the base backoff's jitter floor.
        assert!(elapsed.as_nanos() >= 25_000, "backoff charged: {elapsed:?}");
    }

    #[test]
    fn exhausted_retries_surface_the_error() {
        let mut d = resilient(64);
        // Longer than max_attempts; the error escapes.
        d.install_fault_plan(FaultPlan::transient(1, 100));
        let err = d.write(0, &vec![1u8; BLOCK_SIZE]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Io);
        assert_eq!(d.retry_stats().writes_retried, 3);
        assert_eq!(d.retry_stats().failures_surfaced, 1);
    }

    #[test]
    fn repeated_failures_degrade_then_recover() {
        let mut d = resilient(64);
        d.install_fault_plan(FaultPlan::transient(1, 1000));
        for _ in 0..DEGRADE_THRESHOLD {
            assert!(d.write(0, &vec![1u8; BLOCK_SIZE]).is_err());
        }
        assert_eq!(d.health(), DevHealth::Degraded);
        // Clear the plan: the next success restores health.
        d.install_fault_plan(FaultPlan::default());
        d.write(0, &vec![1u8; BLOCK_SIZE]).unwrap();
        assert_eq!(d.health(), DevHealth::Healthy);
        assert_eq!(d.retry_stats().consecutive_failures, 0);
    }

    #[test]
    fn transient_extent_fault_absorbed_by_retry() {
        let mut d = resilient(64);
        // The second per-block fault consultation bounces: mid-extent.
        d.install_fault_plan(FaultPlan::transient(2, 1));
        let bufs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; BLOCK_SIZE]).collect();
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        let done = d.write_blocks(0, &refs).unwrap();
        d.clock().advance_to(done);
        assert_eq!(d.retry_stats().writes_retried, 1);
        assert_eq!(d.retry_stats().failures_surfaced, 0);
        let flushed = d.flush().unwrap();
        d.clock().advance_to(flushed);
        for (i, expect) in bufs.iter().enumerate() {
            let mut buf = vec![0u8; BLOCK_SIZE];
            d.read(i as u64, &mut buf).unwrap();
            assert_eq!(&buf, expect, "block {i} after extent retry");
        }
    }

    #[test]
    fn extent_power_cut_surfaces_and_marks_dead() {
        let mut d = resilient(64);
        d.install_fault_plan(FaultPlan::power_cut(3));
        let bufs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; BLOCK_SIZE]).collect();
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        let err = d.write_blocks(0, &refs).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::DeviceDead);
        assert_eq!(d.retry_stats().writes_retried, 0);
        assert_eq!(d.health(), DevHealth::Dead);
    }

    #[test]
    fn power_cut_is_permanent_and_marks_dead() {
        let mut d = resilient(64);
        d.install_fault_plan(FaultPlan::power_cut(1));
        let err = d.write(0, &vec![1u8; BLOCK_SIZE]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::DeviceDead);
        // No retries burned on a permanent fault.
        assert_eq!(d.retry_stats().writes_retried, 0);
        assert_eq!(d.health(), DevHealth::Dead);
        d.power_on();
        assert_eq!(d.health(), DevHealth::Healthy);
    }

    #[test]
    fn transient_read_faults_absorbed_by_retry() {
        let mut d = resilient(64);
        d.write(0, &vec![0x5Au8; BLOCK_SIZE]).unwrap();
        let done = d.flush().unwrap();
        d.clock().advance_to(done);
        d.install_fault_plan(FaultPlan::transient_reads(1, 2));
        let mut buf = vec![0u8; BLOCK_SIZE];
        d.read(0, &mut buf).unwrap();
        assert_eq!(buf, vec![0x5Au8; BLOCK_SIZE]);
        assert_eq!(d.retry_stats().reads_retried, 2);
        assert_eq!(d.retry_stats().writes_retried, 0);
        assert_eq!(d.retry_stats().transient_absorbed, 2);
        assert_eq!(d.health(), DevHealth::Healthy);
    }

    #[test]
    fn transient_read_extent_fault_absorbed_by_retry() {
        let mut d = resilient(64);
        let bufs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; BLOCK_SIZE]).collect();
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        let done = d.write_blocks(0, &refs).unwrap();
        d.clock().advance_to(done);
        let flushed = d.flush().unwrap();
        d.clock().advance_to(flushed);
        // Mid-extent bounce on the second per-block consultation.
        d.install_fault_plan(FaultPlan::transient_reads(2, 1));
        let mut out = vec![vec![0u8; BLOCK_SIZE]; 4];
        d.read_blocks(0, &mut out).unwrap();
        assert_eq!(out, bufs);
        assert_eq!(d.retry_stats().reads_retried, 1);
        assert_eq!(d.retry_stats().failures_surfaced, 0);
    }

    #[test]
    fn read_power_cut_surfaces_and_marks_dead() {
        let mut d = resilient(64);
        d.install_fault_plan(FaultPlan::power_cut_on_read(1));
        let mut buf = vec![0u8; BLOCK_SIZE];
        let err = d.read(0, &mut buf).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::DeviceDead);
        assert_eq!(d.retry_stats().reads_retried, 0);
        assert_eq!(d.health(), DevHealth::Dead);
    }

    #[test]
    fn exhausted_read_retries_surface_the_error() {
        let mut d = resilient(64);
        d.install_fault_plan(FaultPlan::transient_reads(1, 100));
        let mut buf = vec![0u8; BLOCK_SIZE];
        let err = d.read(0, &mut buf).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Io);
        assert_eq!(d.retry_stats().reads_retried, 3);
        assert_eq!(d.retry_stats().failures_surfaced, 1);
    }

    #[test]
    fn randomized_flaky_device_still_makes_progress() {
        let mut d = resilient(4096);
        let rates = FaultRates {
            transient_ppm: 120_000,
            latency_spike_ppm: 30_000,
            ..FaultRates::default()
        };
        d.install_fault_plan(FaultPlan::random(11, rates));
        let mut ok = 0u32;
        for i in 0..500u64 {
            if d.write(i % 4096, &vec![i as u8; BLOCK_SIZE]).is_ok() {
                ok += 1;
            }
        }
        // With 12% per-attempt failure and 4 attempts, nearly every write
        // succeeds.
        assert!(ok >= 495, "only {ok}/500 writes succeeded");
        assert!(d.retry_stats().transient_absorbed > 0);
    }

    /// Writes 4 distinct blocks, flushes, and returns their contents.
    fn seed_extent(d: &mut ResilientDev) -> Vec<Vec<u8>> {
        let bufs: Vec<Vec<u8>> = (1..=4u8).map(|i| vec![i; BLOCK_SIZE]).collect();
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        let done = d.write_blocks(0, &refs).unwrap();
        d.clock().advance_to(done);
        let flushed = d.flush().unwrap();
        d.clock().advance_to(flushed);
        bufs
    }

    #[test]
    fn failed_extent_read_leaves_no_partial_buffers() {
        // All-or-error contract: a mid-extent fault that exhausts the
        // retry budget must not leave buffers 0..n-1 filled with real
        // data — callers treat Err as "nothing was read".
        let mut d = resilient(64);
        seed_extent(&mut d);
        // The 3rd per-block consultation bounces on every one of the 4
        // attempts, so the whole extent fails after retries.
        d.install_fault_plan(FaultPlan::transient_reads(3, 8));
        let mut out = vec![vec![0x5Au8; BLOCK_SIZE]; 4];
        assert!(d.read_blocks(0, &mut out).is_err());
        for (i, b) in out.iter().enumerate() {
            assert!(
                b.iter().all(|&x| x == 0),
                "buffer {i} holds data after a failed extent read"
            );
        }
        assert!(d.retry_stats().failures_surfaced >= 1);
    }

    #[test]
    fn power_cut_mid_extent_read_leaves_no_partial_buffers() {
        let mut d = resilient(64);
        seed_extent(&mut d);
        // Power dies at the 2nd per-block consultation of the extent.
        d.install_fault_plan(FaultPlan::power_cut_on_read(2));
        let mut out = vec![vec![0xA5u8; BLOCK_SIZE]; 4];
        let err = d.read_blocks(0, &mut out).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::DeviceDead);
        assert_eq!(d.health(), DevHealth::Dead);
        for (i, b) in out.iter().enumerate() {
            assert!(
                b.iter().all(|&x| x == 0),
                "buffer {i} holds data after a power-cut extent read"
            );
        }
    }
}
