//! A block device backed by a real host file.
//!
//! The `sls` command-line tool needs state that genuinely survives between
//! invocations of the binary — the whole point of a single level store.
//! [`FileDev`] stores blocks in an ordinary file on the host filesystem
//! while still charging NVMe-calibrated virtual costs, so the CLI world is
//! durable *and* its reported timings agree with the simulation.
//!
//! Durability here is intentionally simple: writes go straight to the
//! file (no simulated volatile cache), and `flush` maps to the host file
//! sync. Crash-consistency experiments use [`crate::dev::ModelDev`] with
//! fault plans instead.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use aurora_sim::cost::dev as costdev;
use aurora_sim::error::{Error, Result};
use aurora_sim::time::{SimDuration, SimTime};
use aurora_sim::SimClock;

use crate::dev::{BlockDev, DevInfo, DevStats};
use crate::BLOCK_SIZE;

/// A host-file-backed block device with NVMe-like virtual costs.
pub struct FileDev {
    info: DevInfo,
    clock: Arc<SimClock>,
    file: File,
    stats: DevStats,
    busy_until: SimTime,
}

impl FileDev {
    /// Opens (creating if needed) a file-backed device of `blocks` blocks.
    pub fn open(clock: Arc<SimClock>, path: &Path, blocks: u64) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| Error::io(format!("open {}: {e}", path.display())))?;
        file.set_len(blocks * BLOCK_SIZE as u64)
            .map_err(|e| Error::io(format!("set_len {}: {e}", path.display())))?;
        Ok(FileDev {
            info: DevInfo {
                name: format!("file:{}", path.display()),
                blocks,
                persistent: true,
                persistence_domain: true,
            },
            clock,
            file,
            stats: DevStats::default(),
            busy_until: SimTime::ZERO,
        })
    }

    fn check_range(&self, lba: u64, len: usize) -> Result<()> {
        if !len.is_multiple_of(BLOCK_SIZE) {
            return Err(Error::invalid(format!("unaligned i/o length {len}")));
        }
        let nblocks = (len / BLOCK_SIZE) as u64;
        if lba + nblocks > self.info.blocks {
            return Err(Error::no_space(format!(
                "i/o beyond device end: lba {lba} + {nblocks} > {}",
                self.info.blocks
            )));
        }
        Ok(())
    }

    fn service(&mut self, bytes: u64, bw: u64) -> SimTime {
        let start = self.clock.now().max(self.busy_until);
        let dur =
            SimDuration::from_nanos(costdev::NVME_LAT_NS) + SimDuration::for_bytes(bytes, bw);
        self.busy_until = start + dur;
        self.busy_until
    }
}

impl BlockDev for FileDev {
    fn info(&self) -> &DevInfo {
        &self.info
    }

    fn stats(&self) -> &DevStats {
        &self.stats
    }

    fn read(&mut self, lba: u64, buf: &mut [u8]) -> Result<()> {
        self.check_range(lba, buf.len())?;
        let done = self.service(buf.len() as u64, costdev::NVME_READ_BW);
        self.clock.advance_to(done);
        self.file
            .seek(SeekFrom::Start(lba * BLOCK_SIZE as u64))
            .and_then(|_| self.file.read_exact(buf))
            .map_err(|e| Error::io(format!("read lba {lba}: {e}")))?;
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        Ok(())
    }

    fn submit_write(&mut self, lba: u64, data: &[u8]) -> Result<SimTime> {
        self.check_range(lba, data.len())?;
        let done = self.service(data.len() as u64, costdev::NVME_WRITE_BW);
        self.file
            .seek(SeekFrom::Start(lba * BLOCK_SIZE as u64))
            .and_then(|_| self.file.write_all(data))
            .map_err(|e| Error::io(format!("write lba {lba}: {e}")))?;
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        Ok(done)
    }

    fn write_blocks(&mut self, lba: u64, blocks: &[&[u8]]) -> Result<SimTime> {
        if blocks.is_empty() {
            return Ok(self.clock.now());
        }
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        self.check_range(lba, total)?;
        let done = self.service(total as u64, costdev::NVME_WRITE_BW);
        // One seek, one sequential run: the host file sees the extent the
        // way the model charges for it.
        self.file
            .seek(SeekFrom::Start(lba * BLOCK_SIZE as u64))
            .map_err(|e| Error::io(format!("seek lba {lba}: {e}")))?;
        for b in blocks {
            self.file
                .write_all(b)
                .map_err(|e| Error::io(format!("write extent at lba {lba}: {e}")))?;
        }
        self.stats.writes += 1;
        self.stats.bytes_written += total as u64;
        Ok(done)
    }

    fn write(&mut self, lba: u64, data: &[u8]) -> Result<()> {
        let done = self.submit_write(lba, data)?;
        self.clock.advance_to(done);
        Ok(())
    }

    fn flush(&mut self) -> Result<SimTime> {
        self.stats.flushes += 1;
        self.file
            .sync_data()
            .map_err(|e| Error::io(format!("sync: {e}")))?;
        let start = self.clock.now().max(self.busy_until);
        let done = start + SimDuration::from_nanos(costdev::NVME_LAT_NS);
        self.busy_until = done;
        Ok(done)
    }

    fn submit_write_timing(&mut self, nbytes: u64) -> Result<SimTime> {
        let done = self.service(nbytes, costdev::NVME_WRITE_BW);
        self.stats.writes += 1;
        self.stats.bytes_written += nbytes;
        Ok(done)
    }

    fn charge_read_timing(&mut self, nbytes: u64) -> Result<()> {
        let done = self.service(nbytes, costdev::NVME_READ_BW);
        self.clock.advance_to(done);
        self.stats.reads += 1;
        self.stats.bytes_read += nbytes;
        Ok(())
    }

    fn power_fail(&mut self) {
        // A host file has no volatile cache in this model; nothing to drop.
    }

    fn power_on(&mut self) {}

    fn powered(&self) -> bool {
        true
    }

    fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("aurora-filedev-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk.img");
        let data = vec![0xC3u8; BLOCK_SIZE];
        {
            let clock = SimClock::new();
            let mut d = FileDev::open(clock, &path, 16).unwrap();
            d.write(7, &data).unwrap();
            d.flush().unwrap();
        }
        {
            let clock = SimClock::new();
            let mut d = FileDev::open(clock, &path, 16).unwrap();
            let mut buf = vec![0u8; BLOCK_SIZE];
            d.read(7, &mut buf).unwrap();
            assert_eq!(buf, data);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn vectored_write_roundtrips() {
        let dir = std::env::temp_dir().join(format!("aurora-filedev3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk.img");
        let clock = SimClock::new();
        let mut d = FileDev::open(clock, &path, 16).unwrap();
        let bufs: Vec<Vec<u8>> = (1..=3u8).map(|i| vec![i; BLOCK_SIZE]).collect();
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        d.write_blocks(5, &refs).unwrap();
        d.flush().unwrap();
        for (i, expect) in bufs.iter().enumerate() {
            let mut buf = vec![0u8; BLOCK_SIZE];
            d.read(5 + i as u64, &mut buf).unwrap();
            assert_eq!(&buf, expect, "block {i}");
        }
        assert!(d.write_blocks(15, &refs).is_err(), "extent past device end");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn range_checks_apply() {
        let dir = std::env::temp_dir().join(format!("aurora-filedev2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk.img");
        let clock = SimClock::new();
        let mut d = FileDev::open(clock, &path, 4).unwrap();
        assert!(d.write(4, &vec![0u8; BLOCK_SIZE]).is_err());
        assert!(d.write(0, &[1, 2, 3]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
