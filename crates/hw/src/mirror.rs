//! N-way mirrored block device with self-healing.
//!
//! [`MirrorDev`] presents N replica devices as one [`BlockDev`]. Every
//! replica sits behind its own [`ResilientDev`] retry layer and can carry
//! its own independent [`FaultPlan`], so a single replica can die, flake,
//! or corrupt while the mirror as a whole keeps serving.
//!
//! Semantics:
//!
//! * **Writes** fan out to every attached replica via the existing
//!   vectored ops; the mirror's completion instant is the slowest
//!   replica's. If at least one replica accepts the write the mirror
//!   succeeds; replicas that failed it are *detached* (they missed data
//!   and may no longer serve reads).
//! * **Reads** come from a preferred replica and fail over to a twin on
//!   error. A replica whose read fails permanently while a twin can still
//!   serve is detached — same reasoning: its contents are no longer
//!   trusted.
//! * **Read-repair** ([`MirrorDev::repair_block`]) is driven from above:
//!   the object store verifies content hashes, and a block that fails
//!   verification on one replica is rewritten from a twin whose copy
//!   passes, instead of surfacing a corruption error.
//! * **Resilver** rebuilds a revived or replaced replica: it re-enters in
//!   the `Rebuilding` state, receiving all new writes but serving no
//!   reads, while [`MirrorDev::resilver_extent`] copies live extents from
//!   a good twin. Only [`MirrorDev::promote_rebuilt`] (after a flush
//!   barrier) makes it readable again — so a crash mid-resilver can never
//!   expose a half-rebuilt replica as authoritative.
//!
//! Replica states survive a whole-machine power cycle: `power_on` keeps a
//! `Rebuilding` replica rebuilding and a `Detached` replica detached. On
//! real hardware this information would live in an on-disk mirror label;
//! here the device object itself persists across the simulated reboot.

use std::sync::Arc;

use aurora_sim::error::{Error, Result};
use aurora_sim::time::SimTime;
use aurora_sim::SimClock;

use crate::dev::{BlockDev, DevInfo, DevStats};
use crate::fault::FaultPlan;
use crate::retry::{DevHealth, ResilientDev, RetryStats};
use crate::BLOCK_SIZE;

/// Lifecycle of one replica inside a mirror.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// In sync: serves reads, receives writes.
    Active,
    /// Being rebuilt: receives all new writes, serves no reads. Promoted
    /// to `Active` only by a completed resilver.
    Rebuilding,
    /// Out of service: no reads, no writes. A replica is detached when it
    /// fails an operation the mirror as a whole survived (it missed data)
    /// or when an operator kills it.
    Detached,
}

impl ReplicaState {
    /// Short lowercase label for logs and the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            ReplicaState::Active => "active",
            ReplicaState::Rebuilding => "rebuilding",
            ReplicaState::Detached => "detached",
        }
    }

    /// Parses the label written by [`ReplicaState::as_str`].
    pub fn parse(s: &str) -> Option<ReplicaState> {
        match s {
            "active" => Some(ReplicaState::Active),
            "rebuilding" => Some(ReplicaState::Rebuilding),
            "detached" => Some(ReplicaState::Detached),
            _ => None,
        }
    }
}

/// Self-healing counters for a mirror.
#[derive(Debug, Default, Clone, Copy)]
pub struct MirrorStats {
    /// Reads served by a twin after the preferred replica failed.
    pub failovers: u64,
    /// Blocks rewritten on a replica from a verified twin copy.
    pub read_repairs: u64,
    /// Blocks copied to rebuilding replicas by resilver.
    pub resilvered_blocks: u64,
    /// Extent batches issued by resilver.
    pub resilvered_extents: u64,
    /// Writes that committed with at least one replica missing.
    pub degraded_writes: u64,
    /// Replicas detached after failing an operation a twin survived.
    pub replicas_detached: u64,
}

/// A [`BlockDev`] mirroring its contents across N replicas.
pub struct MirrorDev {
    replicas: Vec<ResilientDev>,
    states: Vec<ReplicaState>,
    info: DevInfo,
    stats: DevStats,
    clock: Arc<SimClock>,
    preferred: usize,
    mstats: MirrorStats,
}

impl MirrorDev {
    /// Builds a mirror over `members`, wrapping each in its own
    /// [`ResilientDev`] retry layer. Fails on an empty member list.
    pub fn new(members: Vec<Box<dyn BlockDev>>) -> Result<MirrorDev> {
        let Some(first) = members.first() else {
            return Err(Error::invalid("a mirror needs at least one replica"));
        };
        let clock = Arc::clone(first.clock());
        let blocks = members.iter().map(|m| m.info().blocks).min().unwrap_or(0);
        let persistent = members.iter().all(|m| m.info().persistent);
        let persistence_domain = members.iter().all(|m| m.info().persistence_domain);
        let names: Vec<String> = members.iter().map(|m| m.info().name.clone()).collect();
        let info = DevInfo {
            name: format!("mirror[{}]", names.join("+")),
            blocks,
            persistent,
            persistence_domain,
        };
        let states = vec![ReplicaState::Active; members.len()];
        let replicas: Vec<ResilientDev> =
            members.into_iter().map(ResilientDev::with_defaults).collect();
        Ok(MirrorDev {
            replicas,
            states,
            info,
            stats: DevStats::default(),
            clock,
            preferred: 0,
            mstats: MirrorStats::default(),
        })
    }

    /// Number of replicas (attached or not).
    pub fn width(&self) -> usize {
        self.replicas.len()
    }

    /// Number of replicas currently serving reads.
    pub fn active_width(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s == ReplicaState::Active)
            .count()
    }

    /// True when any replica is missing, rebuilding, or unhealthy.
    pub fn is_degraded(&self) -> bool {
        self.states.iter().any(|s| *s != ReplicaState::Active)
            || self
                .replicas
                .iter()
                .any(|r| r.health() != DevHealth::Healthy)
    }

    /// State of replica `i`.
    pub fn replica_state(&self, i: usize) -> Option<ReplicaState> {
        self.states.get(i).copied()
    }

    /// Health of replica `i` as judged by its retry layer.
    pub fn replica_health(&self, i: usize) -> Option<DevHealth> {
        self.replicas.get(i).map(|r| r.health())
    }

    /// Name of replica `i`'s underlying device.
    pub fn replica_name(&self, i: usize) -> Option<String> {
        self.replicas.get(i).map(|r| r.info().name.clone())
    }

    /// Retry counters of replica `i`.
    pub fn replica_retry_stats(&self, i: usize) -> Option<RetryStats> {
        self.replicas.get(i).map(|r| r.retry_stats())
    }

    /// Self-healing counters.
    pub fn mirror_stats(&self) -> MirrorStats {
        self.mstats
    }

    /// Installs a fault plan on replica `i` only (the whole-device
    /// [`BlockDev::install_fault_plan`] fans the same plan to every
    /// replica instead, preserving whole-machine fault semantics).
    pub fn install_replica_fault_plan(&mut self, i: usize, plan: FaultPlan) -> Result<()> {
        self.replicas
            .get_mut(i)
            .map(|r| r.install_fault_plan(plan))
            .ok_or_else(|| Error::invalid(format!("mirror has no replica {i}")))
    }

    /// Cuts power to replica `i` and detaches it (operator action or
    /// simulated replica death).
    pub fn kill_replica(&mut self, i: usize) -> Result<()> {
        let Some(r) = self.replicas.get_mut(i) else {
            return Err(Error::invalid(format!("mirror has no replica {i}")));
        };
        r.power_fail();
        if let Some(s) = self.states.get_mut(i) {
            *s = ReplicaState::Detached;
        }
        Ok(())
    }

    /// Returns a detached or dead replica to service in the `Rebuilding`
    /// state: it receives all new writes but serves no reads until a
    /// resilver promotes it. This is also how a *replaced* (blank)
    /// replica enters — its prior contents are simply never trusted.
    pub fn revive_replica(&mut self, i: usize) -> Result<()> {
        let Some(r) = self.replicas.get_mut(i) else {
            return Err(Error::invalid(format!("mirror has no replica {i}")));
        };
        r.power_on();
        if let Some(s) = self.states.get_mut(i) {
            if *s != ReplicaState::Active {
                *s = ReplicaState::Rebuilding;
            }
        }
        Ok(())
    }

    /// Restores a persisted replica state (used when reopening a mirror
    /// world from disk; not an operational transition).
    pub fn restore_replica_state(&mut self, i: usize, state: ReplicaState) -> Result<()> {
        self.states
            .get_mut(i)
            .map(|s| *s = state)
            .ok_or_else(|| Error::invalid(format!("mirror has no replica {i}")))
    }

    /// True when some replica is waiting to be resilvered.
    pub fn needs_resilver(&self) -> bool {
        self.states.iter().any(|s| *s == ReplicaState::Rebuilding)
    }

    /// Active replica indices in read-preference order.
    fn read_order(&self) -> Vec<usize> {
        let n = self.replicas.len();
        let mut order: Vec<usize> = Vec::with_capacity(n);
        for k in 0..n {
            let i = (self.preferred + k) % n;
            if self.states.get(i).copied() == Some(ReplicaState::Active) {
                order.push(i);
            }
        }
        order
    }

    /// Detaches every replica in `failed`, counting the demotions. Only
    /// called when the operation as a whole succeeded on a twin; when
    /// every replica fails together (a whole-machine power cut) states
    /// are left alone so recovery sees the mirror it had.
    fn detach_failed(&mut self, failed: &[usize]) {
        for &i in failed {
            if let Some(s) = self.states.get_mut(i) {
                if *s != ReplicaState::Detached {
                    *s = ReplicaState::Detached;
                    self.mstats.replicas_detached += 1;
                }
            }
        }
    }

    /// Runs `op` against active replicas in preference order, failing
    /// over until one succeeds. On success after failures, the failed
    /// replicas are detached and the survivor becomes preferred.
    fn read_with_failover<T>(
        &mut self,
        mut op: impl FnMut(&mut ResilientDev) -> Result<T>,
    ) -> Result<T> {
        let order = self.read_order();
        if order.is_empty() {
            return Err(Error::device_dead("mirror has no active replica"));
        }
        let mut failed: Vec<usize> = Vec::new();
        let mut last_err: Option<Error> = None;
        for i in order {
            let Some(r) = self.replicas.get_mut(i) else {
                continue;
            };
            match op(r) {
                Ok(v) => {
                    if !failed.is_empty() {
                        self.mstats.failovers += 1;
                        self.detach_failed(&failed);
                    }
                    self.preferred = i;
                    return Ok(v);
                }
                Err(e) => {
                    failed.push(i);
                    last_err = Some(e);
                }
            }
        }
        Err(last_err
            .unwrap_or_else(|| Error::device_dead("mirror has no active replica")))
    }

    /// Runs `op` against every attached (active or rebuilding) replica.
    /// Succeeds with the slowest completion if at least one replica
    /// accepted the operation; failed replicas are then detached. Fails
    /// without changing any state when every replica failed.
    fn fan_out(
        &mut self,
        mut op: impl FnMut(&mut ResilientDev) -> Result<SimTime>,
    ) -> Result<SimTime> {
        let mut done = self.clock.now();
        let mut successes = 0usize;
        let mut participants = 0usize;
        let mut failed: Vec<usize> = Vec::new();
        let mut last_err: Option<Error> = None;
        for (i, (r, s)) in self.replicas.iter_mut().zip(self.states.iter()).enumerate() {
            if *s == ReplicaState::Detached {
                continue;
            }
            participants += 1;
            match op(r) {
                Ok(t) => {
                    done = done.max(t);
                    successes += 1;
                }
                Err(e) => {
                    failed.push(i);
                    last_err = Some(e);
                }
            }
        }
        if participants == 0 {
            return Err(Error::device_dead("mirror has no attached replica"));
        }
        if successes == 0 {
            return Err(last_err
                .unwrap_or_else(|| Error::device_dead("mirror has no attached replica")));
        }
        if !failed.is_empty() {
            self.detach_failed(&failed);
        }
        if successes < self.replicas.len() {
            self.mstats.degraded_writes += 1;
        }
        Ok(done)
    }

    /// Copies `count` blocks starting at `lba` from a good active replica
    /// onto every rebuilding replica, as one vectored read plus one
    /// vectored write per target — all charged to the virtual clock.
    /// Returns the number of blocks copied (0 if nothing is rebuilding).
    pub fn resilver_extent(&mut self, lba: u64, count: usize) -> Result<u64> {
        if !self.needs_resilver() || count == 0 {
            return Ok(0);
        }
        let mut bufs: Vec<Vec<u8>> = vec![vec![0u8; BLOCK_SIZE]; count];
        self.read_with_failover(|r| r.read_blocks(lba, &mut bufs))?;
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        let mut done = self.clock.now();
        for (r, s) in self.replicas.iter_mut().zip(self.states.iter()) {
            if *s != ReplicaState::Rebuilding {
                continue;
            }
            done = done.max(r.write_blocks(lba, &refs)?);
        }
        self.clock.advance_to(done);
        self.mstats.resilvered_extents += 1;
        self.mstats.resilvered_blocks += count as u64;
        Ok(count as u64)
    }

    /// Timing-only resilver charge for data whose authoritative contents
    /// live above the device (non-materialized stores): occupies the
    /// source read path and each rebuilding replica's write path for
    /// `count` blocks without moving bytes.
    pub fn resilver_extent_timing(&mut self, count: usize) -> Result<u64> {
        if !self.needs_resilver() || count == 0 {
            return Ok(0);
        }
        let nbytes = (count * BLOCK_SIZE) as u64;
        self.read_with_failover(|r| r.charge_read_timing(nbytes))?;
        let mut done = self.clock.now();
        for (r, s) in self.replicas.iter_mut().zip(self.states.iter()) {
            if *s != ReplicaState::Rebuilding {
                continue;
            }
            done = done.max(r.submit_write_timing(nbytes)?);
        }
        self.clock.advance_to(done);
        self.mstats.resilvered_extents += 1;
        self.mstats.resilvered_blocks += count as u64;
        Ok(count as u64)
    }

    /// Runs the resilver durability barrier: flushes every attached
    /// replica so the copied extents are on each platter, and mints the
    /// token [`MirrorDev::promote_rebuilt`] demands. This is the *only*
    /// constructor of [`ResilverBarrier`], so a promotion that skipped
    /// the flush does not typecheck.
    pub fn resilver_barrier(&mut self) -> Result<ResilverBarrier> {
        let done = self.fan_out(|r| r.flush())?;
        self.clock.advance_to(done);
        Ok(ResilverBarrier { _sealed: () })
    }

    /// Promotes every rebuilding replica to active, consuming the proof
    /// that a flush barrier made the copied data durable. Returns how
    /// many were promoted.
    pub fn promote_rebuilt(&mut self, barrier: ResilverBarrier) -> Result<usize> {
        let ResilverBarrier { _sealed: () } = barrier;
        let mut promoted = 0;
        for (r, s) in self.replicas.iter_mut().zip(self.states.iter_mut()) {
            if *s == ReplicaState::Rebuilding && r.powered() {
                *s = ReplicaState::Active;
                promoted += 1;
            }
        }
        Ok(promoted)
    }

    /// Reads every active replica's copy of block `lba` and verifies
    /// each against `verify`. Returns the first passing copy as a
    /// [`GoldenCopy`] — the only license to rewrite the failed replicas
    /// — plus the indices whose copies failed (a read error or a
    /// verification failure). `None` when no replica has a good copy.
    fn acquire_golden(
        &mut self,
        lba: u64,
        verify: &mut dyn FnMut(&[u8]) -> bool,
    ) -> Option<(GoldenCopy, Vec<usize>)> {
        let mut golden: Option<GoldenCopy> = None;
        let mut failed: Vec<usize> = Vec::new();
        for (i, (r, s)) in self.replicas.iter_mut().zip(self.states.iter()).enumerate() {
            if *s != ReplicaState::Active {
                continue;
            }
            let mut buf = vec![0u8; BLOCK_SIZE];
            match r.read(lba, &mut buf) {
                Ok(()) if verify(&buf) => {
                    if golden.is_none() {
                        golden = Some(GoldenCopy { lba, bytes: buf });
                    }
                }
                _ => failed.push(i),
            }
        }
        golden.map(|g| (g, failed))
    }

    /// Rewrites the replicas in `failed` from a verified golden copy,
    /// consuming the token and returning its bytes. Replicas that
    /// reject the rewrite are detached (they missed data).
    fn rewrite_from_golden(&mut self, golden: GoldenCopy, failed: &[usize]) -> Vec<u8> {
        let GoldenCopy { lba, bytes } = golden;
        let mut detach: Vec<usize> = Vec::new();
        for &i in failed {
            let Some(r) = self.replicas.get_mut(i) else {
                continue;
            };
            match r.write(lba, &bytes) {
                Ok(()) => self.mstats.read_repairs += 1,
                Err(_) => detach.push(i),
            }
        }
        self.detach_failed(&detach);
        bytes
    }

    /// Read-repair entry point: if any active replica's copy of `lba`
    /// passes `verify`, rewrites the replicas whose copies failed from
    /// that golden copy. Returns the golden bytes, or `None` when no
    /// replica has a good copy. The two phases are bridged by a
    /// [`GoldenCopy`] token, so a rewrite without a verified source
    /// does not typecheck.
    pub fn repair_block_from_twin(
        &mut self,
        lba: u64,
        verify: &mut dyn FnMut(&[u8]) -> bool,
    ) -> Result<Option<Vec<u8>>> {
        let Some((golden, failed)) = self.acquire_golden(lba, verify) else {
            return Ok(None);
        };
        Ok(Some(self.rewrite_from_golden(golden, &failed)))
    }
}

/// Proof that [`MirrorDev::resilver_barrier`] flushed every replica:
/// the only value [`MirrorDev::promote_rebuilt`] accepts, consumed by
/// value so one barrier licenses at most one promotion.
///
/// Cannot be forged (private field):
///
/// ```compile_fail
/// let fake = aurora_hw::mirror::ResilverBarrier { _sealed: () };
/// ```
///
/// And a promotion without the barrier does not typecheck:
///
/// ```compile_fail
/// fn promote(m: &mut aurora_hw::MirrorDev) {
///     let _ = m.promote_rebuilt(); // missing the `ResilverBarrier` argument
/// }
/// ```
#[must_use = "the barrier token exists to be consumed by promote_rebuilt"]
#[derive(Debug)]
pub struct ResilverBarrier {
    _sealed: (),
}

/// A block copy that passed content verification — the only source the
/// read-repair rewrite phase accepts, so unverified bytes can never be
/// written over a twin.
#[derive(Debug)]
pub struct GoldenCopy {
    lba: u64,
    bytes: Vec<u8>,
}

impl BlockDev for MirrorDev {
    fn info(&self) -> &DevInfo {
        &self.info
    }

    fn stats(&self) -> &DevStats {
        &self.stats
    }

    fn read(&mut self, lba: u64, buf: &mut [u8]) -> Result<()> {
        self.read_with_failover(|r| r.read(lba, buf))?;
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        Ok(())
    }

    fn read_blocks(&mut self, lba: u64, bufs: &mut [Vec<u8>]) -> Result<()> {
        // The per-replica ResilientDev guarantees all-or-error extent
        // reads (failed attempts leave the buffers zeroed), so failing
        // over a whole extent to a twin never mixes replicas.
        self.read_with_failover(|r| r.read_blocks(lba, bufs))?;
        self.stats.reads += 1;
        self.stats.bytes_read += bufs.iter().map(|b| b.len() as u64).sum::<u64>();
        Ok(())
    }

    fn submit_write(&mut self, lba: u64, data: &[u8]) -> Result<SimTime> {
        let done = self.fan_out(|r| r.submit_write(lba, data))?;
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        Ok(done)
    }

    fn write(&mut self, lba: u64, data: &[u8]) -> Result<()> {
        let done = self.submit_write(lba, data)?;
        self.clock.advance_to(done);
        Ok(())
    }

    fn write_blocks(&mut self, lba: u64, blocks: &[&[u8]]) -> Result<SimTime> {
        let done = self.fan_out(|r| r.write_blocks(lba, blocks))?;
        self.stats.writes += 1;
        self.stats.bytes_written += blocks.iter().map(|b| b.len() as u64).sum::<u64>();
        Ok(done)
    }

    fn flush(&mut self) -> Result<SimTime> {
        let done = self.fan_out(|r| r.flush())?;
        self.stats.flushes += 1;
        Ok(done)
    }

    fn submit_write_timing(&mut self, nbytes: u64) -> Result<SimTime> {
        let done = self.fan_out(|r| r.submit_write_timing(nbytes))?;
        self.stats.writes += 1;
        self.stats.bytes_written += nbytes;
        Ok(done)
    }

    fn charge_read_timing(&mut self, nbytes: u64) -> Result<()> {
        self.read_with_failover(|r| r.charge_read_timing(nbytes))?;
        self.stats.reads += 1;
        self.stats.bytes_read += nbytes;
        Ok(())
    }

    fn power_fail(&mut self) {
        for r in self.replicas.iter_mut() {
            r.power_fail();
        }
    }

    fn power_on(&mut self) {
        // Replica states deliberately survive the power cycle: a replica
        // that was rebuilding stays rebuilding (its contents are still
        // partial), a detached replica stays detached.
        for r in self.replicas.iter_mut() {
            r.power_on();
        }
    }

    fn powered(&self) -> bool {
        self.replicas
            .iter()
            .zip(self.states.iter())
            .any(|(r, s)| *s == ReplicaState::Active && r.powered())
    }

    fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) {
        // Whole-machine semantics: every replica sees the same schedule,
        // so a power cut at write N kills the machine, not one replica.
        // Per-replica faults go through `install_replica_fault_plan`.
        for r in self.replicas.iter_mut() {
            r.install_fault_plan(plan.clone());
        }
    }

    fn health(&self) -> DevHealth {
        if !self.powered() {
            return DevHealth::Dead;
        }
        if self.is_degraded() {
            DevHealth::Degraded
        } else {
            DevHealth::Healthy
        }
    }

    fn retry_stats(&self) -> RetryStats {
        let mut total = RetryStats::default();
        for r in &self.replicas {
            let s = r.retry_stats();
            total.writes_retried += s.writes_retried;
            total.reads_retried += s.reads_retried;
            total.transient_absorbed += s.transient_absorbed;
            total.failures_surfaced += s.failures_surfaced;
        }
        total
    }

    fn repair_block(
        &mut self,
        lba: u64,
        verify: &mut dyn FnMut(&[u8]) -> bool,
    ) -> Result<Option<Vec<u8>>> {
        self.repair_block_from_twin(lba, verify)
    }

    fn as_mirror(&self) -> Option<&MirrorDev> {
        Some(self)
    }

    fn as_mirror_mut(&mut self) -> Option<&mut MirrorDev> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::ModelDev;
    use crate::fault::FaultPlan;

    fn mirror(width: usize, blocks: u64) -> MirrorDev {
        let clock = SimClock::new();
        let members: Vec<Box<dyn BlockDev>> = (0..width)
            .map(|i| {
                Box::new(ModelDev::nvme(clock.clone(), &format!("nvme{i}"), blocks))
                    as Box<dyn BlockDev>
            })
            .collect();
        MirrorDev::new(members).unwrap()
    }

    fn block(fill: u8) -> Vec<u8> {
        vec![fill; BLOCK_SIZE]
    }

    #[test]
    fn empty_mirror_is_rejected() {
        assert!(MirrorDev::new(Vec::new()).is_err());
    }

    #[test]
    fn writes_land_on_every_replica_and_roundtrip() {
        let mut m = mirror(3, 128);
        let data = block(0xA5);
        m.write(7, &data).unwrap();
        let done = m.flush().unwrap();
        m.clock().advance_to(done);
        let mut buf = block(0);
        m.read(7, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(m.active_width(), 3);
        assert_eq!(m.health(), DevHealth::Healthy);
    }

    #[test]
    fn replica_death_mid_write_degrades_but_survives() {
        let mut m = mirror(2, 128);
        // Replica 0 dies at its 2nd write; replica 1 keeps going.
        m.install_replica_fault_plan(0, FaultPlan::power_cut(2)).unwrap();
        m.write(1, &block(0x11)).unwrap();
        m.write(2, &block(0x22)).unwrap();
        m.write(3, &block(0x33)).unwrap();
        assert_eq!(m.replica_state(0), Some(ReplicaState::Detached));
        assert_eq!(m.active_width(), 1);
        assert_eq!(m.health(), DevHealth::Degraded);
        assert!(m.mirror_stats().degraded_writes >= 1);
        // All three blocks still readable from the survivor.
        let done = m.flush().unwrap();
        m.clock().advance_to(done);
        for (lba, fill) in [(1, 0x11u8), (2, 0x22), (3, 0x33)] {
            let mut buf = block(0);
            m.read(lba, &mut buf).unwrap();
            assert_eq!(buf, block(fill), "lba {lba}");
        }
    }

    #[test]
    fn read_fails_over_to_twin_and_detaches_the_failed_replica() {
        let mut m = mirror(2, 128);
        m.write(5, &block(0x5A)).unwrap();
        let done = m.flush().unwrap();
        m.clock().advance_to(done);
        // Preferred replica (0) loses power on its next read.
        m.install_replica_fault_plan(0, FaultPlan::power_cut_on_read(1)).unwrap();
        let mut buf = block(0);
        m.read(5, &mut buf).unwrap();
        assert_eq!(buf, block(0x5A));
        assert_eq!(m.mirror_stats().failovers, 1);
        assert_eq!(m.replica_state(0), Some(ReplicaState::Detached));
        // Subsequent reads go straight to the survivor.
        let mut buf = block(0);
        m.read(5, &mut buf).unwrap();
        assert_eq!(buf, block(0x5A));
    }

    #[test]
    fn whole_machine_power_cut_keeps_replica_states() {
        let mut m = mirror(2, 128);
        m.write(1, &block(0xBB)).unwrap();
        // Same plan on every replica: the machine dies at the next write.
        m.install_fault_plan(FaultPlan::power_cut(1));
        assert!(m.write(2, &block(0xCC)).is_err());
        assert_eq!(m.health(), DevHealth::Dead);
        assert!(!m.powered());
        // No replica was singled out: both stay Active for recovery.
        assert_eq!(m.replica_state(0), Some(ReplicaState::Active));
        assert_eq!(m.replica_state(1), Some(ReplicaState::Active));
        m.power_on();
        assert!(m.powered());
    }

    #[test]
    fn repair_block_rewrites_a_corrupt_replica_from_its_twin() {
        let mut m = mirror(2, 128);
        let good = block(0x77);
        m.write(9, &good).unwrap();
        let done = m.flush().unwrap();
        m.clock().advance_to(done);
        // Replica 0 serves corrupted reads of every block.
        m.install_replica_fault_plan(0, FaultPlan::corrupt_read_blocks(0, u64::MAX, 100, 3))
            .unwrap();
        let expect = good.clone();
        let golden = m
            .repair_block_from_twin(9, &mut |b: &[u8]| b == expect.as_slice())
            .unwrap()
            .expect("twin had a good copy");
        assert_eq!(golden, good);
        assert_eq!(m.mirror_stats().read_repairs, 1);
        // The rewrite went through; disarm the read corruption and check.
        m.install_replica_fault_plan(0, FaultPlan::default()).unwrap();
        let mut buf = block(0);
        m.read(9, &mut buf).unwrap();
        assert_eq!(buf, good);
        // Both replicas still active: corruption was healed, not fatal.
        assert_eq!(m.active_width(), 2);
    }

    #[test]
    fn resilver_rebuilds_a_revived_replica() {
        let mut m = mirror(2, 256);
        for lba in 0..8u64 {
            m.write(lba, &block(lba as u8 + 1)).unwrap();
        }
        let done = m.flush().unwrap();
        m.clock().advance_to(done);
        m.kill_replica(0).unwrap();
        // Writes while degraded only land on replica 1.
        m.write(8, &block(0x99)).unwrap();
        m.revive_replica(0).unwrap();
        assert_eq!(m.replica_state(0), Some(ReplicaState::Rebuilding));
        assert!(m.needs_resilver());
        // A rebuilding replica receives new writes...
        m.write(9, &block(0xAA)).unwrap();
        // ...but serves no reads until promoted.
        assert_eq!(m.active_width(), 1);
        let copied = m.resilver_extent(0, 10).unwrap();
        assert_eq!(copied, 10);
        let barrier = m.resilver_barrier().unwrap();
        assert_eq!(m.promote_rebuilt(barrier).unwrap(), 1);
        assert_eq!(m.active_width(), 2);
        assert!(!m.needs_resilver());
        // Kill the twin: the rebuilt replica must now serve everything.
        m.kill_replica(1).unwrap();
        for (lba, fill) in (0..8u64).map(|l| (l, l as u8 + 1)).chain([(8, 0x99), (9, 0xAA)]) {
            let mut buf = block(0);
            m.read(lba, &mut buf).unwrap();
            assert_eq!(buf, block(fill), "lba {lba} after resilver");
        }
    }

    #[test]
    fn rebuilding_replica_survives_power_cycle_without_promotion() {
        let mut m = mirror(2, 128);
        m.write(0, &block(0x42)).unwrap();
        m.kill_replica(0).unwrap();
        m.revive_replica(0).unwrap();
        assert_eq!(m.replica_state(0), Some(ReplicaState::Rebuilding));
        // Whole-machine crash mid-resilver: on power-up the replica is
        // still rebuilding — never silently promoted.
        m.power_fail();
        m.power_on();
        assert_eq!(m.replica_state(0), Some(ReplicaState::Rebuilding));
        assert!(m.needs_resilver());
        assert_eq!(m.health(), DevHealth::Degraded);
    }

    #[test]
    fn vectored_ops_mirror_across_replicas() {
        let mut m = mirror(3, 128);
        let bufs: Vec<Vec<u8>> = (1..=4u8).map(block).collect();
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        let done = m.write_blocks(10, &refs).unwrap();
        m.clock().advance_to(done);
        let done = m.flush().unwrap();
        m.clock().advance_to(done);
        // Kill two replicas; the third serves the whole extent.
        m.kill_replica(0).unwrap();
        m.kill_replica(1).unwrap();
        let mut out: Vec<Vec<u8>> = vec![block(0); 4];
        m.read_blocks(10, &mut out).unwrap();
        assert_eq!(out, bufs);
    }
}
