//! Outside the durability region: unwrap is allowed (clippy still
//! frowns, but the lint's no-panic rule is scoped to flush paths).

pub fn shortcut(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
