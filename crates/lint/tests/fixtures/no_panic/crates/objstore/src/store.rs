//! Durability-region file with panics the lint must flag.

pub fn flush(blocks: &[u8], table: &std::collections::BTreeMap<u64, u64>) -> u64 {
    let first = table.get(&0).unwrap();
    let second = table.get(&1).expect("slot 1");
    if blocks.is_empty() {
        panic!("empty flush");
    }
    first + second + u64::from(blocks[0])
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v = vec![1u8];
        assert_eq!(*v.first().unwrap(), v[0]);
    }
}
