//! Lock nesting, right and wrong.

pub fn in_order() {
    let _a = A_LOCK.lock();
    let _b = B_LOCK.lock();
}

pub fn inverted() {
    let _b = B_LOCK.lock();
    let _a = A_LOCK.lock();
}

pub fn raw() {
    let m = std::sync::Mutex::new(0u32);
    drop(m);
}

pub fn unregistered() {
    let _g = MYSTERY.lock();
}
