//! The clock layer itself may read real time.

pub fn host_now() -> std::time::Instant {
    std::time::Instant::now()
}
