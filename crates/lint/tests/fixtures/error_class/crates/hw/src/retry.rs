use crate::ErrorKind;

pub enum FaultClass {
    Transient,
    Permanent,
}

pub fn classify(kind: ErrorKind) -> FaultClass {
    match kind {
        ErrorKind::Alpha => FaultClass::Transient,
        _ => FaultClass::Permanent,
    }
}
