/// Error kinds for the fixture.
#[derive(Debug, Clone, Copy)]
pub enum ErrorKind {
    /// Classified below.
    Alpha,
    /// Not classified.
    Beta,
    /// Not classified, with payload.
    Gamma(u32),
}
