//! Nothing to suppress here.

pub fn noop() {}
