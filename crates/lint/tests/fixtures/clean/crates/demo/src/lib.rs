//! Violation-free production code.

pub fn double(x: u32) -> u32 {
    x.saturating_mul(2)
}

#[cfg(test)]
mod tests {
    #[test]
    fn doubles() {
        assert_eq!(super::double(2), 4);
    }
}
