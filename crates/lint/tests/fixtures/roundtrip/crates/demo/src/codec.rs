//! A codec pair with no registered round-trip test.

pub struct Rec {
    pub id: u64,
}

impl Rec {
    pub fn encode(&self) -> Vec<u8> {
        self.id.to_le_bytes().to_vec()
    }

    pub fn decode(bytes: &[u8]) -> Option<Rec> {
        Some(Rec {
            id: u64::from_le_bytes(bytes.try_into().ok()?),
        })
    }
}
