// Commit-phase fixture. `seal_journal` is allowlisted; every other raw
// device write must be flagged, while test code stays exempt.
pub struct Dev;

pub fn seal_journal(dev: &mut Dev) {
    dev.submit_write(7, b"journal record"); // licensed
}

pub fn rogue_flip(dev: &mut Dev) {
    dev.submit_write(0, b"superblock"); // line 10: bypasses the protocol
}

pub fn rogue_extent(dev: &mut Dev, sizes: [u8; 4]) {
    let _ = sizes;
    let run = || dev.write_blocks(9, &[]); // line 15: closures inherit the fn
    run();
}

pub fn sneaky_repair(dev: &mut Dev) {
    let _ = dev.repair_block(3); // line 20
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let mut d = super::Dev;
        d.submit_write(1, b"test code may poke the device");
    }
}
