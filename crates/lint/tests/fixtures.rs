//! Fixture self-tests: each fixture under `tests/fixtures/` is a tiny
//! workspace with known violations (or none); `analyze` must report
//! exactly those. The last test drives the installed binary to pin the
//! exit-code contract the CI gate relies on.

use std::path::PathBuf;

use aurora_lint::Violation;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze(name: &str) -> Vec<Violation> {
    aurora_lint::analyze(&fixture(name)).expect("fixture must analyze")
}

/// `(check, path, line)` triples, in report order.
fn keys(violations: &[Violation]) -> Vec<(&str, &str, u32)> {
    violations
        .iter()
        .map(|v| (v.check, v.path.as_str(), v.line))
        .collect()
}

#[test]
fn clean_fixture_passes() {
    assert_eq!(keys(&analyze("clean")), Vec::<(&str, &str, u32)>::new());
}

#[test]
fn wall_clock_fixture() {
    assert_eq!(
        keys(&analyze("wall_clock")),
        vec![
            ("wall-clock", "crates/demo/src/lib.rs", 4),
            ("wall-clock", "crates/demo/src/lib.rs", 5),
            ("wall-clock", "crates/demo/src/lib.rs", 10),
        ],
        "three forbidden sites in demo; the sim clock layer is exempt"
    );
}

#[test]
fn no_panic_fixture() {
    assert_eq!(
        keys(&analyze("no_panic")),
        vec![
            ("no-panic", "crates/objstore/src/store.rs", 4),
            ("no-panic", "crates/objstore/src/store.rs", 5),
            ("no-panic", "crates/objstore/src/store.rs", 7),
            ("no-panic-index", "crates/objstore/src/store.rs", 9),
        ],
        "durability-region panics flagged; test code and non-durability \
         crates exempt"
    );
}

#[test]
fn lock_order_fixture() {
    assert_eq!(
        keys(&analyze("lock_order")),
        vec![
            ("lock-order", "crates/demo/src/lib.rs", 10),
            ("raw-lock", "crates/demo/src/lib.rs", 14),
            ("lock-site", "crates/demo/src/lib.rs", 19),
        ]
    );
}

#[test]
fn error_class_fixture() {
    let violations = analyze("error_class");
    let msgs: Vec<&str> = violations.iter().map(|v| v.msg.as_str()).collect();
    assert_eq!(violations.len(), 3, "got: {msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("ErrorKind::Beta")));
    assert!(msgs.iter().any(|m| m.contains("ErrorKind::Gamma")));
    assert!(msgs.iter().any(|m| m.contains("wildcard")));
}

#[test]
fn roundtrip_fixture() {
    let violations = analyze("roundtrip");
    let msgs: Vec<&str> = violations.iter().map(|v| v.msg.as_str()).collect();
    assert_eq!(violations.len(), 2, "got: {msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("`Rec`") && m.contains("not registered")),
        "unregistered codec pair must be flagged: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("`Ghost`") && m.contains("matches no")),
        "dangling registry entry must be flagged: {msgs:?}"
    );
}

#[test]
fn commit_phase_fixture() {
    let violations = analyze("commit_phase");
    assert_eq!(
        keys(&violations),
        vec![
            ("commit-phase", "crates/demo/src/lib.rs", 10),
            ("commit-phase", "crates/demo/src/lib.rs", 15),
            ("commit-phase", "crates/demo/src/lib.rs", 20),
        ],
        "raw writes outside allowlisted fns flagged; the licensed \
         `seal_journal` and test code exempt: {:?}",
        violations.iter().map(|v| v.render()).collect::<Vec<_>>()
    );
    assert!(
        violations[0].msg.contains("rogue_flip")
            && violations[0].msg.contains("submit_write"),
        "diagnostic names the function and the call: {}",
        violations[0].msg
    );
}

#[test]
fn stale_allow_fixture() {
    let violations = analyze("stale_allow");
    assert_eq!(keys(&violations), vec![("stale-allow", "lint-allow.toml", 0)]);
    assert!(violations[0].msg.contains("matched nothing"));
}

#[test]
fn binary_exit_codes() {
    let run = |name: &str| {
        std::process::Command::new(env!("CARGO_BIN_EXE_aurora-lint"))
            .args(["--root", fixture(name).to_str().expect("utf-8 path")])
            .output()
            .expect("binary must run")
    };
    let ok = run("clean");
    assert!(ok.status.success(), "clean fixture must exit 0");
    let bad = run("wall_clock");
    assert_eq!(
        bad.status.code(),
        Some(1),
        "a seeded violation must exit 1: {}",
        String::from_utf8_lossy(&bad.stdout)
    );
}
