//! The tier-1 gate: `cargo test` fails whenever the workspace tree
//! violates an invariant, so the lint cannot rot silently between CI
//! configurations.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root must resolve")
}

#[test]
fn workspace_has_no_unsuppressed_violations() {
    let violations =
        aurora_lint::analyze(&workspace_root()).expect("workspace must analyze");
    assert!(
        violations.is_empty(),
        "aurora-lint found {} violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The suppression ratchet: `lint-allow.toml` may only shrink. The
/// budget below was set when the typestate commit protocol landed
/// (burning the serialize.rs and store.rs index suppressions, 10 → 8);
/// lower it when entries are fixed, never raise it without review.
const MAX_ALLOW_ENTRIES: usize = 8;

#[test]
fn allowlist_never_grows() {
    let src = std::fs::read_to_string(workspace_root().join("lint-allow.toml"))
        .expect("lint-allow.toml must be readable");
    let cfg = aurora_lint::Config::parse(&src).expect("lint-allow.toml must parse");
    assert!(
        cfg.allows.len() <= MAX_ALLOW_ENTRIES,
        "lint-allow.toml has {} [[allow]] entries, ratchet is {MAX_ALLOW_ENTRIES}: \
         fix the underlying site instead of suppressing it (or get review to \
         raise the ratchet alongside the new entry)",
        cfg.allows.len()
    );
    assert!(
        !cfg.commit_phase_crates.is_empty() && !cfg.commit_phase_allow.is_empty(),
        "the [commit-phase] policy section must not be emptied — that would \
         silently disable the raw-device-write check"
    );
}
