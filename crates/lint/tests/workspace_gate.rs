//! The tier-1 gate: `cargo test` fails whenever the workspace tree
//! violates an invariant, so the lint cannot rot silently between CI
//! configurations.

use std::path::PathBuf;

#[test]
fn workspace_has_no_unsuppressed_violations() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root must resolve");
    let violations = aurora_lint::analyze(&root).expect("workspace must analyze");
    assert!(
        violations.is_empty(),
        "aurora-lint found {} violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
