//! A minimal Rust lexer: just enough to walk token streams with line
//! numbers, skipping comments and string contents, so checks never fire
//! on text inside a comment or a format string.
//!
//! This is deliberately not a parser. Every check in `checks/` works on
//! token patterns (`Ident "Instant"`, `:`, `:`, `Ident "now"`) plus
//! brace-depth tracking, which is robust against formatting and cheap
//! enough to run over the whole workspace on every `cargo test`.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String or byte-string literal (text is the placeholder `"str"`).
    Str,
    /// Character literal.
    Char,
    /// Numeric literal (text preserved — tags and magics matter to the
    /// format fingerprint).
    Num,
    /// Lifetime such as `'a` (text excludes the quote).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token text (see [`TokenKind`] for what each kind stores).
    pub text: String,
    /// Classification.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True if this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Lexes `src` into tokens. Unterminated constructs (possible in lint
/// fixtures) end at EOF rather than erroring: the analyzer must never
/// panic on weird input.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start_line = line;
                i = skip_string(b, i + 1, &mut line);
                out.push(Token {
                    text: "\"str\"".into(),
                    kind: TokenKind::Str,
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime or char literal. A char literal is 'x' or an
                // escape '\n'; a lifetime is 'ident with no closing quote.
                let start_line = line;
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    // Escape: definitely a char literal.
                    i += 2; // consume quote + backslash
                    if i < b.len() {
                        i += 1; // escaped char (or start of \u{...})
                    }
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1; // closing quote
                    out.push(Token {
                        text: "'c'".into(),
                        kind: TokenKind::Char,
                        line: start_line,
                    });
                } else {
                    // Scan the ident run after the quote.
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'\'' && j > i + 1 {
                        // 'a' — single char in quotes.
                        if j == i + 2 {
                            i = j + 1;
                            out.push(Token {
                                text: "'c'".into(),
                                kind: TokenKind::Char,
                                line: start_line,
                            });
                        } else {
                            // 'abc' is not valid Rust; treat as lifetime
                            // plus stray quote to stay robust.
                            let text = String::from_utf8_lossy(&b[i + 1..j]).into_owned();
                            i = j;
                            out.push(Token {
                                text,
                                kind: TokenKind::Lifetime,
                                line: start_line,
                            });
                        }
                    } else if j > i + 1 {
                        // Lifetime 'ident.
                        let text = String::from_utf8_lossy(&b[i + 1..j]).into_owned();
                        i = j;
                        out.push(Token {
                            text,
                            kind: TokenKind::Lifetime,
                            line: start_line,
                        });
                    } else {
                        // Bare quote (e.g. inside a macro); skip it.
                        i += 1;
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                // Raw / byte string prefixes: r"...", r#"..."#, b"...", br#"..."#.
                let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb");
                if is_str_prefix && i < b.len() && (b[i] == b'"' || b[i] == b'#') {
                    let start_line = line;
                    if let Some(next) = skip_raw_or_byte_string(b, i, &mut line) {
                        i = next;
                        out.push(Token {
                            text: "\"str\"".into(),
                            kind: TokenKind::Str,
                            line: start_line,
                        });
                        continue;
                    }
                }
                out.push(Token {
                    text,
                    kind: TokenKind::Ident,
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // Stop a range expression `0..n` from being glued to
                    // the number.
                    if b[i] == b'.' && i + 1 < b.len() && b[i + 1] == b'.' {
                        break;
                    }
                    i += 1;
                }
                out.push(Token {
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    kind: TokenKind::Num,
                    line,
                });
            }
            _ => {
                out.push(Token {
                    text: (c as char).to_string(),
                    kind: TokenKind::Punct,
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Skips a normal string body starting after the opening quote; returns
/// the index after the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw or byte string starting at the `#`/`"` after the prefix.
/// Returns `None` when this is not actually a string start (e.g. `r#foo`
/// raw identifiers).
fn skip_raw_or_byte_string(b: &[u8], mut i: usize, line: &mut u32) -> Option<usize> {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        return None; // raw identifier like r#match
    }
    i += 1;
    if hashes == 0 {
        return Some(skip_string_raw(b, i, line, 0));
    }
    Some(skip_string_raw(b, i, line, hashes))
}

/// Skips a raw string body (no escapes); terminates on `"` followed by
/// `hashes` `#` characters.
fn skip_string_raw(b: &[u8], mut i: usize, line: &mut u32, hashes: usize) -> usize {
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = texts(
            "let x = \"Instant::now()\"; // Instant::now\n/* SystemTime::now */ let y = 1;",
        );
        assert!(!toks.iter().any(|t| t == "Instant" || t == "SystemTime"));
        assert!(toks.contains(&"\"str\"".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Char).count(),
            1
        );
    }

    #[test]
    fn raw_strings_and_escapes() {
        let toks = texts("let s = r#\"unwrap() \"quoted\" panic!\"#; let c = '\\n';");
        assert!(!toks.iter().any(|t| t == "unwrap" || t == "panic"));
        let toks = texts("let id = r#match; id");
        assert!(toks.iter().any(|t| t == "match"));
    }

    #[test]
    fn lines_survive_multiline_constructs() {
        let toks = lex("let a = \"x\ny\";\nlet b = 2;");
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn numbers_keep_separators_and_ranges_split() {
        let toks = texts("const M: u64 = 0x4155_524F; for i in 0..n {}");
        assert!(toks.contains(&"0x4155_524F".to_string()));
        assert!(toks.contains(&"0".to_string()));
    }
}
