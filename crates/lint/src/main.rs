//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p aurora-lint                   # check, exit 1 on violations
//! cargo run -p aurora-lint -- --root DIR     # check another tree
//! cargo run -p aurora-lint -- --bless-format # re-record format.lock
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut bless = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--bless-format" => bless = true,
            "--help" | "-h" => {
                eprintln!("usage: aurora-lint [--root DIR] [--bless-format]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // When invoked via `cargo run -p aurora-lint` the cwd is already the
    // workspace root; when invoked from a crate dir, walk up to the
    // workspace Cargo.toml.
    if !root.join("lint-allow.toml").exists() {
        let mut up = root.clone();
        for _ in 0..4 {
            up = up.join("..");
            if up.join("lint-allow.toml").exists() {
                root = up;
                break;
            }
        }
    }
    if bless {
        return match aurora_lint::bless_format(&root) {
            Ok(msg) => {
                println!("aurora-lint: {msg}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("aurora-lint: {e}");
                ExitCode::from(2)
            }
        };
    }
    match aurora_lint::analyze(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("aurora-lint: ok (0 violations)");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{}", v.render());
            }
            println!("aurora-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("aurora-lint: {e}");
            ExitCode::from(2)
        }
    }
}
