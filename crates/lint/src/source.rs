//! Workspace file loading and test-region detection.
//!
//! Checks distinguish *production* code from *test* code: a `.unwrap()`
//! in a `#[cfg(test)]` module asserts a test invariant, while the same
//! call in the flush path voids the crash-consistency guarantee. A line
//! is test code when it sits in a `tests/`, `benches/` or `examples/`
//! tree, or inside an item annotated `#[cfg(test)]` / `#[test]`.

use std::fs;
use std::path::Path;

use crate::lexer::{lex, Token, TokenKind};

/// One lexed workspace file.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Whole file is test/bench/example code (by directory).
    pub all_test: bool,
    /// Line spans (1-based, inclusive) covered by `#[cfg(test)]` or
    /// `#[test]` items.
    pub test_spans: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes `src` as `rel`.
    pub fn from_source(rel: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let all_test = rel.split('/').any(|c| {
            c == "tests" || c == "benches" || c == "examples" || c == "fixtures"
        });
        let test_spans = find_test_spans(&tokens);
        SourceFile {
            rel: rel.to_string(),
            tokens,
            all_test,
            test_spans,
        }
    }

    /// True when `line` is test code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.all_test || self.test_spans.iter().any(|&(a, b)| line >= a && line <= b)
    }

    /// The crate this file belongs to (`crates/<name>/...`), if any.
    pub fn crate_name(&self) -> Option<&str> {
        let mut parts = self.rel.split('/');
        if parts.next() == Some("crates") {
            parts.next()
        } else {
            None
        }
    }
}

/// Finds line spans of items annotated `#[cfg(test)]` or `#[test]`.
///
/// The span runs from the attribute to the closing brace (or `;`) of the
/// annotated item. Nested attributes between the cfg and the item are
/// included.
fn find_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            // Collect attribute tokens up to the matching `]`.
            let attr_start_line = tokens[i].line;
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut words: Vec<&str> = Vec::new();
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                } else if tokens[j].kind == TokenKind::Ident {
                    words.push(&tokens[j].text);
                }
                j += 1;
            }
            let is_test_attr = words.as_slice() == ["test"]
                || (words.contains(&"cfg") && words.contains(&"test"));
            if is_test_attr {
                if let Some(end_line) = item_end_line(tokens, j) {
                    spans.push((attr_start_line, end_line));
                    // Continue after the attribute (not the item): items
                    // rarely nest another cfg(test), and rescanning inside
                    // is harmless because spans merely accumulate.
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

/// Given the token index just past an attribute, returns the last line
/// of the annotated item (closing brace of its block, or the `;` for a
/// bodyless item).
fn item_end_line(tokens: &[Token], mut i: usize) -> Option<u32> {
    // Skip any further attributes.
    while i + 1 < tokens.len() && tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
        let mut depth = 0i32;
        loop {
            if i >= tokens.len() {
                return None;
            }
            if tokens[i].is_punct('[') {
                depth += 1;
            } else if tokens[i].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // Scan to the item body `{` (skipping any `{ ... }` that appear in
    // where-clauses is unnecessary: the first `{` at angle-depth 0 is the
    // body for fn/mod/impl items) or a terminating `;`.
    let mut angle = 0i32;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct(';') && angle <= 0 {
            return Some(t.line);
        } else if t.is_punct('{') && angle <= 0 {
            // Match braces to the end of the block.
            let mut depth = 0i32;
            while i < tokens.len() {
                if tokens[i].is_punct('{') {
                    depth += 1;
                } else if tokens[i].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some(tokens[i].line);
                    }
                }
                i += 1;
            }
            return tokens.last().map(|t| t.line);
        }
        i += 1;
    }
    None
}

/// Recursively collects workspace `.rs` files, excluding build output and
/// the lint fixtures (fixtures are analyzer *input data*, checked by the
/// fixture self-tests with their own allowlists).
pub fn walk_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = rel_path(root, &path);
                let src = fs::read_to_string(&path)?;
                files.push(SourceFile::from_source(&rel, &src));
            }
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

/// `path` relative to `root`, `/`-separated.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_span() {
        let src = "fn prod() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn prod2() {}\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_fn_and_dirs() {
        let src = "#[test]\nfn check() { assert!(true); }\nfn other() {}\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
        let f = SourceFile::from_source("crates/x/tests/it.rs", "fn a() {}");
        assert!(f.is_test_line(1));
        assert_eq!(f.crate_name(), Some("x"));
    }

    #[test]
    fn attr_stacking() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn t() {\n  1;\n}\nfn p() {}\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }
}
