//! `lint-allow.toml`: the single, review-visible suppression and policy
//! file for `aurora-lint`.
//!
//! The parser handles the TOML subset the config actually uses — tables,
//! array-of-tables, strings, integers, booleans and string arrays — so
//! the analyzer stays dependency-free. Anything else is a hard error:
//! a config that fails to parse must fail the build, not silently allow.
//!
//! Sections:
//!
//! - `[[allow]]` — one suppression each: `check`, `path`, optional
//!   `line`, optional `count` (a *ratchet*: at most N matches in the
//!   file), and a mandatory `reason`. Unused entries are themselves
//!   violations, so the file can only shrink unless someone consciously
//!   adds to it.
//! - `[locks] order = [...]` — the global lock hierarchy, outermost
//!   first, and `[locks.sites]` mapping static names to ranks.
//! - `[roundtrip]` — registry mapping every encode/decode type or
//!   function pair to the file whose tests round-trip it.
//! - `[format] files = [...]` — the format-bearing files whose token
//!   stream feeds the on-disk-format fingerprint.

use std::collections::BTreeMap;

/// One `[[allow]]` suppression.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Check name the suppression applies to.
    pub check: String,
    /// Workspace-relative file path.
    pub path: String,
    /// Restrict to one line (brittle; prefer `count`).
    pub line: Option<u32>,
    /// Ratchet: at most this many matches in the file (default 1).
    pub count: u32,
    /// Why this suppression is justified. Required.
    pub reason: String,
}

/// Parsed `lint-allow.toml`.
#[derive(Debug, Default)]
pub struct Config {
    /// Suppressions, in file order.
    pub allows: Vec<AllowEntry>,
    /// Lock ranks, outermost → innermost.
    pub lock_order: Vec<String>,
    /// Static/site name → rank name.
    pub lock_sites: BTreeMap<String, String>,
    /// Type or pair name → file whose tests round-trip it.
    pub roundtrip: BTreeMap<String, String>,
    /// Format-bearing files (workspace-relative).
    pub format_files: Vec<String>,
    /// Crates whose production code the `commit-phase` check covers.
    pub commit_phase_crates: Vec<String>,
    /// Token-bearing functions licensed to issue raw device writes.
    pub commit_phase_allow: Vec<String>,
}

/// A parsed TOML value (subset).
#[derive(Debug, Clone)]
enum Value {
    Str(String),
    Int(i64),
    StrArray(Vec<String>),
}

impl Config {
    /// Parses the config, returning a descriptive error on any line the
    /// subset parser does not understand.
    pub fn parse(src: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        // Current section path, e.g. ["locks", "sites"]; [[allow]] pushes
        // a fresh entry and routes keys to it.
        let mut section: Vec<String> = Vec::new();
        let mut in_allow = false;
        let lines: Vec<&str> = src.lines().collect();
        let mut idx = 0usize;
        while idx < lines.len() {
            let lineno = idx;
            let mut line = strip_comment(lines[idx]).trim().to_string();
            idx += 1;
            // Multi-line arrays: keep appending until brackets balance.
            while line.contains('[')
                && line.contains("=")
                && bracket_balance(&line) > 0
                && idx < lines.len()
            {
                line.push(' ');
                line.push_str(strip_comment(lines[idx]).trim());
                idx += 1;
            }
            let line = line.as_str();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("lint-allow.toml:{}: {}", lineno + 1, msg);
            if let Some(rest) = line.strip_prefix("[[") {
                let name = rest
                    .strip_suffix("]]")
                    .ok_or_else(|| err("unterminated [[table]]"))?
                    .trim();
                if name != "allow" {
                    return Err(err(&format!("unknown array-of-tables [[{name}]]")));
                }
                cfg.allows.push(AllowEntry {
                    check: String::new(),
                    path: String::new(),
                    line: None,
                    count: 1,
                    reason: String::new(),
                });
                in_allow = true;
                section.clear();
            } else if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| err("unterminated [table]"))?
                    .trim();
                section = name.split('.').map(|s| s.trim().to_string()).collect();
                in_allow = false;
            } else {
                let (key, value) = parse_kv(line).map_err(|e| err(&e))?;
                if in_allow {
                    let entry = cfg
                        .allows
                        .last_mut()
                        .ok_or_else(|| err("key outside any table"))?;
                    match (key.as_str(), &value) {
                        ("check", Value::Str(s)) => entry.check = s.clone(),
                        ("path", Value::Str(s)) => entry.path = s.clone(),
                        ("line", Value::Int(n)) => entry.line = Some(*n as u32),
                        ("count", Value::Int(n)) => entry.count = *n as u32,
                        ("reason", Value::Str(s)) => entry.reason = s.clone(),
                        _ => return Err(err(&format!("unknown allow key `{key}`"))),
                    }
                } else {
                    match (section_path(&section).as_str(), key.as_str(), &value) {
                        ("locks", "order", Value::StrArray(a)) => cfg.lock_order = a.clone(),
                        ("locks.sites", _, Value::Str(s)) => {
                            cfg.lock_sites.insert(key, s.clone());
                        }
                        ("roundtrip", _, Value::Str(s)) => {
                            cfg.roundtrip.insert(key, s.clone());
                        }
                        ("format", "files", Value::StrArray(a)) => {
                            cfg.format_files = a.clone();
                        }
                        ("commit-phase", "crates", Value::StrArray(a)) => {
                            cfg.commit_phase_crates = a.clone();
                        }
                        ("commit-phase", "allow_in", Value::StrArray(a)) => {
                            cfg.commit_phase_allow = a.clone();
                        }
                        (sec, _, _) => {
                            return Err(err(&format!("unknown key `{key}` in section [{sec}]")))
                        }
                    }
                }
            }
        }
        for (i, a) in cfg.allows.iter().enumerate() {
            if a.check.is_empty() || a.path.is_empty() {
                return Err(format!("[[allow]] entry {} missing check/path", i + 1));
            }
            if a.reason.is_empty() {
                return Err(format!(
                    "[[allow]] for {} ({}) has no reason — every suppression must be justified",
                    a.path, a.check
                ));
            }
        }
        Ok(cfg)
    }
}

fn section_path(section: &[String]) -> String {
    section.join(".")
}

/// Net `[` minus `]` count outside string literals.
fn bracket_balance(line: &str) -> i32 {
    let mut bal = 0i32;
    let mut in_str = false;
    for c in line.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => bal += 1,
            ']' if !in_str => bal -= 1,
            _ => {}
        }
    }
    bal
}

/// Strips a `#` comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Parses `key = value`.
fn parse_kv(line: &str) -> Result<(String, Value), String> {
    let eq = line
        .find('=')
        .ok_or_else(|| "expected `key = value`".to_string())?;
    let key = line[..eq].trim().trim_matches('"').to_string();
    let val = line[eq + 1..].trim();
    Ok((key, parse_value(val)?))
}

fn parse_value(val: &str) -> Result<Value, String> {
    if let Some(body) = val.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| "unterminated string".to_string())?;
        return Ok(Value::Str(unescape(body)));
    }
    if let Some(body) = val.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array (arrays must be single-line)".to_string())?;
        let mut items = Vec::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(s) => items.push(s),
                _ => return Err("only string arrays are supported".to_string()),
            }
        }
        return Ok(Value::StrArray(items));
    }
    val.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("cannot parse value `{val}`"))
}

/// Splits on commas outside string literals.
fn split_top_level(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_schema() {
        let cfg = Config::parse(
            r#"
# suppressions
[[allow]]
check = "wall-clock"
path = "crates/criterion-shim/src/lib.rs"
count = 2
reason = "bench harness measures real time"

[locks]
order = ["ckpt_barrier", "metrics"]

[locks.sites]
CKPT_BARRIER = "ckpt_barrier"
METRICS = "metrics"

[roundtrip]
Checkpoint = "crates/objstore/src/checkpoint.rs"

[format]
files = ["crates/objstore/src/layout.rs"]

[commit-phase]
crates = ["objstore"]
allow_in = ["seal_journal", "flip_superblock"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].count, 2);
        assert_eq!(cfg.lock_order, vec!["ckpt_barrier", "metrics"]);
        assert_eq!(cfg.lock_sites["METRICS"], "metrics");
        assert_eq!(
            cfg.roundtrip["Checkpoint"],
            "crates/objstore/src/checkpoint.rs"
        );
        assert_eq!(cfg.format_files.len(), 1);
        assert_eq!(cfg.commit_phase_crates, vec!["objstore"]);
        assert_eq!(
            cfg.commit_phase_allow,
            vec!["seal_journal", "flip_superblock"]
        );
    }

    #[test]
    fn reason_is_mandatory() {
        let err = Config::parse(
            "[[allow]]\ncheck = \"no-panic\"\npath = \"x.rs\"\n",
        )
        .unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_keys_rejected() {
        assert!(Config::parse("[mystery]\nkey = 1\n").is_err());
        assert!(Config::parse("[[allow]]\nfrobnicate = true\n").is_err());
    }
}
