//! Check `wall-clock`: no real-time sources outside the simulation clock.
//!
//! The crash campaign replays seeded fault schedules and asserts exact
//! outcomes; a single `Instant::now()` (or a wall-clock sleep) in
//! simulated code makes backoff, retry windows and flush deadlines depend
//! on host scheduling, silently breaking reproducibility. All time must
//! flow through `aurora_sim::SimClock`.
//!
//! Forbidden everywhere — including tests, which also replay seeded
//! schedules — except the `crates/sim` clock layer itself. The criterion
//! bench shim legitimately measures real elapsed time and carries
//! `lint-allow.toml` entries.

use crate::source::SourceFile;

use super::Violation;

/// Files allowed to touch real time: the virtual-clock layer itself.
const ALLOWED: &[&str] = &["crates/sim/src/clock.rs", "crates/sim/src/time.rs"];

/// `A::b` patterns that read or depend on the host clock.
const FORBIDDEN: &[(&str, &str, &str)] = &[
    ("Instant", "now", "use the shared SimClock instead"),
    ("SystemTime", "now", "use the shared SimClock instead"),
    ("thread", "sleep", "charge a SimDuration to the SimClock instead"),
];

/// Runs the check over every file.
pub fn check(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        if ALLOWED.contains(&f.rel.as_str()) {
            continue;
        }
        let t = &f.tokens;
        for i in 0..t.len().saturating_sub(3) {
            for &(module, func, fix) in FORBIDDEN {
                if t[i].is_ident(module)
                    && t[i + 1].is_punct(':')
                    && t[i + 2].is_punct(':')
                    && t[i + 3].is_ident(func)
                {
                    out.push(Violation {
                        check: "wall-clock",
                        path: f.rel.clone(),
                        line: t[i].line,
                        msg: format!(
                            "`{module}::{func}` breaks seeded-campaign determinism; {fix}"
                        ),
                    });
                }
            }
        }
    }
    out
}
