//! The invariant checks.
//!
//! Each check walks lexed token streams and reports [`Violation`]s with
//! `file:line` positions. Checks never consult the allowlist themselves —
//! suppression is applied centrally by [`crate::apply_allowlist`] so that
//! unused allow entries can be detected and flagged.

pub mod commit_phase;
pub mod error_class;
pub mod format;
pub mod lock_order;
pub mod no_panic;
pub mod wall_clock;

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Check name (stable; referenced by `lint-allow.toml`).
    pub check: &'static str,
    /// Workspace-relative path (`lint-allow.toml` for config problems).
    pub path: String,
    /// 1-based line, or 0 for file-level diagnostics.
    pub line: u32,
    /// Human-readable description with the suggested fix.
    pub msg: String,
}

impl Violation {
    /// Formats as `path:line: [check] msg`.
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!("{}: [{}] {}", self.path, self.check, self.msg)
        } else {
            format!("{}:{}: [{}] {}", self.path, self.line, self.check, self.msg)
        }
    }
}
