//! Check `format`: on-disk format hygiene.
//!
//! Two rules keep the persistent format honest:
//!
//! 1. **Round-trip registry.** Every type with both `encode` and `decode`
//!    methods, and every `encode_x`/`decode_x` free-function pair, must
//!    be registered in `[roundtrip]` in `lint-allow.toml`, mapping it to
//!    the file whose tests round-trip it. Registering is deliberate: a
//!    codec without a round-trip test is exactly how an asymmetric
//!    encode/decode ships.
//! 2. **Fingerprint vs `layout.rs::VERSION`.** The token stream of the
//!    format-bearing files (`[format] files`, production lines only) is
//!    hashed into `crates/lint/format.lock` together with the `VERSION`
//!    it was blessed under. Editing format-bearing code without bumping
//!    `VERSION` fails the lint until the change is consciously blessed
//!    with `cargo run -p aurora-lint -- --bless-format` — a visible act
//!    in review, like the allowlist.

use std::collections::BTreeSet;
use std::path::Path;

use crate::config::Config;
use crate::source::SourceFile;

use super::Violation;

/// Where the blessed fingerprint is recorded (workspace-relative).
pub const LOCK_PATH: &str = "crates/lint/format.lock";
/// The file that owns `VERSION`.
const LAYOUT_FILE: &str = "crates/objstore/src/layout.rs";

/// Runs both rules. `root` is used to read `format.lock`.
pub fn check(files: &[SourceFile], cfg: &Config, root: &Path) -> Vec<Violation> {
    let mut out = check_roundtrip(files, cfg);
    out.extend(check_fingerprint(files, cfg, root));
    out
}

/// Rule 1: registry completeness and validity.
fn check_roundtrip(files: &[SourceFile], cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut required: Vec<(String, String, u32)> = Vec::new(); // (key, path, line)
    let mut encode_fns: Vec<(String, String, u32)> = Vec::new(); // (suffix, path, line)
    let mut decode_fns: BTreeSet<String> = BTreeSet::new();
    for f in files {
        if f.all_test {
            continue;
        }
        for (ty, fns, line) in impl_blocks(f) {
            if fns.iter().any(|n| n == "encode") && fns.iter().any(|n| n == "decode") {
                required.push((ty, f.rel.clone(), line));
            }
        }
        for (name, line) in free_fns(f) {
            if let Some(suffix) = name.strip_prefix("encode_") {
                encode_fns.push((normalize(suffix), f.rel.clone(), line));
            } else if let Some(suffix) = name.strip_prefix("decode_") {
                decode_fns.insert(normalize(suffix));
            }
        }
    }
    for (suffix, path, line) in encode_fns {
        if decode_fns.contains(&suffix) {
            required.push((suffix, path, line));
        }
    }
    let mut used_keys = BTreeSet::new();
    for (key, path, line) in required {
        used_keys.insert(key.clone());
        match cfg.roundtrip.get(&key) {
            None => out.push(Violation {
                check: "format",
                path,
                line,
                msg: format!(
                    "`{key}` both encodes and decodes but is not registered in [roundtrip]; \
                     add a round-trip test and register it in lint-allow.toml"
                ),
            }),
            Some(test_file) => {
                let Some(tf) = files.iter().find(|f| &f.rel == test_file) else {
                    out.push(Violation {
                        check: "format",
                        path: "lint-allow.toml".into(),
                        line: 0,
                        msg: format!("[roundtrip] {key}: file `{test_file}` does not exist"),
                    });
                    continue;
                };
                let mentions = tf.tokens.iter().any(|t| {
                    t.text == key
                        || t.text == format!("encode_{key}")
                        || t.text.strip_prefix("encode_").map(normalize).as_deref()
                            == Some(key.as_str())
                });
                let has_tests = tf.all_test || !tf.test_spans.is_empty();
                if !mentions || !has_tests {
                    out.push(Violation {
                        check: "format",
                        path: "lint-allow.toml".into(),
                        line: 0,
                        msg: format!(
                            "[roundtrip] {key}: `{test_file}` must contain tests that \
                             mention `{key}`"
                        ),
                    });
                }
            }
        }
    }
    for key in cfg.roundtrip.keys() {
        if !used_keys.contains(key) {
            out.push(Violation {
                check: "format",
                path: "lint-allow.toml".into(),
                line: 0,
                msg: format!(
                    "[roundtrip] entry `{key}` matches no encode/decode pair — remove it"
                ),
            });
        }
    }
    out
}

/// Rule 2: fingerprint drift vs VERSION.
fn check_fingerprint(files: &[SourceFile], cfg: &Config, root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    if cfg.format_files.is_empty() {
        return out;
    }
    for path in &cfg.format_files {
        if !files.iter().any(|f| &f.rel == path) {
            out.push(Violation {
                check: "format",
                path: "lint-allow.toml".into(),
                line: 0,
                msg: format!("[format] files entry `{path}` does not exist"),
            });
        }
    }
    let computed = fingerprint(files, cfg);
    let Some(version) = layout_version(files) else {
        out.push(Violation {
            check: "format",
            path: LAYOUT_FILE.into(),
            line: 0,
            msg: "could not find `const VERSION: u16 = ...`".into(),
        });
        return out;
    };
    let lock = std::fs::read_to_string(root.join(LOCK_PATH)).ok();
    let Some((rec_version, rec_fp)) = lock.as_deref().and_then(parse_lock) else {
        out.push(Violation {
            check: "format",
            path: LOCK_PATH.into(),
            line: 0,
            msg: "missing or unparsable; run `cargo run -p aurora-lint -- --bless-format`"
                .into(),
        });
        return out;
    };
    if computed != rec_fp && version == rec_version {
        out.push(Violation {
            check: "format",
            path: LOCK_PATH.into(),
            line: 0,
            msg: format!(
                "format-bearing sources changed (fingerprint {computed:#018x} != blessed \
                 {rec_fp:#018x}) but layout.rs VERSION is still {version}; if the on-disk \
                 layout changed, bump VERSION — then (or for a compatible refactor) run \
                 `cargo run -p aurora-lint -- --bless-format`"
            ),
        });
    } else if version != rec_version {
        out.push(Violation {
            check: "format",
            path: LOCK_PATH.into(),
            line: 0,
            msg: format!(
                "layout.rs VERSION is {version} but format.lock was blessed under \
                 {rec_version}; run `cargo run -p aurora-lint -- --bless-format`"
            ),
        });
    }
    out
}

/// FNV-1a over the production token texts of the format-bearing files.
pub fn fingerprint(files: &[SourceFile], cfg: &Config) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for path in &cfg.format_files {
        let Some(f) = files.iter().find(|f| &f.rel == path) else {
            continue;
        };
        mix(f.rel.as_bytes());
        mix(&[0xFF]);
        for t in &f.tokens {
            if f.is_test_line(t.line) {
                continue;
            }
            mix(t.text.as_bytes());
            mix(&[0]);
        }
    }
    h
}

/// Renders the contents of `format.lock`.
pub fn render_lock(version: u16, fp: u64) -> String {
    format!(
        "# Blessed on-disk format fingerprint; maintained by `aurora-lint --bless-format`.\n\
         # Any edit to a [format] file must either bump layout.rs VERSION or be\n\
         # consciously re-blessed here (compatible refactor).\n\
         version = {version}\nfingerprint = \"{fp:#018x}\"\n"
    )
}

fn parse_lock(src: &str) -> Option<(u16, u64)> {
    let mut version = None;
    let mut fp = None;
    for line in src.lines() {
        let line = line.trim();
        if let Some(v) = line.strip_prefix("version = ") {
            version = v.trim().parse::<u16>().ok();
        } else if let Some(v) = line.strip_prefix("fingerprint = ") {
            let v = v.trim().trim_matches('"');
            fp = u64::from_str_radix(v.trim_start_matches("0x"), 16).ok();
        }
    }
    Some((version?, fp?))
}

/// Extracts `pub const VERSION: u16 = N;` from the layout file.
pub fn layout_version(files: &[SourceFile]) -> Option<u16> {
    let f = files.iter().find(|f| f.rel == LAYOUT_FILE)?;
    let t = &f.tokens;
    for i in 0..t.len() {
        if t[i].is_ident("VERSION") && i + 1 < t.len() {
            // Scan a few tokens ahead for `= <num>`.
            for j in i + 1..(i + 8).min(t.len() - 1) {
                if t[j].is_punct('=') {
                    return t[j + 1].text.replace('_', "").parse::<u16>().ok();
                }
            }
        }
    }
    None
}

/// Yields `(type name, method names, line)` for each inherent impl block.
fn impl_blocks(f: &SourceFile) -> Vec<(String, Vec<String>, u32)> {
    let t = &f.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        if !t[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let impl_line = t[i].line;
        let mut j = i + 1;
        // Skip generic params `<...>`.
        if j < t.len() && t[j].is_punct('<') {
            let mut depth = 0i32;
            while j < t.len() {
                if t[j].is_punct('<') {
                    depth += 1;
                } else if t[j].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Collect the path up to `{` or `for`; `impl Trait for Type`
        // takes the segment after `for`.
        let mut ty = None;
        let mut after_for = false;
        while j < t.len() && !t[j].is_punct('{') && !t[j].is_punct(';') {
            if t[j].is_ident("for") {
                after_for = true;
                ty = None;
            } else if t[j].kind == crate::lexer::TokenKind::Ident
                && t[j].text != "where"
                && (ty.is_none() || !after_for)
            {
                ty = Some(t[j].text.clone());
            }
            j += 1;
        }
        let Some(ty) = ty else {
            i = j + 1;
            continue;
        };
        if j >= t.len() || !t[j].is_punct('{') {
            i = j;
            continue;
        }
        // Walk the body; collect `fn <name>` at depth 1.
        let mut depth = 0i32;
        let mut fns = Vec::new();
        while j < t.len() {
            if t[j].is_punct('{') {
                depth += 1;
            } else if t[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1
                && t[j].is_ident("fn")
                && t.get(j + 1).map(|n| n.kind) == Some(crate::lexer::TokenKind::Ident)
            {
                fns.push(t[j + 1].text.clone());
            }
            j += 1;
        }
        out.push((ty, fns, impl_line));
        i = j + 1;
    }
    out
}

/// Yields `(name, line)` of every `fn` in the file (any nesting).
fn free_fns(f: &SourceFile) -> Vec<(String, u32)> {
    let t = &f.tokens;
    let mut out = Vec::new();
    for i in 0..t.len().saturating_sub(1) {
        if t[i].is_ident("fn") && t[i + 1].kind == crate::lexer::TokenKind::Ident {
            out.push((t[i + 1].text.clone(), t[i].line));
        }
    }
    out
}

/// `records` and `record` register under the same key.
fn normalize(suffix: &str) -> String {
    suffix.strip_suffix('s').unwrap_or(suffix).to_string()
}
