//! Check `commit-phase`: raw device mutations are confined to the
//! typestate commit protocol.
//!
//! The objstore's crash consistency rests on the token chain `DirtyTxn →
//! JournalSealed → ExtentsDurable → Committed` (`crates/objstore/src/
//! txn.rs`): rustc rejects a *reordered* protocol, but nothing in the
//! type system stops a new code path from bypassing the tokens entirely
//! with a raw `submit_write`. This check closes that hole: in the crates
//! listed under `[commit-phase] crates`, the raw mutation entry points
//! of `BlockDev` — `submit_write`, `submit_write_timing`, `write_blocks`
//! and `repair_block` — may only be *called* inside the token-bearing
//! functions enumerated in `allow_in`:
//!
//! ```toml
//! [commit-phase]
//! crates = ["objstore", "core", "cli"]
//! allow_in = ["seal_journal", "flip_superblock", "write_extent"]
//! ```
//!
//! The device layer itself (`crates/hw`) is deliberately not listed: it
//! *implements* these operations. Everything above it must either drive
//! the typestate protocol or be consciously allowlisted in review.

use crate::config::Config;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

use super::Violation;

/// The raw `BlockDev` mutation entry points.
const FORBIDDEN: &[&str] = &[
    "submit_write",
    "submit_write_timing",
    "write_blocks",
    "repair_block",
];

/// Runs the commit-phase check.
pub fn check(files: &[SourceFile], cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    if cfg.commit_phase_crates.is_empty() {
        return out;
    }
    for f in files {
        let in_scope = f
            .crate_name()
            .is_some_and(|c| cfg.commit_phase_crates.iter().any(|n| n == c));
        if !in_scope || f.all_test {
            continue;
        }
        let t = &f.tokens;
        // Enclosing named functions: (name, body brace depth). Closures
        // inherit the lexically enclosing fn, which is the right scope —
        // the write still executes inside that function's body.
        let mut fns: Vec<(String, i32)> = Vec::new();
        let mut pending_fn: Option<String> = None;
        let mut depth: i32 = 0;
        let mut brackets: i32 = 0;
        for i in 0..t.len() {
            if t[i].is_punct('{') {
                depth += 1;
                if let Some(name) = pending_fn.take() {
                    fns.push((name, depth));
                }
                continue;
            }
            if t[i].is_punct('}') {
                depth -= 1;
                fns.retain(|&(_, d)| d <= depth);
                continue;
            }
            if t[i].is_punct('[') {
                brackets += 1;
                continue;
            }
            if t[i].is_punct(']') {
                brackets -= 1;
                continue;
            }
            // A top-level `;` before the body brace is a bodyless
            // signature (trait method declaration) — drop the pending
            // name. Bracket tracking keeps `[u8; 4]` in a signature
            // from clearing it.
            if t[i].is_punct(';') && brackets == 0 && pending_fn.is_some() {
                pending_fn = None;
                continue;
            }
            if t[i].is_ident("fn") {
                if let Some(name) = t.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                    pending_fn = Some(name.text.clone());
                }
                continue;
            }
            if f.is_test_line(t[i].line) {
                continue;
            }
            // `recv.forbidden(...)` method calls only: definitions are
            // preceded by `fn`, and the hw implementations live in an
            // unlisted crate.
            let is_call = i >= 2
                && t[i - 1].is_punct('.')
                && t.get(i + 1).is_some_and(|n| n.is_punct('('))
                && t[i].kind == TokenKind::Ident
                && FORBIDDEN.contains(&t[i].text.as_str());
            if !is_call {
                continue;
            }
            let enclosing = fns.last().map(|(n, _)| n.as_str()).unwrap_or("<module>");
            if cfg.commit_phase_allow.iter().any(|a| a == enclosing) {
                continue;
            }
            out.push(Violation {
                check: "commit-phase",
                path: f.rel.clone(),
                line: t[i].line,
                msg: format!(
                    "raw device write `{}` in `{enclosing}` bypasses the commit \
                     protocol; drive it through the typestate tokens in \
                     `objstore::txn` (seal_journal → extent_barrier → \
                     flip_superblock), or add `{enclosing}` to [commit-phase] \
                     allow_in in lint-allow.toml with review",
                    t[i].text
                ),
            });
        }
    }
    out
}
