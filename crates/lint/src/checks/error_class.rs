//! Check `error-class`: every `ErrorKind` is classified transient vs
//! permanent.
//!
//! The PR-1 retry layer decides per error whether to resubmit a request
//! or surface the failure. A new `ErrorKind` variant that never gets a
//! classification silently falls into whichever bucket a wildcard arm
//! picks — exactly the bug class this check removes. `aurora-hw` must
//! expose `fn classify(ErrorKind) -> FaultClass` whose match names every
//! variant explicitly and has no `_` arm, so the *compiler* rejects new
//! unclassified variants and this check rejects re-introduction of a
//! wildcard.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

use super::Violation;

/// Where the error enum lives.
const ERROR_FILE: &str = "crates/sim/src/error.rs";
/// Where the classification must live.
const CLASSIFY_FILE: &str = "crates/hw/src/retry.rs";

/// Runs the check.
pub fn check(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(error_file) = files.iter().find(|f| f.rel == ERROR_FILE) else {
        return out; // not this workspace slice (e.g. a fixture subset)
    };
    let variants = enum_variants(error_file, "ErrorKind");
    if variants.is_empty() {
        out.push(Violation {
            check: "error-class",
            path: ERROR_FILE.into(),
            line: 0,
            msg: "could not find `enum ErrorKind` variants".into(),
        });
        return out;
    }
    let Some(classify_file) = files.iter().find(|f| f.rel == CLASSIFY_FILE) else {
        out.push(Violation {
            check: "error-class",
            path: CLASSIFY_FILE.into(),
            line: 0,
            msg: "missing — `fn classify(ErrorKind) -> FaultClass` must live here".into(),
        });
        return out;
    };
    match classify_match(classify_file) {
        None => out.push(Violation {
            check: "error-class",
            path: CLASSIFY_FILE.into(),
            line: 0,
            msg: "no `fn classify` with a `match` found; the retry layer needs an \
                  exhaustive transient-vs-permanent classification"
                .into(),
        }),
        Some((mentioned, wildcard_line, fn_line)) => {
            for v in &variants {
                if !mentioned.contains(v) {
                    out.push(Violation {
                        check: "error-class",
                        path: CLASSIFY_FILE.into(),
                        line: fn_line,
                        msg: format!(
                            "`ErrorKind::{v}` is not classified in `classify`; add it to the \
                             Transient or Permanent arm"
                        ),
                    });
                }
            }
            if let Some(line) = wildcard_line {
                out.push(Violation {
                    check: "error-class",
                    path: CLASSIFY_FILE.into(),
                    line,
                    msg: "wildcard `_` arm in `classify` defeats compiler exhaustiveness — \
                          new ErrorKind variants would be classified silently"
                        .into(),
                });
            }
        }
    }
    out
}

/// Collects unit-variant names of `enum <name>` (attributes inside the
/// body are skipped).
fn enum_variants(f: &SourceFile, name: &str) -> Vec<String> {
    let t = &f.tokens;
    let mut i = 0usize;
    while i + 2 < t.len() {
        if t[i].is_ident("enum") && t[i + 1].is_ident(name) {
            // Find the opening brace.
            let mut j = i + 2;
            while j < t.len() && !t[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0i32;
            let mut vars = Vec::new();
            while j < t.len() {
                if t[j].is_punct('{') {
                    depth += 1;
                } else if t[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return vars;
                    }
                } else if t[j].is_punct('#') && t.get(j + 1).is_some_and(|n| n.is_punct('[')) {
                    // Skip attribute tokens.
                    let mut adepth = 0i32;
                    j += 1;
                    while j < t.len() {
                        if t[j].is_punct('[') {
                            adepth += 1;
                        } else if t[j].is_punct(']') {
                            adepth -= 1;
                            if adepth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                } else if depth == 1
                    && t[j].kind == TokenKind::Ident
                    && t.get(j + 1).is_some_and(|n| {
                        n.is_punct(',') || n.is_punct('}') || n.is_punct('(')
                    })
                {
                    vars.push(t[j].text.clone());
                    // Skip any payload `( ... )`.
                    if t[j + 1].is_punct('(') {
                        let mut pdepth = 0i32;
                        j += 1;
                        while j < t.len() {
                            if t[j].is_punct('(') {
                                pdepth += 1;
                            } else if t[j].is_punct(')') {
                                pdepth -= 1;
                                if pdepth == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                    }
                }
                j += 1;
            }
            return vars;
        }
        i += 1;
    }
    Vec::new()
}

/// Finds `fn classify`, returns (`ErrorKind::X` variants mentioned in its
/// body, line of a `_ =>` wildcard arm if any, line of the fn).
fn classify_match(f: &SourceFile) -> Option<(Vec<String>, Option<u32>, u32)> {
    let t = &f.tokens;
    let mut i = 0usize;
    while i + 1 < t.len() {
        if t[i].is_ident("fn") && t[i + 1].is_ident("classify") {
            let fn_line = t[i].line;
            // Find body braces.
            let mut j = i + 2;
            while j < t.len() && !t[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0i32;
            let mut mentioned = Vec::new();
            let mut wildcard = None;
            while j < t.len() {
                if t[j].is_punct('{') {
                    depth += 1;
                } else if t[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some((mentioned, wildcard, fn_line));
                    }
                } else if t[j].is_ident("ErrorKind")
                    && t.get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && t.get(j + 2).is_some_and(|n| n.is_punct(':'))
                {
                    if let Some(v) = t.get(j + 3) {
                        if v.kind == TokenKind::Ident {
                            mentioned.push(v.text.clone());
                        }
                    }
                } else if t[j].is_ident("_")
                    && t.get(j + 1).is_some_and(|n| n.is_punct('='))
                    && t.get(j + 2).is_some_and(|n| n.is_punct('>'))
                    && wildcard.is_none()
                {
                    wildcard = Some(t[j].line);
                }
                j += 1;
            }
            return Some((mentioned, wildcard, fn_line));
        }
        i += 1;
    }
    None
}
