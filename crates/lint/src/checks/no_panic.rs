//! Checks `no-panic` and `no-panic-index`: durability paths must return
//! typed errors, never abort.
//!
//! Aurora's pitch is that the OS guarantees persistence; a panic in the
//! flush or restore path tears the process down mid-commit and turns a
//! recoverable device fault into data loss. In the durability region —
//! `objstore`, `slsfs`, `hw`, and `core::{checkpoint,restore,serialize}`
//! — production code may not call `unwrap`/`expect`, may not use the
//! aborting macros, and unguarded index expressions are budgeted per
//! file with `count` ratchets in `lint-allow.toml` so they can only
//! decrease.

use crate::source::SourceFile;
use crate::lexer::TokenKind;

use super::Violation;

/// Crates entirely inside the durability region.
const DURABILITY_CRATES: &[&str] = &["objstore", "slsfs", "hw"];

/// Individual files inside the durability region.
const DURABILITY_FILES: &[&str] = &[
    "crates/core/src/checkpoint.rs",
    "crates/core/src/restore.rs",
    "crates/core/src/serialize.rs",
];

/// Macros that abort the process.
const ABORT_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may legitimately precede `[` (array literals, types) —
/// they lex as identifiers but do not make `[` an index expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "return", "in", "else", "break", "match", "loop", "move", "as", "const", "static", "mut",
    "ref", "dyn", "where", "yield",
];

/// True when `f` is in the durability region.
pub fn in_durability_region(f: &SourceFile) -> bool {
    if DURABILITY_FILES.contains(&f.rel.as_str()) {
        return true;
    }
    match f.crate_name() {
        Some(c) => DURABILITY_CRATES.contains(&c) && f.rel.contains("/src/"),
        None => false,
    }
}

/// Runs both checks over every file.
pub fn check(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        if !in_durability_region(f) {
            continue;
        }
        let t = &f.tokens;
        for i in 0..t.len() {
            if f.is_test_line(t[i].line) {
                continue;
            }
            // `.unwrap()` / `.expect(...)`.
            if i > 0
                && t[i - 1].is_punct('.')
                && (t[i].is_ident("unwrap") || t[i].is_ident("expect"))
                && t.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                out.push(Violation {
                    check: "no-panic",
                    path: f.rel.clone(),
                    line: t[i].line,
                    msg: format!(
                        "`.{}()` in a durability path aborts mid-commit; propagate a typed \
                         Error (e.g. `.ok_or_else(|| Error::internal(...))?`)",
                        t[i].text
                    ),
                });
            }
            // Aborting macros.
            if t[i].kind == TokenKind::Ident
                && ABORT_MACROS.contains(&t[i].text.as_str())
                && t.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(Violation {
                    check: "no-panic",
                    path: f.rel.clone(),
                    line: t[i].line,
                    msg: format!(
                        "`{}!` in a durability path aborts mid-commit; return a typed Error",
                        t[i].text
                    ),
                });
            }
            // Index expressions: `expr[...]` where `expr` ends with an
            // identifier, `)` or `]`. Type positions (`&[u8]`, `[u8; 4]`)
            // and macro brackets (`vec![..]`) are preceded by other
            // punctuation and do not fire.
            if t[i].is_punct('[')
                && i > 0
                && ((t[i - 1].kind == TokenKind::Ident
                    && !NON_INDEX_KEYWORDS.contains(&t[i - 1].text.as_str()))
                    || t[i - 1].is_punct(')')
                    || t[i - 1].is_punct(']'))
            {
                out.push(Violation {
                    check: "no-panic-index",
                    path: f.rel.clone(),
                    line: t[i].line,
                    msg: "index expression can panic on out-of-range; prefer `.get()` or keep \
                          it within this file's ratcheted `count` in lint-allow.toml"
                        .to_string(),
                });
            }
        }
    }
    out
}
