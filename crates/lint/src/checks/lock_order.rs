//! Checks `raw-lock`, `lock-site` and `lock-order`: every lock is a
//! registered `lockdep::OrderedMutex`/`OrderedRwLock`, and statically
//! visible nesting respects the declared global hierarchy.
//!
//! `lint-allow.toml` declares the hierarchy once:
//!
//! ```toml
//! [locks]
//! order = ["group_barrier", "group_table", "metrics"]   # outermost first
//! [locks.sites]
//! group_barrier = "group_barrier"
//! ```
//!
//! Three rules:
//!
//! - **raw-lock** — `Mutex`/`RwLock` may not appear in production code
//!   outside `aurora-sim`'s `lockdep` module: untracked locks are
//!   invisible to both this check and the runtime cycle detector.
//! - **lock-site** — every `X.lock()` receiver must be a registered site
//!   so the static order check knows its rank.
//! - **lock-order** — within a lexical scope, acquiring a lock whose
//!   rank is not strictly inner to every lock already held is flagged.
//!   Guards are assumed held to the end of their enclosing block, which
//!   is conservative in the right direction.
//!
//! The runtime tracker in `aurora_sim::lockdep` catches dynamic
//! orderings this scope-local analysis cannot see.

use std::collections::BTreeMap;

use crate::config::Config;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

use super::Violation;

/// The lockdep implementation itself (holds the one raw mutex guarding
/// the edge graph).
const LOCKDEP_IMPL: &str = "crates/sim/src/lockdep.rs";

/// Runs the three lock checks.
pub fn check(files: &[SourceFile], cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    // Rank index per rank name (outermost = 0).
    let rank_of: BTreeMap<&str, usize> = cfg
        .lock_order
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    for (site, rank) in &cfg.lock_sites {
        if !rank_of.contains_key(rank.as_str()) {
            out.push(Violation {
                check: "lock-site",
                path: "lint-allow.toml".into(),
                line: 0,
                msg: format!(
                    "site `{site}` maps to rank `{rank}` which is not in [locks] order"
                ),
            });
        }
    }
    for f in files {
        if f.rel == LOCKDEP_IMPL {
            continue;
        }
        let t = &f.tokens;
        // Active (still-held) acquisitions: (rank index, brace depth, site, line).
        let mut held: Vec<(usize, i32, String, u32)> = Vec::new();
        let mut depth: i32 = 0;
        for i in 0..t.len() {
            if t[i].is_punct('{') {
                depth += 1;
                continue;
            }
            if t[i].is_punct('}') {
                depth -= 1;
                held.retain(|&(_, d, _, _)| d <= depth);
                continue;
            }
            if f.is_test_line(t[i].line) {
                continue;
            }
            // Untracked lock types in production code.
            if (t[i].is_ident("Mutex") || t[i].is_ident("RwLock"))
                && !t.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(Violation {
                    check: "raw-lock",
                    path: f.rel.clone(),
                    line: t[i].line,
                    msg: format!(
                        "raw `{}` is invisible to lockdep; use \
                         `aurora_sim::lockdep::Ordered{}` with a declared rank",
                        t[i].text, t[i].text
                    ),
                });
            }
            // `X.lock()` / `X.read()` / `X.write()` acquisitions.
            let is_acquire = i >= 2
                && t[i - 1].is_punct('.')
                && t[i - 2].kind == TokenKind::Ident
                && t.get(i + 1).is_some_and(|n| n.is_punct('('))
                && (t[i].is_ident("lock") || t[i].is_ident("read") || t[i].is_ident("write"));
            if !is_acquire {
                continue;
            }
            let site = t[i - 2].text.clone();
            match cfg.lock_sites.get(&site) {
                None => {
                    // Only `.lock()` hard-requires registration —
                    // `.read()`/`.write()` are ubiquitous I/O names and
                    // only checked on receivers that are registered sites.
                    if t[i].is_ident("lock") {
                        out.push(Violation {
                            check: "lock-site",
                            path: f.rel.clone(),
                            line: t[i].line,
                            msg: format!(
                                "`{site}.lock()` is not a registered lock site; add it to \
                                 [locks.sites] in lint-allow.toml with its rank"
                            ),
                        });
                    }
                }
                Some(rank) => {
                    if let Some(&idx) = rank_of.get(rank.as_str()) {
                        for &(held_idx, _, ref held_site, held_line) in &held {
                            if held_idx >= idx {
                                out.push(Violation {
                                    check: "lock-order",
                                    path: f.rel.clone(),
                                    line: t[i].line,
                                    msg: format!(
                                        "`{site}` (rank `{}`) acquired while `{held_site}` \
                                         (rank `{}`, line {held_line}) is held — violates the \
                                         declared order in lint-allow.toml",
                                        cfg.lock_order[idx], cfg.lock_order[held_idx]
                                    ),
                                });
                            }
                        }
                        held.push((idx, depth, site.clone(), t[i].line));
                    }
                }
            }
        }
    }
    out
}
