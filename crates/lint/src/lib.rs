//! `aurora-lint`: the workspace invariant checker.
//!
//! Crash-consistency guarantees are only as strong as the weakest line
//! in the flush path. This crate enforces, as a tier-1 gate, the project
//! invariants that testing alone cannot hold:
//!
//! - [`checks::wall_clock`] — all time flows through `SimClock`;
//! - [`checks::no_panic`] — durability paths return typed errors;
//! - [`checks::format`] — every codec round-trips under test, and
//!   format-bearing edits are tied to `layout.rs::VERSION`;
//! - [`checks::lock_order`] — locks are rank-declared and statically
//!   ordered (the runtime half lives in `aurora_core::lockdep`);
//! - [`checks::error_class`] — every `ErrorKind` is explicitly
//!   transient or permanent;
//! - [`checks::commit_phase`] — raw device writes only inside the
//!   token-bearing functions of the typestate commit protocol.
//!
//! Suppressions live in `lint-allow.toml` at the workspace root; unused
//! entries are violations themselves, so the allowlist only ratchets
//! down. Run with `cargo run -p aurora-lint`; the same analysis runs
//! under `cargo test` via `tests/workspace_gate.rs`.

pub mod checks;
pub mod config;
pub mod lexer;
pub mod source;

use std::path::Path;

pub use checks::Violation;
pub use config::Config;
pub use source::{walk_workspace, SourceFile};

/// Runs every check over `files` (no suppression applied).
pub fn run_checks(files: &[SourceFile], cfg: &Config, root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    out.extend(checks::wall_clock::check(files));
    out.extend(checks::no_panic::check(files));
    out.extend(checks::format::check(files, cfg, root));
    out.extend(checks::lock_order::check(files, cfg));
    out.extend(checks::error_class::check(files));
    out.extend(checks::commit_phase::check(files, cfg));
    out.sort_by(|a, b| (&a.path, a.line, a.check).cmp(&(&b.path, b.line, b.check)));
    out
}

/// Applies the allowlist: returns the surviving violations, appending a
/// `stale-allow` violation for every entry that matched nothing (the
/// allowlist must shrink when the code improves).
pub fn apply_allowlist(cfg: &Config, violations: Vec<Violation>) -> Vec<Violation> {
    let mut used = vec![0u32; cfg.allows.len()];
    let mut kept = Vec::new();
    for v in violations {
        let slot = cfg.allows.iter().enumerate().find(|(i, a)| {
            a.check == v.check
                && a.path == v.path
                && a.line.map_or(true, |l| l == v.line)
                && used[*i] < a.count
        });
        match slot {
            Some((i, _)) => used[i] += 1,
            None => kept.push(v),
        }
    }
    for (i, a) in cfg.allows.iter().enumerate() {
        if used[i] == 0 {
            kept.push(Violation {
                check: "stale-allow",
                path: "lint-allow.toml".into(),
                line: 0,
                msg: format!(
                    "[[allow]] for `{}` in `{}` matched nothing — remove it",
                    a.check, a.path
                ),
            });
        } else if used[i] < a.count && a.line.is_none() {
            kept.push(Violation {
                check: "stale-allow",
                path: "lint-allow.toml".into(),
                line: 0,
                msg: format!(
                    "[[allow]] for `{}` in `{}` budgets {} but only {} matched — \
                     ratchet `count` down",
                    a.check, a.path, a.count, used[i]
                ),
            });
        }
    }
    kept
}

/// Full pipeline: load config, walk, check, suppress. `Err` carries
/// environment problems (unreadable tree, bad config) as opposed to
/// violations.
pub fn analyze(root: &Path) -> Result<Vec<Violation>, String> {
    let cfg_src = std::fs::read_to_string(root.join("lint-allow.toml"))
        .map_err(|e| format!("cannot read lint-allow.toml: {e}"))?;
    let cfg = Config::parse(&cfg_src)?;
    let files = walk_workspace(root).map_err(|e| format!("walk failed: {e}"))?;
    Ok(apply_allowlist(&cfg, run_checks(&files, &cfg, root)))
}

/// Recomputes and writes `format.lock` (the `--bless-format` action).
pub fn bless_format(root: &Path) -> Result<String, String> {
    let cfg_src = std::fs::read_to_string(root.join("lint-allow.toml"))
        .map_err(|e| format!("cannot read lint-allow.toml: {e}"))?;
    let cfg = Config::parse(&cfg_src)?;
    let files = walk_workspace(root).map_err(|e| format!("walk failed: {e}"))?;
    let fp = checks::format::fingerprint(&files, &cfg);
    let version = checks::format::layout_version(&files)
        .ok_or_else(|| "cannot find layout.rs VERSION".to_string())?;
    let path = root.join(checks::format::LOCK_PATH);
    std::fs::write(&path, checks::format::render_lock(version, fp))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(format!(
        "blessed format fingerprint {fp:#018x} under VERSION {version}"
    ))
}
