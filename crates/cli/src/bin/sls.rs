//! The `sls` command-line tool.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match aurora_cli::run(&args.iter().map(String::as_str).collect::<Vec<_>>()) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("sls: {e}");
            std::process::exit(1);
        }
    }
}
