//! The `sls` command-line tool (Table 1).
//!
//! `sls` operates on a *world*: a directory whose `disk.img` file backs
//! the primary object store (with real page bytes), so applications
//! genuinely persist across invocations of the binary — each command
//! boots a fresh simulated machine, restores state from the store,
//! operates, and checkpoints back.
//!
//! | Paper command    | Here                                            |
//! |------------------|-------------------------------------------------|
//! | `sls persist`    | start a demo app and register it for persistence|
//! | `sls attach`     | attach an additional file-backed backend        |
//! | `sls detach`     | detach a backend                                |
//! | `sls checkpoint` | take a (named) checkpoint                       |
//! | `sls restore`    | restore an application and show its state       |
//! | `sls ps`         | list applications and their checkpoints         |
//! | `sls send`       | export a checkpoint to a file                   |
//! | `sls recv`       | import a checkpoint from a file                 |
//!
//! Extra commands: `init`, `run` (advance an app and checkpoint), `info`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use aurora_apps::hello::HelloApp;
use aurora_apps::kv::{KvOp, KvServer, PersistMode};
use aurora_apps::pool::TenantFleet;
use aurora_core::fleet::TenantHealth;
use aurora_core::restore::RestoreMode;
use aurora_core::serialize::ManifestRec;
use aurora_core::{BackendKind, GroupId, Host, ReplConfig};
use aurora_hw::file_dev::FileDev;
use aurora_hw::{BlockDev, FaultPlan, LinkFaultRates, MirrorDev, ModelDev, ReplicaState};
use aurora_objstore::{CkptId, ObjectStore, StoreConfig};
use aurora_posix::Pid;
use aurora_sim::error::{Error, Result};
use aurora_sim::SimClock;

/// Default world directory.
pub const DEFAULT_WORLD: &str = "./aurora-world";

/// Default world size in blocks (256 MiB).
const DEFAULT_BLOCKS: u64 = 64 * 1024;

const HELP: &str = "\
sls — the Aurora single level store control tool

USAGE: sls [--world DIR] <command> [options]

COMMANDS (Table 1 of the paper):
  persist <name> --app hello|kv   Add an application to a persistence group
  attach <name>                   Attach an additional (file-backed) backend
  detach <name> --index N         Detach a backend
  checkpoint <name> [--tag TAG]   Checkpoint an application
  restore <name> [--tag TAG]      Restore an application from an image
  ps                              List applications in Aurora
  send <name> --out FILE          Send an application (export a checkpoint)
  recv --in FILE                  Receive an application (import a checkpoint)

WORLD MANAGEMENT:
  init [--blocks N] [--mirror R]  Create a new world (R-way mirrored when R >= 2)
  run <name> [--steps N]          Advance an application, then checkpoint it
  info                            Show object-store statistics
  scrub                           Verify every checkpoint against its content
                                  hashes and report device health
  mirror [--kill I] [--revive I]  Show replica states; detach or readmit one
  resilver                        Rebuild rebuilding replicas from the live store

FLEET:
  fleet [--tenants N] [--rounds R] [--healthy]
                                  Run an in-memory fleet demo on isolated
                                  per-tenant stores. Tenant 0 is poisoned
                                  with device latency spikes: watch it miss
                                  deadlines, quarantine, and re-admit while
                                  the rest of the fleet stays on schedule
                                  (--healthy leaves every tenant clean)

REPLICATION (hot standby):
  standby <name> [--epochs N] [--steps S] [--faults clean|lossy|hostile]
                                  Advance an app N epochs, shipping every
                                  checkpoint to the standby image over a
                                  fault-modeled link (full sync, then deltas)
  promote [--verify-only]         Fail over to the standby image: verify it
                                  boots and restores, then make it the primary
                                  (the old disk.img is kept as a backup)
";

/// Runs one `sls` invocation; returns what should be printed.
pub fn run(args: &[&str]) -> Result<String> {
    let mut world = PathBuf::from(DEFAULT_WORLD);
    let mut rest: Vec<&str> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(&a) = it.next() {
        if a == "--world" {
            let dir = it
                .next()
                .ok_or_else(|| Error::invalid("--world needs a directory"))?;
            world = PathBuf::from(dir);
        } else {
            rest.push(a);
        }
    }
    let Some(&cmd) = rest.first() else {
        return Ok(HELP.to_string());
    };
    let opts = &rest[1..];
    match cmd {
        "--help" | "-h" | "help" => Ok(HELP.to_string()),
        "init" => cmd_init(&world, opts),
        "persist" => cmd_persist(&world, opts),
        "run" => cmd_run(&world, opts),
        "checkpoint" => cmd_checkpoint(&world, opts),
        "restore" => cmd_restore(&world, opts),
        "ps" => cmd_ps(&world),
        "attach" => cmd_attach(&world, opts),
        "detach" => cmd_detach(&world, opts),
        "send" => cmd_send(&world, opts),
        "recv" => cmd_recv(&world, opts),
        "info" => cmd_info(&world),
        "fleet" => cmd_fleet(opts),
        "scrub" => cmd_scrub(&world),
        "mirror" => cmd_mirror(&world, opts),
        "resilver" => cmd_resilver(&world),
        "standby" => cmd_standby(&world, opts),
        "promote" => cmd_promote(&world, opts),
        other => Err(Error::invalid(format!("unknown command {other}; try --help"))),
    }
}

fn flag_value<'a>(opts: &[&'a str], flag: &str) -> Option<&'a str> {
    opts.iter()
        .position(|&o| o == flag)
        .and_then(|i| opts.get(i + 1).copied())
}

fn disk_path(world: &Path) -> PathBuf {
    world.join("disk.img")
}

/// Backing file of mirror replica `i` (replica 0 is the plain disk).
fn replica_path(world: &Path, i: usize) -> PathBuf {
    if i == 0 {
        disk_path(world)
    } else {
        world.join(format!("disk.{i}.img"))
    }
}

fn mirror_meta_path(world: &Path) -> PathBuf {
    world.join("mirror.meta")
}

/// Reads the persisted replica states of a mirrored world: one state
/// word per replica, in replica order. `None` for unmirrored worlds.
fn load_mirror_states(world: &Path) -> Result<Option<Vec<ReplicaState>>> {
    let path = mirror_meta_path(world);
    if !path.exists() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path).map_err(|e| Error::io(e.to_string()))?;
    let mut states = Vec::new();
    for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
        states.push(
            ReplicaState::parse(line)
                .ok_or_else(|| Error::corrupt(format!("mirror.meta: bad replica state {line:?}")))?,
        );
    }
    if states.len() < 2 {
        return Err(Error::corrupt("mirror.meta lists fewer than two replicas"));
    }
    Ok(Some(states))
}

/// Persists the current replica states so the next invocation reopens
/// the mirror in the same shape: a detached replica stays detached, and
/// a crash mid-resilver leaves the target rebuilding (never trusted for
/// reads) until `sls resilver` finishes the copy.
fn save_mirror_states(world: &Path, host: &Host) -> Result<()> {
    let store = host.sls.primary.borrow();
    let dev = store.device();
    let Some(m) = dev.as_mirror() else {
        return Ok(());
    };
    let text: String = (0..m.width())
        .map(|i| {
            format!(
                "{}\n",
                m.replica_state(i).unwrap_or(ReplicaState::Active).as_str()
            )
        })
        .collect();
    std::fs::write(mirror_meta_path(world), text).map_err(|e| Error::io(e.to_string()))
}

fn store_config() -> StoreConfig {
    StoreConfig {
        journal_blocks: 2048,
        dedup: true,
        materialize_data: true,
        ..StoreConfig::default()
    }
}

fn open_host(world: &Path) -> Result<Host> {
    let path = disk_path(world);
    if !path.exists() {
        return Err(Error::not_found(format!(
            "no world at {} (run `sls init` first)",
            world.display()
        )));
    }
    let clock = SimClock::new();
    let blocks = std::fs::metadata(&path)
        .map_err(|e| Error::io(e.to_string()))?
        .len()
        / 4096;
    if let Some(states) = load_mirror_states(world)? {
        let mut members: Vec<Box<dyn BlockDev>> = Vec::with_capacity(states.len());
        for i in 0..states.len() {
            members.push(Box::new(FileDev::open(
                clock.clone(),
                &replica_path(world, i),
                blocks,
            )?));
        }
        let mut mirror = MirrorDev::new(members)?;
        for (i, &state) in states.iter().enumerate() {
            mirror.restore_replica_state(i, state)?;
        }
        return Host::boot_existing("sls-world", Box::new(mirror), store_config());
    }
    let dev = Box::new(FileDev::open(clock, &path, blocks)?);
    Host::boot_existing("sls-world", dev, store_config())
}

fn cmd_init(world: &Path, opts: &[&str]) -> Result<String> {
    let blocks: u64 = flag_value(opts, "--blocks")
        .map(|v| v.parse().map_err(|_| Error::invalid("bad --blocks")))
        .transpose()?
        .unwrap_or(DEFAULT_BLOCKS);
    let mirror: usize = flag_value(opts, "--mirror")
        .map(|v| v.parse().map_err(|_| Error::invalid("bad --mirror")))
        .transpose()?
        .unwrap_or(1);
    if mirror == 0 || mirror > 8 {
        return Err(Error::invalid("--mirror takes a replica count from 1 to 8"));
    }
    std::fs::create_dir_all(world).map_err(|e| Error::io(e.to_string()))?;
    let path = disk_path(world);
    if path.exists() {
        return Err(Error::already_exists(format!("{}", path.display())));
    }
    let clock = SimClock::new();
    if mirror >= 2 {
        let mut members: Vec<Box<dyn BlockDev>> = Vec::with_capacity(mirror);
        for i in 0..mirror {
            members.push(Box::new(FileDev::open(
                clock.clone(),
                &replica_path(world, i),
                blocks,
            )?));
        }
        let host = Host::boot_mirrored("sls-world", members, store_config())?;
        save_mirror_states(world, &host)?;
        drop(host);
        return Ok(format!(
            "initialized world at {} ({} blocks, {mirror}-way mirror)\n",
            world.display(),
            blocks,
        ));
    }
    let dev = Box::new(FileDev::open(clock, &path, blocks)?);
    let host = Host::boot("sls-world", dev, store_config())?;
    drop(host);
    Ok(format!(
        "initialized world at {} ({} blocks)\n",
        world.display(),
        blocks
    ))
}

/// Finds the newest checkpoint whose manifest carries `name`.
fn find_app(host: &mut Host, name: &str) -> Result<(CkptId, ManifestRec)> {
    let store = host.sls.primary.clone();
    let st = store.borrow_mut();
    let ids: Vec<CkptId> = st.checkpoints().iter().map(|c| c.id).collect();
    for id in ids.into_iter().rev() {
        // Only the manifest this checkpoint's group committed (nearest in
        // the chain) — restoring at `id` resurrects that group.
        if let Some(key) = st.nearest_blob_key(id, "/manifest") {
            if let Some(blob) = st.get_blob(id, &key)? {
                if let Ok(m) = ManifestRec::decode(&blob) {
                    if m.name == name {
                        return Ok((id, m));
                    }
                }
            }
        }
    }
    Err(Error::not_found(format!("application {name}")))
}

/// Starts a demo app by kind; returns its root pid.
fn start_app(host: &mut Host, app: &str) -> Result<Pid> {
    match app {
        "hello" => Ok(HelloApp::start(host)?.pid),
        "kv" => Ok(KvServer::start(host, PersistMode::None, 8 << 20, 1024)?.pid),
        other => Err(Error::invalid(format!("unknown app {other} (hello|kv)"))),
    }
}

/// Describes an app process's state for display.
fn describe(host: &mut Host, pid: Pid) -> String {
    let name = host
        .kernel
        .proc_ref(pid)
        .map(|p| p.name.clone())
        .unwrap_or_default();
    match name.as_str() {
        "hello" => match HelloApp::attach(host, pid) {
            Ok(app) => app
                .greeting(host)
                .map(|g| format!("greeting: {g:?}"))
                .unwrap_or_else(|e| format!("unreadable: {e}")),
            Err(e) => format!("unreadable: {e}"),
        },
        "kv-server" => match KvServer::attach(host, pid, PersistMode::None) {
            Ok(server) => {
                let len = server.len(host).unwrap_or(0);
                format!("keys: {len}, ops executed: {}", server.ops_executed(host))
            }
            Err(e) => format!("unreadable: {e}"),
        },
        other => format!("process {other}"),
    }
}

/// Advances an app deterministically by `steps`.
fn advance(host: &mut Host, pid: Pid, steps: u64) -> Result<String> {
    let name = host.kernel.proc_ref(pid)?.name.clone();
    match name.as_str() {
        "hello" => {
            let app = HelloApp::attach(host, pid)?;
            let mut last = 0;
            for _ in 0..steps {
                last = app.step(host)?;
            }
            Ok(format!("stepped to #{last}"))
        }
        "kv-server" => {
            let mut server = KvServer::attach(host, pid, PersistMode::None)?;
            let base = server.ops_executed(host);
            for i in 0..steps {
                let n = base + i;
                server.exec(
                    host,
                    &KvOp::Set(
                        format!("auto:{}", n % 512).into_bytes(),
                        format!("value at op {n}").into_bytes(),
                    ),
                )?;
            }
            Ok(format!("executed {steps} mutations"))
        }
        other => Err(Error::unsupported(format!("cannot advance {other}"))),
    }
}

/// Restores the newest image of `name` into the booted kernel and
/// re-registers it as a persistence group (with any extra backends).
fn revive(host: &mut Host, world: &Path, name: &str) -> Result<(GroupId, Pid)> {
    let (ckpt, manifest) = find_app(host, name)?;
    let store = host.sls.primary.clone();
    let r = host.restore(&store, ckpt, RestoreMode::Eager)?;
    let pid = r
        .root_pid()
        .ok_or_else(|| Error::bad_image("image restored no process"))?;
    let gid = host.persist(name, pid)?;
    // Remember the incarnation this revival supersedes; pruned after the
    // new group's first checkpoint lands (see the callers).
    host.sls.group_mut(gid)?.supersedes = Some(manifest.gid);
    for path in backend_list(world, name)? {
        let clock = host.clock.clone();
        let blocks = std::fs::metadata(&path)
            .map_err(|e| Error::io(e.to_string()))?
            .len()
            / 4096;
        let dev = Box::new(FileDev::open(clock, &path, blocks)?);
        let store = ObjectStore::open(dev, store_config())
            .or_else(|_| {
                let clock = host.clock.clone();
                let dev = Box::new(FileDev::open(clock, &path, blocks)?);
                ObjectStore::format(dev, store_config())
            })?;
        host.attach_backend(
            gid,
            BackendKind::Disk,
            std::rc::Rc::new(std::cell::RefCell::new(store)),
        )?;
    }
    Ok((gid, pid))
}

fn backends_file(world: &Path, name: &str) -> PathBuf {
    world.join(format!("backends-{name}.txt"))
}

fn backend_list(world: &Path, name: &str) -> Result<Vec<PathBuf>> {
    let path = backends_file(world, name);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| Error::io(e.to_string()))?;
    Ok(text.lines().map(PathBuf::from).collect())
}

fn cmd_persist(world: &Path, opts: &[&str]) -> Result<String> {
    let name = opts
        .first()
        .filter(|n| !n.starts_with("--"))
        .ok_or_else(|| Error::invalid("persist needs a name"))?;
    let app = flag_value(opts, "--app").unwrap_or("hello");
    let mut host = open_host(world)?;
    if find_app(&mut host, name).is_ok() {
        return Err(Error::already_exists(format!("application {name}")));
    }
    let pid = start_app(&mut host, app)?;
    let gid = host.persist(name, pid)?;
    let bd = host.checkpoint(gid, true, Some(name))?;
    host.wait_durable(gid)?;
    Ok(format!(
        "persisted {name} (app {app}, pid {}): checkpoint {} durable, stop time {}\n",
        pid.0,
        bd.ckpt.map(|c| c.0).unwrap_or(0),
        bd.stop_time,
    ))
}

fn cmd_run(world: &Path, opts: &[&str]) -> Result<String> {
    let name = opts
        .first()
        .filter(|n| !n.starts_with("--"))
        .ok_or_else(|| Error::invalid("run needs a name"))?;
    let steps: u64 = flag_value(opts, "--steps")
        .map(|v| v.parse().map_err(|_| Error::invalid("bad --steps")))
        .transpose()?
        .unwrap_or(10);
    let mut host = open_host(world)?;
    let (gid, pid) = revive(&mut host, world, name)?;
    let report = advance(&mut host, pid, steps)?;
    let bd = host.checkpoint(gid, false, None)?;
    host.wait_durable(gid)?;
    if let Some(old) = host.sls.group_ref(gid)?.supersedes {
        host.prune_incarnation(old)?;
    }
    Ok(format!(
        "{name}: {report}; checkpoint {} ({} pages, stop {}){}\n  state: {}\n",
        bd.ckpt.map(|c| c.0).unwrap_or(0),
        bd.pages,
        bd.stop_time,
        outcome_note(&bd),
        describe(&mut host, pid),
    ))
}

/// Formats a warning suffix when a checkpoint did not commit cleanly.
fn outcome_note(bd: &aurora_core::CheckpointBreakdown) -> String {
    if bd.outcome == aurora_core::CheckpointOutcome::Committed {
        return String::new();
    }
    format!(
        " [{}{}]",
        bd.outcome.as_str(),
        bd.fault
            .as_deref()
            .map(|f| format!(": {f}"))
            .unwrap_or_default()
    )
}

fn cmd_checkpoint(world: &Path, opts: &[&str]) -> Result<String> {
    let name = opts
        .first()
        .filter(|n| !n.starts_with("--"))
        .ok_or_else(|| Error::invalid("checkpoint needs a name"))?;
    let tag = flag_value(opts, "--tag");
    let mut host = open_host(world)?;
    let (gid, _pid) = revive(&mut host, world, name)?;
    let bd = host.checkpoint(gid, false, tag)?;
    host.wait_durable(gid)?;
    if let Some(old) = host.sls.group_ref(gid)?.supersedes {
        host.prune_incarnation(old)?;
    }
    Ok(format!(
        "checkpointed {name}: id {}{}, metadata {}, stop {}{}\n",
        bd.ckpt.map(|c| c.0).unwrap_or(0),
        tag.map(|t| format!(" (tag {t})")).unwrap_or_default(),
        bd.metadata_copy,
        bd.stop_time,
        outcome_note(&bd),
    ))
}

fn cmd_restore(world: &Path, opts: &[&str]) -> Result<String> {
    let name = opts
        .first()
        .filter(|n| !n.starts_with("--"))
        .ok_or_else(|| Error::invalid("restore needs a name"))?;
    let mut host = open_host(world)?;
    let ckpt = match flag_value(opts, "--tag") {
        Some(tag) => host
            .sls
            .primary
            .borrow()
            .checkpoint_by_name(tag)
            .map(|c| c.id)
            .ok_or_else(|| Error::not_found(format!("tag {tag}")))?,
        None => find_app(&mut host, name)?.0,
    };
    let store = host.sls.primary.clone();
    let r = host.restore(&store, ckpt, RestoreMode::Eager)?;
    let pid = r
        .root_pid()
        .ok_or_else(|| Error::bad_image("image restored no process"))?;
    Ok(format!(
        "restored {name} from checkpoint {} in {} (read {}, memory {}, metadata {})\n  state: {}\n",
        ckpt.0,
        r.total,
        r.objstore_read,
        r.memory_state,
        r.metadata_state,
        describe(&mut host, pid),
    ))
}

fn cmd_ps(world: &Path) -> Result<String> {
    let host = open_host(world)?;
    let store = host.sls.primary.clone();
    let mut out = String::new();
    writeln!(out, "{:<12} {:<8} {:<10} OBJECTS", "NAME", "CKPT", "TAG").ok();
    let mut seen = std::collections::BTreeSet::new();
    let infos: Vec<(CkptId, Option<String>)> = {
        let st = store.borrow();
        st.checkpoints()
            .iter()
            .map(|c| (c.id, c.name.clone()))
            .collect()
    };
    for (id, tag) in infos {
        let st = store.borrow_mut();
        let keys = st.blob_keys_at(id, "g");
        for key in keys.into_iter().filter(|k| k.ends_with("/manifest")) {
            if let Some(blob) = st.get_blob(id, &key)? {
                if let Ok(m) = ManifestRec::decode(&blob) {
                    if seen.insert((m.name.clone(), id.0)) {
                        writeln!(
                            out,
                            "{:<12} {:<8} {:<10} {} procs, {} vmos, {} files",
                            m.name,
                            id.0,
                            tag.clone().unwrap_or_default(),
                            m.pids.len(),
                            m.vmos.len(),
                            m.files.len(),
                        )
                        .ok();
                    }
                }
            }
        }
    }
    Ok(out)
}

fn cmd_attach(world: &Path, opts: &[&str]) -> Result<String> {
    let name = opts
        .first()
        .filter(|n| !n.starts_with("--"))
        .ok_or_else(|| Error::invalid("attach needs a name"))?;
    let mut host = open_host(world)?;
    find_app(&mut host, name)?;
    let existing = backend_list(world, name)?;
    let path = world.join(format!("backend-{name}-{}.img", existing.len() + 1));
    // Pre-create and format the backend image.
    {
        let clock = SimClock::new();
        let dev = Box::new(FileDev::open(clock, &path, DEFAULT_BLOCKS)?);
        ObjectStore::format(dev, store_config())?;
    }
    let mut list = existing;
    list.push(path.clone());
    let text: String = list
        .iter()
        .map(|p| format!("{}\n", p.display()))
        .collect();
    std::fs::write(backends_file(world, name), text).map_err(|e| Error::io(e.to_string()))?;
    Ok(format!(
        "attached backend {} to {name} ({} total); the next checkpoint replicates to it\n",
        path.display(),
        list.len() + 1,
    ))
}

fn cmd_detach(world: &Path, opts: &[&str]) -> Result<String> {
    let name = opts
        .first()
        .filter(|n| !n.starts_with("--"))
        .ok_or_else(|| Error::invalid("detach needs a name"))?;
    let index: usize = flag_value(opts, "--index")
        .ok_or_else(|| Error::invalid("detach needs --index"))?
        .parse()
        .map_err(|_| Error::invalid("bad --index"))?;
    let mut list = backend_list(world, name)?;
    if index == 0 || index > list.len() {
        return Err(Error::not_found(format!(
            "backend {index} of {name} ({} attached)",
            list.len()
        )));
    }
    let removed = list.remove(index - 1);
    let text: String = list
        .iter()
        .map(|p| format!("{}\n", p.display()))
        .collect();
    std::fs::write(backends_file(world, name), text).map_err(|e| Error::io(e.to_string()))?;
    Ok(format!("detached backend {}\n", removed.display()))
}

fn cmd_send(world: &Path, opts: &[&str]) -> Result<String> {
    let name = opts
        .first()
        .filter(|n| !n.starts_with("--"))
        .ok_or_else(|| Error::invalid("send needs a name"))?;
    let out_path = flag_value(opts, "--out").ok_or_else(|| Error::invalid("send needs --out"))?;
    let mut host = open_host(world)?;
    let (ckpt, manifest) = find_app(&mut host, name)?;
    // Ship exactly this application's namespace (its group's objects and
    // records), not the world's whole history.
    let ns = (0x100 + manifest.gid as u64) << 48;
    let prefix = format!("g{}/", manifest.gid);
    let stream = host.sls.primary.borrow_mut().export_checkpoint_filtered(
        ckpt,
        |oid| oid & !0xFFFF_FFFF_FFFF == ns,
        |key| key.starts_with(&prefix),
    )?;
    // Seal the stream in the image envelope: magic, version, and a
    // whole-image digest, so a truncated or bit-flipped file fails
    // `sls recv` loudly instead of importing garbage.
    let image = aurora_core::migrate::encode_image(&stream);
    std::fs::write(out_path, &image).map_err(|e| Error::io(e.to_string()))?;
    Ok(format!(
        "sent {name} (checkpoint {}) to {out_path}: {} bytes\n",
        ckpt.0,
        image.len()
    ))
}

fn cmd_recv(world: &Path, opts: &[&str]) -> Result<String> {
    let in_path = flag_value(opts, "--in").ok_or_else(|| Error::invalid("recv needs --in"))?;
    let image = std::fs::read(in_path).map_err(|e| Error::io(e.to_string()))?;
    let mut host = open_host(world)?;
    let ckpt = host.recv_checkpoint(&image)?;
    Ok(format!(
        "received checkpoint {} from {in_path} ({} bytes); `sls ps` to inspect, `sls restore` to run\n",
        ckpt.0,
        image.len()
    ))
}

/// `sls mirror`: show per-replica states and stats; `--kill I` detaches
/// a replica (simulating its death), `--revive I` powers it back on as
/// rebuilding — it receives new writes but serves no reads until
/// `sls resilver` copies it back in and promotes it.
fn cmd_mirror(world: &Path, opts: &[&str]) -> Result<String> {
    let parse_idx = |flag: &str| -> Result<Option<usize>> {
        flag_value(opts, flag)
            .map(|v| v.parse().map_err(|_| Error::invalid(format!("bad {flag}"))))
            .transpose()
    };
    let kill = parse_idx("--kill")?;
    let revive = parse_idx("--revive")?;
    let host = open_host(world)?;
    let mut out = String::new();
    {
        let mut store = host.sls.primary.borrow_mut();
        let m = store.device_mut().as_mirror_mut().ok_or_else(|| {
            Error::unsupported("this world is not mirrored (create one with `sls init --mirror N`)")
        })?;
        if let Some(i) = kill {
            m.kill_replica(i)?;
            writeln!(out, "killed replica {i}: detached; writes continue degraded").ok();
        }
        if let Some(i) = revive {
            m.revive_replica(i)?;
            writeln!(
                out,
                "revived replica {i}: rebuilding; run `sls resilver` to copy it back in"
            )
            .ok();
        }
    }
    save_mirror_states(world, &host)?;
    let store = host.sls.primary.borrow();
    let dev = store.device();
    let Some(m) = dev.as_mirror() else {
        return Err(Error::unsupported("this world is not mirrored"));
    };
    writeln!(
        out,
        "mirror: {} of {} replicas active{}",
        m.active_width(),
        m.width(),
        if m.is_degraded() { " (DEGRADED)" } else { "" },
    )
    .ok();
    for i in 0..m.width() {
        writeln!(
            out,
            "  replica {i}: {:<10} {} ({})",
            m.replica_state(i).unwrap_or(ReplicaState::Active).as_str(),
            m.replica_name(i).unwrap_or_default(),
            m.replica_health(i)
                .unwrap_or(aurora_hw::DevHealth::Healthy)
                .as_str(),
        )
        .ok();
    }
    let ms = m.mirror_stats();
    writeln!(
        out,
        "  stats: {} failovers, {} read repairs, {} degraded writes, {} blocks resilvered in {} extents",
        ms.failovers, ms.read_repairs, ms.degraded_writes, ms.resilvered_blocks, ms.resilvered_extents,
    )
    .ok();
    Ok(out)
}

/// `sls resilver`: copy the live metadata region and every allocated
/// extent from the surviving replicas onto any rebuilding replica, then
/// promote it to active. Safe to re-run after a crash: the target stays
/// rebuilding (never read) until the copy completes.
fn cmd_resilver(world: &Path) -> Result<String> {
    let mut host = open_host(world)?;
    if host.sls.primary.borrow().device().as_mirror().is_none() {
        return Err(Error::unsupported(
            "this world is not mirrored (create one with `sls init --mirror N`)",
        ));
    }
    let report = host.resilver()?;
    save_mirror_states(world, &host)?;
    if report.replicas_promoted == 0 {
        return Ok(
            "nothing to resilver: no replica is rebuilding (revive one with `sls mirror --revive I`)\n"
                .to_string(),
        );
    }
    Ok(format!(
        "resilvered {} blocks in {} extent batches; {} replica(s) promoted to active\n",
        report.blocks, report.extents, report.replicas_promoted,
    ))
}

fn standby_path(world: &Path) -> PathBuf {
    world.join("standby.img")
}

/// Finds the newest checkpoint carrying any application manifest.
fn newest_app(host: &mut Host) -> Result<(CkptId, ManifestRec)> {
    let store = host.sls.primary.clone();
    let st = store.borrow_mut();
    let ids: Vec<CkptId> = st.checkpoints().iter().map(|c| c.id).collect();
    for id in ids.into_iter().rev() {
        let keys = st.blob_keys_at(id, "g");
        for key in keys.into_iter().filter(|k| k.ends_with("/manifest")) {
            if let Some(blob) = st.get_blob(id, &key)? {
                if let Ok(m) = ManifestRec::decode(&blob) {
                    return Ok((id, m));
                }
            }
        }
    }
    Err(Error::not_found("no application image in the standby"))
}

/// `sls standby`: advance an application for several checkpoint epochs,
/// shipping each committed checkpoint to `standby.img` over a
/// fault-modeled link. Every run re-syncs from scratch — a full export
/// first, then per-epoch deltas — so the image always ends at the acked
/// watermark regardless of what a previous run left behind.
fn cmd_standby(world: &Path, opts: &[&str]) -> Result<String> {
    let name = opts
        .first()
        .filter(|n| !n.starts_with("--"))
        .ok_or_else(|| Error::invalid("standby needs an application name"))?;
    let epochs: u64 = flag_value(opts, "--epochs")
        .map(|v| v.parse().map_err(|_| Error::invalid("bad --epochs")))
        .transpose()?
        .unwrap_or(3);
    let steps: u64 = flag_value(opts, "--steps")
        .map(|v| v.parse().map_err(|_| Error::invalid("bad --steps")))
        .transpose()?
        .unwrap_or(10);
    let rates = match flag_value(opts, "--faults").unwrap_or("lossy") {
        "clean" => LinkFaultRates::clean(),
        "lossy" => LinkFaultRates::lossy(),
        "hostile" => LinkFaultRates::hostile(),
        other => {
            return Err(Error::invalid(format!(
                "unknown fault level {other} (clean|lossy|hostile)"
            )))
        }
    };
    let mut host = open_host(world)?;
    let (gid, pid) = revive(&mut host, world, name)?;

    // A fresh standby image sized like the primary; the session starts
    // with a full sync, so stale contents would only waste space.
    let spath = standby_path(world);
    if spath.exists() {
        std::fs::remove_file(&spath).map_err(|e| Error::io(e.to_string()))?;
    }
    let blocks = std::fs::metadata(disk_path(world))
        .map_err(|e| Error::io(e.to_string()))?
        .len()
        / 4096;
    let sdev = Box::new(FileDev::open(host.clock.clone(), &spath, blocks)?);
    let sstore = ObjectStore::format(sdev, store_config())?;
    host.attach_standby_store(
        ReplConfig {
            rates,
            ..ReplConfig::default()
        },
        std::rc::Rc::new(std::cell::RefCell::new(sstore)),
    )?;

    let mut out = String::new();
    for e in 0..epochs {
        let report = advance(&mut host, pid, steps)?;
        let bd = host.checkpoint(gid, false, None)?;
        host.wait_durable(gid)?;
        // Drain the link between epochs: deliveries land, acks return,
        // lost frames get retransmitted, the watermark advances.
        if let Some(r) = host.replication_mut() {
            r.run_until_idle(1_000_000);
        }
        writeln!(
            out,
            "  epoch {}: {report}; checkpoint {}{}",
            e + 1,
            bd.ckpt.map(|c| c.0).unwrap_or(0),
            outcome_note(&bd),
        )
        .ok();
    }
    if let Some(old) = host.sls.group_ref(gid)?.supersedes {
        host.prune_incarnation(old)?;
    }
    let repl = host
        .detach_standby()
        .ok_or_else(|| Error::corrupt("standby session vanished"))?;
    let link = repl.data_link_stats();
    writeln!(
        out,
        "standby synced to {}: {} epochs shipped, watermark {} acked, lag {} epochs / {} bytes",
        spath.display(),
        repl.shipped_epoch(),
        repl.acked_epoch(),
        repl.lag_epochs(),
        repl.lag_bytes(),
    )
    .ok();
    writeln!(
        out,
        "  link: {} frames sent (+{} retransmitted), {} dropped, {} duplicated, {} reordered; `sls promote` to fail over",
        repl.stats.frames_sent,
        repl.stats.frames_retransmitted,
        link.dropped,
        link.duplicated,
        link.reordered,
    )
    .ok();
    Ok(out)
}

/// `sls promote`: fail over to the standby image. Boots a host from
/// `standby.img`, scrubs it, restores the newest application to prove
/// the image serves, then (unless `--verify-only`) makes it the new
/// primary — the old `disk.img` is kept as `disk.img.pre-promote`.
fn cmd_promote(world: &Path, opts: &[&str]) -> Result<String> {
    let verify_only = opts.contains(&"--verify-only");
    let spath = standby_path(world);
    if !spath.exists() {
        return Err(Error::not_found(format!(
            "no standby image at {} (run `sls standby` first)",
            spath.display()
        )));
    }
    if !verify_only && mirror_meta_path(world).exists() {
        return Err(Error::unsupported(
            "cannot promote over a mirrored world; use --verify-only to inspect the standby",
        ));
    }
    let clock = SimClock::new();
    let blocks = std::fs::metadata(&spath)
        .map_err(|e| Error::io(e.to_string()))?
        .len()
        / 4096;
    let dev = Box::new(FileDev::open(clock, &spath, blocks)?);
    let mut host = Host::boot_existing("sls-standby", dev, store_config())?;
    let problems = host.sls.primary.borrow_mut().scrub();
    if !problems.is_empty() {
        return Err(Error::corrupt(format!(
            "standby image fails scrub, refusing to promote: {problems:?}"
        )));
    }
    let (ckpt, manifest) = newest_app(&mut host)?;
    let store = host.sls.primary.clone();
    let r = host.restore(&store, ckpt, RestoreMode::Eager)?;
    let pid = r
        .root_pid()
        .ok_or_else(|| Error::bad_image("standby image restored no process"))?;
    let state = describe(&mut host, pid);
    let name = manifest.name.clone();
    drop(store);
    drop(host);

    let mut out = String::new();
    writeln!(
        out,
        "standby verified: {name} restored from checkpoint {} in {}\n  state: {state}",
        ckpt.0, r.total,
    )
    .ok();
    if verify_only {
        writeln!(out, "verify only: the primary is unchanged").ok();
        return Ok(out);
    }
    let primary = disk_path(world);
    let backup = world.join("disk.img.pre-promote");
    std::fs::rename(&primary, &backup).map_err(|e| Error::io(e.to_string()))?;
    std::fs::copy(&spath, &primary).map_err(|e| Error::io(e.to_string()))?;
    writeln!(
        out,
        "promoted: {} is now the primary (old primary kept at {})",
        spath.display(),
        backup.display(),
    )
    .ok();
    Ok(out)
}

fn cmd_info(world: &Path) -> Result<String> {
    let host = open_host(world)?;
    let store = host.sls.primary.borrow();
    let stats = &store.stats;
    let problems = store.fsck();
    let health = if problems.is_empty() {
        "healthy".to_string()
    } else {
        format!("{} problems: {:?}", problems.len(), problems)
    };
    let dev = store.device();
    let rs = dev.retry_stats();
    let mirror_note = dev
        .as_mirror()
        .map(|m| {
            let ms = m.mirror_stats();
            let states: Vec<String> = (0..m.width())
                .map(|i| {
                    m.replica_state(i)
                        .unwrap_or(ReplicaState::Active)
                        .as_str()
                        .to_string()
                })
                .collect();
            format!(
                "  mirror: {} of {} replicas active [{}]; {} failovers, {} read repairs, {} degraded writes\n",
                m.active_width(),
                m.width(),
                states.join(", "),
                ms.failovers,
                ms.read_repairs,
                ms.degraded_writes,
            )
        })
        .unwrap_or_default();
    let sls = &host.sls.stats;
    let m = aurora_core::metrics::global_counters();
    let standby_note = match std::fs::metadata(standby_path(world)) {
        Ok(meta) => format!("image present ({} bytes)", meta.len()),
        Err(_) => "no image".to_string(),
    };
    let repl_note = format!(
        "  standby: {standby_note}; session: {} frames sent (+{} retransmitted, {} dropped), {} acks, watermark {} epochs, lag {} epochs / {} bytes, {} degraded-replication commits\n",
        m.repl_frames_sent,
        m.repl_frames_retransmitted,
        m.repl_frames_dropped,
        m.repl_acks_received,
        m.repl_epochs_acked,
        m.repl_lag_epochs,
        m.repl_lag_bytes,
        m.checkpoints_degraded_replication,
    );
    Ok(format!(
        "world: {}\n  checkpoints: {}\n  blocks in use: {}\n  pages written: {} (dedup hits {})\n  commits: {}, compactions: {}, GC runs: {}\n  fsck: {}\n  device: {} ({} writes retried, {} transient errors absorbed, {} failures surfaced)\n{mirror_note}{repl_note}  checkpoints this session: {} degraded, {} aborted\n  commit-phase: {} journal seals, {} extent barriers, {} superblock flips, {} repair-path entries this session\n  flush pipeline: {} workers configured; {} pages hashed (hash {:.2}ms, flush {:.2}ms), {} extents / {} blocks coalesced\n  delta log: {} live records ({} bytes); session: {} delta records ({} bytes) flushed in place of full pages, {} chains folded, longest chain {}\n  restore pipeline: {} workers configured; {} pages hashed, {} extent reads\n  fleet: {} pipelined cycles ({} overlapped), queue depth max {}, {} admission stalls, stop p99 {:.1}us\n  fleet health: {} cycle errors, {} deadline misses, {} cycles skipped under quarantine, {} quarantines, {} re-admissions\n  read cache: {} of {} pages resident, {} hits / {} misses ({} content hits), {} evictions\n",
        world.display(),
        store.checkpoints().len(),
        store.blocks_in_use(),
        stats.pages_written,
        stats.dedup_hits,
        stats.commits,
        stats.compactions,
        stats.gc_runs,
        health,
        dev.health().as_str(),
        rs.writes_retried,
        rs.transient_absorbed,
        rs.failures_surfaced,
        sls.checkpoints_degraded,
        sls.checkpoints_aborted,
        m.commit_journal_seals,
        m.commit_extent_barriers,
        m.commit_superblock_flips,
        m.commit_repair_entries,
        host.sls.flush_workers,
        m.flush_pages_hashed,
        m.flush_hash_ns as f64 / 1e6,
        m.flush_write_ns as f64 / 1e6,
        m.flush_extents,
        m.flush_extent_blocks,
        store.delta_log_len(),
        store.delta_log_bytes(),
        m.delta_records,
        m.delta_bytes,
        m.chains_compacted,
        m.chain_len_max,
        host.sls.restore_workers,
        m.restore_pages_hashed,
        m.restore_extents,
        m.fleet_cycles_pipelined,
        m.fleet_overlapped_cycles,
        m.fleet_queue_depth_max,
        m.fleet_queue_stalls,
        m.fleet_stop_p99_ns as f64 / 1e3,
        m.fleet_cycle_errors,
        m.fleet_deadline_misses,
        m.fleet_cycles_skipped,
        m.fleet_quarantines,
        m.fleet_readmissions,
        store.read_cache_len(),
        store.read_cache_capacity(),
        stats.read_cache_hits,
        stats.read_cache_misses,
        stats.read_cache_content_hits,
        store.read_cache_evictions(),
    ))
}

/// `sls fleet`: an in-memory demonstration of the fleet scheduler's
/// per-tenant fault domains. The demo never touches the world: it boots
/// a simulated host, starts KV tenants on isolated per-tenant stores,
/// and (unless `--healthy`) poisons tenant 0's device with latency
/// spikes four times the cycle deadline. The poisoned tenant misses
/// deadlines, quarantines, and — once the fault plan is disarmed —
/// probes back in with exponential backoff, while the healthy tenants'
/// cycles keep committing on schedule.
fn cmd_fleet(opts: &[&str]) -> Result<String> {
    let tenants: usize = flag_value(opts, "--tenants")
        .map(|v| v.parse().map_err(|_| Error::invalid("bad --tenants")))
        .transpose()?
        .unwrap_or(4);
    let rounds: u32 = flag_value(opts, "--rounds")
        .map(|v| v.parse().map_err(|_| Error::invalid("bad --rounds")))
        .transpose()?
        .unwrap_or(8);
    let healthy_only = opts.contains(&"--healthy");
    if tenants < 2 {
        return Err(Error::invalid("--tenants must be at least 2"));
    }

    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "fleet-demo", 128 * 1024));
    let mut host = Host::boot("fleet-demo", dev, StoreConfig::default())?;
    let mut fleet = TenantFleet::start(&mut host, tenants, 0xF1EE7, 256 * 1024, 16, 48)?;
    fleet.isolate(&mut host)?;

    let mut out = String::new();
    let deadline = host.sls.fleet.cycle_deadline;
    let gid0 = fleet.tenants[0].gid;
    let store0 = fleet.tenants[0]
        .store
        .clone()
        .ok_or_else(|| Error::internal("isolated fleet tenant has no store"))?;
    if healthy_only {
        writeln!(
            out,
            "fleet demo: {tenants} tenants on isolated stores, {rounds} rounds, all healthy",
        )
        .ok();
    } else {
        store0.borrow_mut().device_mut().install_fault_plan(FaultPlan::latency_spike(
            1,
            1_000_000,
            deadline.as_nanos() * 4,
        ));
        writeln!(
            out,
            "fleet demo: {tenants} tenants on isolated stores, {rounds} rounds; tenant 0 \
             poisoned with latency spikes (cycle deadline {:.1}ms)",
            deadline.as_nanos() as f64 / 1e6,
        )
        .ok();
    }

    let mut prev: Vec<TenantHealth> = fleet
        .tenants
        .iter()
        .map(|t| host.tenant_domain(t.gid).health)
        .collect();
    let mut skipped_once = false;
    for round in 0..rounds {
        // Once the poisoned tenant is quarantined, the fault "clears"
        // (an operator swapped the disk). The next round runs inside
        // the backoff window so the skip path shows; after that the
        // demo jumps the clock to each re-admission probe window.
        if !healthy_only && host.tenant_domain(gid0).health == TenantHealth::Quarantined {
            store0
                .borrow_mut()
                .device_mut()
                .install_fault_plan(FaultPlan::default());
            if skipped_once {
                host.clock.advance_to(host.tenant_domain(gid0).next_probe);
            } else {
                skipped_once = true;
            }
        }
        let wave: Vec<usize> = (0..tenants).collect();
        for &t in &wave {
            fleet.touch(&mut host, t, 4)?;
        }
        let cycles = fleet.checkpoint_wave(&mut host, &wave, round)?;
        for (i, cycle) in cycles.iter().enumerate() {
            let d = host.tenant_domain(cycle.gid);
            if d.health != prev[i] {
                writeln!(
                    out,
                    "  round {round}: tenant {i} {} -> {}{}",
                    prev[i].as_str(),
                    d.health.as_str(),
                    d.last_fault
                        .as_deref()
                        .map(|f| format!(" ({f})"))
                        .unwrap_or_default(),
                )
                .ok();
                prev[i] = d.health;
            }
        }
    }
    host.fleet_drain();

    writeln!(out, "  tenant  health       fails  misses  skips  quar  readmit").ok();
    for (i, t) in fleet.tenants.iter().enumerate() {
        let d = host.tenant_domain(t.gid);
        writeln!(
            out,
            "  t{i:<6}{:<13}{:<7}{:<8}{:<7}{:<6}{}",
            d.health.as_str(),
            d.failures,
            d.deadline_misses,
            d.cycles_skipped,
            d.quarantines,
            d.readmissions,
        )
        .ok();
    }
    let stats = &host.sls.fleet.stats;
    writeln!(
        out,
        "  fleet: {} admitted ({} overlapped), {} skipped, {} quarantines, {} re-admissions, \
         {} bookings released, {} deadline misses, stop p99 {:.1}us",
        stats.admitted,
        stats.overlapped,
        stats.cycles_skipped,
        stats.quarantines,
        stats.readmissions,
        stats.bookings_released,
        stats.deadline_misses,
        stats.stop_hist.p99() as f64 / 1e3,
    )
    .ok();
    Ok(out)
}

/// `sls scrub`: walk every committed checkpoint, re-read each page from
/// the device, and verify it against the recorded content hash. This is
/// the offline half of the fault-tolerance story: faults the retry layer
/// absorbed leave no trace, and anything it could not absorb shows up
/// here before it can poison an incremental chain.
fn cmd_scrub(world: &Path) -> Result<String> {
    let host = open_host(world)?;
    let store = host.sls.primary.clone();
    let problems = store.borrow_mut().scrub();
    let st = store.borrow();
    let rs = st.device().retry_stats();
    let mut out = String::new();
    writeln!(
        out,
        "scrubbed {} checkpoint(s) in {}: device {}",
        st.checkpoints().len(),
        world.display(),
        st.device().health().as_str(),
    )
    .ok();
    if rs.writes_retried > 0 || rs.failures_surfaced > 0 {
        writeln!(
            out,
            "  retries: {} writes retried, {} transient errors absorbed, {} failures surfaced",
            rs.writes_retried, rs.transient_absorbed, rs.failures_surfaced,
        )
        .ok();
    }
    if let Some(m) = st.device().as_mirror() {
        let ms = m.mirror_stats();
        writeln!(
            out,
            "  mirror: {} of {} replicas active; {} read repair(s), {} failover(s)",
            m.active_width(),
            m.width(),
            ms.read_repairs,
            ms.failovers,
        )
        .ok();
    }
    if problems.is_empty() {
        writeln!(out, "  clean: every page matches its content hash").ok();
    } else {
        for p in &problems {
            writeln!(out, "  PROBLEM: {p}").ok();
        }
        writeln!(
            out,
            "  {} problem(s); the next checkpoint of each affected group will degrade to full",
            problems.len()
        )
        .ok();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn world_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aurora-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mk world");
        dir
    }

    /// `sls standby` ships a world to the standby image over a lossy
    /// link, and `sls promote` makes that image the new primary, which
    /// then keeps serving and checkpointing.
    #[test]
    fn standby_then_promote_takes_over() {
        let dir = world_dir("standby");
        let w = dir.to_str().expect("utf8 path");
        run(&["--world", w, "init", "--blocks", "8192"]).expect("init");
        run(&["--world", w, "persist", "demo", "--app", "kv"]).expect("persist");
        let out = run(&[
            "--world", w, "standby", "demo", "--epochs", "2", "--faults", "lossy",
        ])
        .expect("standby");
        assert!(out.contains("watermark 2 acked"), "{out}");
        let out = run(&["--world", w, "promote"]).expect("promote");
        assert!(out.contains("standby verified"), "{out}");
        assert!(out.contains("promoted"), "{out}");
        assert!(dir.join("disk.img.pre-promote").exists());
        let out = run(&["--world", w, "run", "demo", "--steps", "3"]).expect("run after promote");
        assert!(out.contains("executed 3 mutations"), "{out}");
        let out = run(&["--world", w, "info"]).expect("info");
        assert!(out.contains("standby: image present"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `sls info` surfaces the delta-log footprint next to the other
    /// commit-phase and pipeline counters.
    #[test]
    fn info_reports_delta_log_counters() {
        let dir = world_dir("deltainfo");
        let w = dir.to_str().expect("utf8 path");
        run(&["--world", w, "init", "--blocks", "8192"]).expect("init");
        run(&["--world", w, "persist", "demo", "--app", "kv"]).expect("persist");
        run(&["--world", w, "run", "demo", "--steps", "6"]).expect("run");
        let out = run(&["--world", w, "info"]).expect("info");
        assert!(out.contains("delta log:"), "{out}");
        assert!(out.contains("chains folded"), "{out}");
        assert!(out.contains("longest chain"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `sls fleet` demonstrates the quarantine/re-admission round-trip
    /// end to end: the poisoned tenant loses cycles but comes back,
    /// and the healthy tenants never miss a deadline.
    #[test]
    fn fleet_demo_quarantines_and_readmits_the_poisoned_tenant() {
        let out = run(&["fleet", "--tenants", "3", "--rounds", "8"]).expect("fleet demo");
        assert!(out.contains("tenant 0 poisoned"), "{out}");
        assert!(out.contains("-> quarantined"), "{out}");
        assert!(out.contains("-> healthy"), "{out}");
        assert!(out.contains("fleet:"), "{out}");
        // The summary table shows the round-trip counters.
        assert!(out.contains("1     1"), "{out}");
    }

    /// `--healthy` keeps every tenant clean: no transitions, no
    /// quarantines.
    #[test]
    fn fleet_demo_healthy_mode_never_quarantines() {
        let out = run(&["fleet", "--tenants", "2", "--rounds", "3", "--healthy"]).expect("fleet");
        assert!(out.contains("all healthy"), "{out}");
        assert!(!out.contains("-> quarantined"), "{out}");
        assert!(out.contains("0 quarantines, 0 re-admissions"), "{out}");
    }

    /// `sls info` surfaces the fleet-health counters.
    #[test]
    fn info_reports_fleet_health_counters() {
        let dir = world_dir("fleetinfo");
        let w = dir.to_str().expect("utf8 path");
        run(&["--world", w, "init", "--blocks", "8192"]).expect("init");
        let out = run(&["--world", w, "info"]).expect("info");
        assert!(out.contains("fleet health:"), "{out}");
        assert!(out.contains("cycles skipped under quarantine"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `--verify-only` inspects the standby without touching the
    /// primary.
    #[test]
    fn promote_verify_only_leaves_primary_alone() {
        let dir = world_dir("verify");
        let w = dir.to_str().expect("utf8 path");
        run(&["--world", w, "init", "--blocks", "8192"]).expect("init");
        run(&["--world", w, "persist", "demo", "--app", "hello"]).expect("persist");
        run(&["--world", w, "standby", "demo", "--epochs", "1", "--faults", "clean"])
            .expect("standby");
        let out = run(&["--world", w, "promote", "--verify-only"]).expect("verify");
        assert!(out.contains("the primary is unchanged"), "{out}");
        assert!(!dir.join("disk.img.pre-promote").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
