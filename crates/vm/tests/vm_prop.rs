//! Property tests: the VM subsystem against a flat reference memory.
//!
//! Random sequences of writes, reads, forks, checkpoint armings and
//! flush releases must never let any address space observe bytes that
//! differ from an independently maintained per-process byte array —
//! that is, COW in all its forms (fork shadows, Aurora checkpoint COW)
//! must be invisible to the programs.

use std::collections::HashMap;

use aurora_sim::SimClock;
use aurora_vm::cow::{begin_epoch, release_flushed, Capture};
use aurora_vm::{Prot, Vm, VmMap, PAGE_SIZE};
use proptest::prelude::*;

const REGION_PAGES: u64 = 8;
const REGION: u64 = REGION_PAGES * PAGE_SIZE as u64;

#[derive(Debug, Clone)]
enum Op {
    /// Write bytes at (proc, offset).
    Write { proc: u8, off: u16, val: u8, len: u8 },
    /// Verify a read at (proc, offset).
    Read { proc: u8, off: u16, len: u8 },
    /// Fork process `proc` (up to 4 processes).
    Fork { proc: u8 },
    /// Arm a checkpoint epoch over every map (full or incremental).
    Checkpoint { full: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u8..4, 0u16..(REGION as u16 - 64), any::<u8>(), 1u8..64)
            .prop_map(|(proc, off, val, len)| Op::Write { proc, off, val, len }),
        4 => (0u8..4, 0u16..(REGION as u16 - 64), 1u8..64)
            .prop_map(|(proc, off, len)| Op::Read { proc, off, len }),
        1 => (0u8..4).prop_map(|proc| Op::Fork { proc }),
        1 => any::<bool>().prop_map(|full| Op::Checkpoint { full }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vm_matches_reference_memory(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut vm = Vm::new(SimClock::new());
        let mut maps: Vec<VmMap> = Vec::new();
        let mut reference: Vec<Vec<u8>> = Vec::new();
        let mut plans = Vec::new();

        // Process 0 exists from the start.
        let mut m0 = VmMap::new();
        let base = vm.map_anonymous(&mut m0, REGION, Prot::RW, false).unwrap();
        maps.push(m0);
        reference.push(vec![0u8; REGION as usize]);

        let mut since: u64 = 0;
        for op in ops {
            match op {
                Op::Write { proc, off, val, len } => {
                    let p = (proc as usize) % maps.len();
                    let data = vec![val; len as usize];
                    vm.copyout(&mut maps[p], base + off as u64, &data).unwrap();
                    reference[p][off as usize..off as usize + len as usize]
                        .copy_from_slice(&data);
                }
                Op::Read { proc, off, len } => {
                    let p = (proc as usize) % maps.len();
                    let mut buf = vec![0u8; len as usize];
                    vm.copyin(&mut maps[p], base + off as u64, &mut buf).unwrap();
                    prop_assert_eq!(
                        &buf[..],
                        &reference[p][off as usize..off as usize + len as usize],
                        "proc {} at {}", p, off
                    );
                }
                Op::Fork { proc } => {
                    if maps.len() >= 4 {
                        continue;
                    }
                    let p = (proc as usize) % maps.len();
                    let child = {
                        let parent = &mut maps[p];
                        vm.fork_map(parent)
                    };
                    maps.push(child);
                    let snapshot = reference[p].clone();
                    reference.push(snapshot);
                }
                Op::Checkpoint { full } => {
                    let refs: Vec<&VmMap> = maps.iter().collect();
                    let capture = if full { Capture::Full } else { Capture::DirtySince(since) };
                    let plan = begin_epoch(&mut vm, &refs, capture);
                    since = plan.epoch + 1;
                    plans.push(plan);
                    // Release an old plan half the time (flush finished).
                    if plans.len() > 1 {
                        let old = plans.remove(0);
                        release_flushed(&mut vm, &old);
                    }
                }
            }
        }

        // Full final verification of every address space.
        for (p, map) in maps.iter_mut().enumerate() {
            let mut buf = vec![0u8; REGION as usize];
            vm.copyin(map, base, &mut buf).unwrap();
            prop_assert_eq!(&buf, &reference[p], "final state of proc {}", p);
        }

        // Teardown leaks nothing.
        for plan in plans {
            release_flushed(&mut vm, &plan);
        }
        for map in maps.iter_mut() {
            vm.destroy_map(map);
        }
        prop_assert_eq!(vm.frames.allocated(), 0, "leaked frames");
        prop_assert_eq!(vm.live_objects(), 0, "leaked objects");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Checkpoint plans always capture exactly the content at arming
    /// time, regardless of writes that race the flush.
    #[test]
    fn armed_frames_preserve_checkpoint_contents(
        writes in proptest::collection::vec((0u64..REGION_PAGES, any::<u8>()), 1..20),
        post in proptest::collection::vec((0u64..REGION_PAGES, any::<u8>()), 1..20),
    ) {
        let mut vm = Vm::new(SimClock::new());
        let mut map = VmMap::new();
        let base = vm.map_anonymous(&mut map, REGION, Prot::RW, false).unwrap();
        for (page, val) in &writes {
            vm.copyout(&mut map, base + page * PAGE_SIZE as u64, &[*val; 16]).unwrap();
        }
        // Record expected page contents, then arm.
        let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
        for (page, _) in &writes {
            let mut buf = vec![0u8; PAGE_SIZE];
            vm.copyin(&mut map, base + page * PAGE_SIZE as u64, &mut buf).unwrap();
            expected.insert(*page, buf);
        }
        let plan = begin_epoch(&mut vm, &[&map], Capture::Full);

        // Post-barrier writes must not affect the frozen frames.
        for (page, val) in &post {
            vm.copyout(&mut map, base + page * PAGE_SIZE as u64, &[*val; 16]).unwrap();
        }
        for fp in &plan.flush {
            let frozen = vm.frames.data(fp.frame).materialize();
            prop_assert_eq!(
                &frozen,
                expected.get(&fp.page_idx).expect("armed page was resident"),
                "page {}", fp.page_idx
            );
        }
        release_flushed(&mut vm, &plan);
        vm.destroy_map(&mut map);
        prop_assert_eq!(vm.frames.allocated(), 0);
    }
}
