//! Clock (second-chance) page replacement.
//!
//! Aurora integrates swap with the SLS: under memory pressure, pages are
//! evicted with the classic clock algorithm [Corbató 1968] and written to
//! the backing pager, where the next checkpoint picks them up. The same
//! reference/heat bookkeeping drives lazy restore's *eager warmup*: the
//! hottest pages of a checkpointed object are paged back in first so a
//! freshly restored application avoids a storm of major faults.

use aurora_sim::error::{Error, Result};

use crate::object::VmoId;
use crate::Vm;

/// Outcome of one eviction sweep.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvictStats {
    /// Pages written to the pager and released.
    pub evicted: u64,
    /// Pages given a second chance (reference bit cleared).
    pub second_chance: u64,
    /// Pages skipped because their frames are shared/frozen.
    pub pinned: u64,
}

impl Vm {
    /// Runs the clock hand over `object`, evicting up to `target` pages.
    ///
    /// A page is evictable when its reference bit is clear and its frame
    /// is not shared (a frozen checkpoint frame or a cross-image shared
    /// frame must stay resident until its other holders let go — evicting
    /// it would only save the resident mapping, not the memory).
    /// Referenced pages get their bit cleared — the second chance.
    ///
    /// Write-back policy depends on the pager:
    ///
    /// * **Private pagers** (swap): dirty contents are written back, and
    ///   any stale image-cache entry for the page is dropped so the next
    ///   fault reads the written-back copy.
    /// * **Shared pagers** (checkpoint images feeding several restored
    ///   instances): clean pages are simply dropped (the image still has
    ///   them — and siblings may keep using the cached frame), while
    ///   dirty pages are *pinned* resident: writing them back through a
    ///   shared pager would leak one instance's writes into its siblings.
    ///   Dirty image pages leave residency only via the next checkpoint.
    pub fn evict_pages(&mut self, object: VmoId, target: u64) -> Result<EvictStats> {
        let (pager, key) = self
            .object(object)
            .pager
            .ok_or_else(|| Error::invalid("evict: object has no pager"))?;
        let pager_shared = self.pager_mut(pager).shared();
        let mut stats = EvictStats::default();
        // Snapshot the clock order (ascending page index — the hand).
        let indices: Vec<u64> = self.object(object).pages.keys().copied().collect();
        for idx in indices {
            if stats.evicted >= target {
                break;
            }
            let (frame, referenced, write_epoch) = {
                let page = self.object(object).page(idx).expect("page listed above");
                (page.frame, page.referenced, page.write_epoch)
            };
            if referenced {
                self.object_mut(object)
                    .pages
                    .get_mut(&idx)
                    .expect("page listed above")
                    .referenced = false;
                stats.second_chance += 1;
                continue;
            }
            let dirty = write_epoch > 0;
            if pager_shared {
                if dirty {
                    // Never write back through a shared pager.
                    stats.pinned += 1;
                    continue;
                }
                // Clean drop: the image (and possibly the image cache,
                // which holds its own frame reference for siblings)
                // still serves this page; only residency is released.
            } else {
                if self.frames.refs(frame) > 1 {
                    // Frozen by a checkpoint or shared: evicting would
                    // not release the memory.
                    stats.pinned += 1;
                    continue;
                }
                let data = self.frames.data(frame).clone();
                self.pager_mut(pager).page_out(key, idx, &data)?;
                // The written-back copy supersedes any cached image frame.
                self.image_cache_invalidate(pager, key, idx);
            }
            self.object_mut(object).pages.remove(&idx);
            self.frames.unref(frame);
            stats.evicted += 1;
            self.stats.pages_evicted += 1;
        }
        Ok(stats)
    }

    /// Clears every reference bit of `object` — a full revolution of the
    /// clock hand with no memory pressure. Exposed for policy code and
    /// tests that want to age pages deterministically.
    pub fn clear_referenced(&mut self, object: VmoId) {
        for page in self.object_mut(object).pages.values_mut() {
            page.referenced = false;
        }
    }

    /// Returns up to `k` resident page indices of `object`, hottest first.
    ///
    /// Used by the checkpointer to record a heat ranking in the image so
    /// lazy restore can warm the working set eagerly.
    pub fn hottest_pages(&self, object: VmoId, k: usize) -> Vec<u64> {
        let obj = self.object(object);
        let mut ranked: Vec<(u32, u64)> = obj.pages.iter().map(|(i, p)| (p.heat, *i)).collect();
        ranked.sort_by(|a, b| b.cmp(a));
        ranked.into_iter().take(k).map(|(_, i)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Access;
    use crate::map::{Prot, VmMap};
    use crate::page::PAGE_SIZE;
    use crate::pager::MemPager;
    use aurora_sim::SimClock;

    const P: u64 = PAGE_SIZE as u64;

    fn setup_with_pager(pages: u64) -> (Vm, VmMap, u64, VmoId) {
        let mut vm = Vm::new(SimClock::new());
        let mut map = VmMap::new();
        let a = vm
            .map_anonymous(&mut map, pages * P, Prot::RW, false)
            .unwrap();
        let obj = map.find(a).unwrap().object;
        let pid = vm.register_pager(Box::new(MemPager::new()));
        vm.object_mut(obj).pager = Some((pid, 1));
        (vm, map, a, obj)
    }

    #[test]
    fn second_chance_then_eviction() {
        let (mut vm, mut map, a, obj) = setup_with_pager(4);
        vm.touch_seeded(&mut map, a, 4 * P, 7).unwrap();
        // All pages referenced: first sweep only clears bits.
        let s1 = vm.evict_pages(obj, 4).unwrap();
        assert_eq!(s1.evicted, 0);
        assert_eq!(s1.second_chance, 4);
        // Second sweep evicts.
        let s2 = vm.evict_pages(obj, 2).unwrap();
        assert_eq!(s2.evicted, 2);
        assert_eq!(vm.object(obj).resident(), 2);
        vm.destroy_map(&mut map);
    }

    #[test]
    fn evicted_pages_come_back_from_pager_intact() {
        let (mut vm, mut map, a, obj) = setup_with_pager(2);
        vm.copyout(&mut map, a, b"persistent-bytes").unwrap();
        vm.evict_pages(obj, 2).unwrap(); // clear bits
        let s = vm.evict_pages(obj, 2).unwrap();
        assert_eq!(s.evicted, 1);
        assert_eq!(vm.object(obj).resident(), 0);
        // Fault it back.
        let mut buf = [0u8; 16];
        vm.copyin(&mut map, a, &mut buf).unwrap();
        assert_eq!(&buf, b"persistent-bytes");
        assert_eq!(vm.stats.major_faults, 1);
        vm.destroy_map(&mut map);
    }

    #[test]
    fn recently_used_pages_survive() {
        let (mut vm, mut map, a, obj) = setup_with_pager(4);
        vm.touch_seeded(&mut map, a, 4 * P, 7).unwrap();
        vm.clear_referenced(obj); // age every page
        // Re-reference page 2 only.
        vm.fault(&mut map, a + 2 * P, Access::Read).unwrap();
        let s = vm.evict_pages(obj, 4).unwrap();
        assert_eq!(s.evicted, 3);
        assert_eq!(s.second_chance, 1);
        assert!(vm.object(obj).page(2).is_some(), "hot page survived");
        vm.destroy_map(&mut map);
    }

    #[test]
    fn frozen_frames_are_pinned() {
        let (mut vm, mut map, a, obj) = setup_with_pager(2);
        vm.touch_seeded(&mut map, a, 2 * P, 7).unwrap();
        vm.clear_referenced(obj); // age every page
        let frame = vm.object(obj).page(0).unwrap().frame;
        vm.frames.ref_frame(frame); // checkpoint freeze
        let s = vm.evict_pages(obj, 2).unwrap();
        assert_eq!(s.pinned, 1);
        assert_eq!(s.evicted, 1);
        assert!(vm.object(obj).page(0).is_some());
        vm.frames.unref(frame);
        vm.destroy_map(&mut map);
    }

    #[test]
    fn hottest_pages_ranked_by_heat() {
        let (mut vm, mut map, a, obj) = setup_with_pager(4);
        vm.touch_seeded(&mut map, a, 4 * P, 7).unwrap();
        // Heat page 3 the most, then page 1.
        for _ in 0..5 {
            vm.fault(&mut map, a + 3 * P, Access::Read).unwrap();
        }
        for _ in 0..2 {
            vm.fault(&mut map, a + P, Access::Read).unwrap();
        }
        let hot = vm.hottest_pages(obj, 2);
        assert_eq!(hot, vec![3, 1]);
        vm.destroy_map(&mut map);
    }

    #[test]
    fn evict_without_pager_errors() {
        let mut vm = Vm::new(SimClock::new());
        let mut map = VmMap::new();
        let a = vm.map_anonymous(&mut map, P, Prot::RW, false).unwrap();
        let obj = map.find(a).unwrap().object;
        assert!(vm.evict_pages(obj, 1).is_err());
        vm.destroy_map(&mut map);
    }
}
