//! Page contents.
//!
//! The paper's headline experiments use a 2 GiB working set; holding that
//! as real bytes would make the simulator memory-bound for no benefit.
//! [`PageData`] therefore has three representations:
//!
//! * `Zero` — the canonical all-zeroes page.
//! * `Seeded(seed)` — a page whose 4 KiB contents are a deterministic
//!   function of a 64-bit seed. Benchmarks model large working sets this
//!   way: contents are reproducible and comparable while costing eight
//!   bytes of host memory.
//! * `Bytes(..)` — explicit bytes, used by the correctness tests and any
//!   application that round-trips real data through checkpoints.
//!
//! Equality is *content* equality across representations. Content hashes
//! (for the object store's dedup index) are computed over the materialized
//! bytes, so equal content always hashes equal regardless of
//! representation.

use std::sync::Arc;

use aurora_sim::hash::Fnv64;
use aurora_sim::rng::mix64;

pub use aurora_sim::cost::PAGE_SIZE;

/// The contents of one 4 KiB page.
#[derive(Clone)]
pub enum PageData {
    /// All zeroes.
    Zero,
    /// Deterministic pseudo-random contents derived from a seed.
    Seeded(u64),
    /// Explicit bytes (always exactly `PAGE_SIZE` long).
    Bytes(Arc<[u8]>),
}

impl PageData {
    /// Wraps explicit bytes, canonicalizing all-zero pages to `Zero`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly one page long.
    pub fn from_bytes(bytes: &[u8]) -> PageData {
        assert_eq!(bytes.len(), PAGE_SIZE, "page data must be PAGE_SIZE long");
        if bytes.iter().all(|&b| b == 0) {
            PageData::Zero
        } else {
            PageData::Bytes(Arc::from(bytes))
        }
    }

    /// True for the canonical zero page.
    pub fn is_zero(&self) -> bool {
        matches!(self, PageData::Zero)
    }

    /// Materializes the full 4 KiB contents.
    pub fn materialize(&self) -> Vec<u8> {
        match self {
            PageData::Zero => vec![0u8; PAGE_SIZE],
            PageData::Seeded(seed) => seeded_bytes(*seed),
            PageData::Bytes(b) => b.to_vec(),
        }
    }

    /// Copies `buf.len()` bytes starting at `off` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the page.
    pub fn read(&self, off: usize, buf: &mut [u8]) {
        assert!(off + buf.len() <= PAGE_SIZE, "read beyond page end");
        match self {
            PageData::Zero => buf.fill(0),
            PageData::Seeded(seed) => {
                let full = seeded_bytes(*seed);
                buf.copy_from_slice(&full[off..off + buf.len()]);
            }
            PageData::Bytes(b) => buf.copy_from_slice(&b[off..off + buf.len()]),
        }
    }

    /// Returns a new page with `data` written at `off` (pages are
    /// immutable values; frames swap in the new one).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the page.
    pub fn write(&self, off: usize, data: &[u8]) -> PageData {
        assert!(off + data.len() <= PAGE_SIZE, "write beyond page end");
        let mut bytes = self.materialize();
        bytes[off..off + data.len()].copy_from_slice(data);
        PageData::from_bytes(&bytes)
    }

    /// Content hash over the materialized bytes (FNV-1a 64).
    ///
    /// `Zero` and `Seeded` use closed-form fast paths that are verified
    /// (in tests) to equal the hash of their materialized bytes.
    pub fn content_hash(&self) -> u64 {
        match self {
            PageData::Zero => zero_page_hash(),
            PageData::Seeded(seed) => {
                // Hash over the deterministic expansion, streamed in
                // 8-byte chunks to avoid the Vec allocation.
                let mut h = Fnv64::new();
                let mut s = *seed;
                for _ in 0..(PAGE_SIZE / 8) {
                    s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    h.update(&mix64(s).to_le_bytes());
                    s = mix64(s);
                }
                h.finish()
            }
            PageData::Bytes(b) => {
                let mut h = Fnv64::new();
                h.update(b);
                h.finish()
            }
        }
    }

    /// Content equality across representations.
    pub fn content_eq(&self, other: &PageData) -> bool {
        match (self, other) {
            (PageData::Zero, PageData::Zero) => true,
            (PageData::Seeded(a), PageData::Seeded(b)) => a == b,
            (PageData::Bytes(a), PageData::Bytes(b)) => a == b,
            _ => self.materialize() == other.materialize(),
        }
    }
}

/// Deterministic expansion of a seed into one page of bytes.
///
/// Keep in sync with `PageData::content_hash`'s `Seeded` fast path.
fn seeded_bytes(seed: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(PAGE_SIZE);
    let mut s = seed;
    for _ in 0..(PAGE_SIZE / 8) {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        out.extend_from_slice(&mix64(s).to_le_bytes());
        s = mix64(s);
    }
    out
}

/// Hash of the canonical zero page (computed once).
fn zero_page_hash() -> u64 {
    use std::sync::OnceLock;
    static HASH: OnceLock<u64> = OnceLock::new();
    *HASH.get_or_init(|| {
        let mut h = Fnv64::new();
        h.update(&[0u8; PAGE_SIZE]);
        h.finish()
    })
}

impl core::fmt::Debug for PageData {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PageData::Zero => write!(f, "Page::Zero"),
            PageData::Seeded(s) => write!(f, "Page::Seeded({s:#x})"),
            PageData::Bytes(_) => write!(f, "Page::Bytes({:#x})", self.content_hash()),
        }
    }
}

impl PartialEq for PageData {
    fn eq(&self, other: &Self) -> bool {
        self.content_eq(other)
    }
}

impl Eq for PageData {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_canonicalization() {
        let p = PageData::from_bytes(&[0u8; PAGE_SIZE]);
        assert!(p.is_zero());
        let mut nonzero = [0u8; PAGE_SIZE];
        nonzero[100] = 1;
        assert!(!PageData::from_bytes(&nonzero).is_zero());
    }

    #[test]
    fn seeded_pages_are_deterministic() {
        let a = PageData::Seeded(42).materialize();
        let b = PageData::Seeded(42).materialize();
        assert_eq!(a, b);
        assert_ne!(a, PageData::Seeded(43).materialize());
        assert_eq!(a.len(), PAGE_SIZE);
    }

    #[test]
    fn seeded_hash_matches_materialized_hash() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let p = PageData::Seeded(seed);
            let expected = PageData::from_bytes(&p.materialize()).content_hash();
            assert_eq!(p.content_hash(), expected, "seed {seed}");
        }
    }

    #[test]
    fn zero_hash_matches_materialized_hash() {
        let expected = {
            let mut h = Fnv64::new();
            h.update(&[0u8; PAGE_SIZE]);
            h.finish()
        };
        assert_eq!(PageData::Zero.content_hash(), expected);
    }

    #[test]
    fn cross_representation_equality() {
        let seeded = PageData::Seeded(7);
        let bytes = PageData::from_bytes(&seeded.materialize());
        assert_eq!(seeded, bytes);
        assert_eq!(seeded.content_hash(), bytes.content_hash());
        assert_ne!(seeded, PageData::Zero);
    }

    #[test]
    fn read_write_roundtrip() {
        let p = PageData::Zero;
        let p = p.write(100, b"hello");
        let mut buf = [0u8; 5];
        p.read(100, &mut buf);
        assert_eq!(&buf, b"hello");
        // Writing zeroes back re-canonicalizes.
        let p = p.write(100, &[0u8; 5]);
        assert!(p.is_zero());
    }

    #[test]
    fn partial_read_of_seeded_page_matches_materialized() {
        let p = PageData::Seeded(99);
        let full = p.materialize();
        let mut buf = [0u8; 64];
        p.read(1000, &mut buf);
        assert_eq!(&buf[..], &full[1000..1064]);
    }

    #[test]
    #[should_panic(expected = "beyond page end")]
    fn out_of_range_write_panics() {
        PageData::Zero.write(PAGE_SIZE - 2, &[1, 2, 3]);
    }
}
