//! The simulated virtual-memory subsystem.
//!
//! Aurora modifies FreeBSD's Mach-derived VM [Rashid et al., ASPLOS '87]
//! in two load-bearing ways, both reproduced here:
//!
//! 1. **Checkpoint COW that preserves sharing.** The standard fork-style
//!    COW would give each process a private copy of a shared page on
//!    write, silently breaking shared-memory semantics — which is why
//!    stock kernels refuse to COW shared pages. Aurora instead installs
//!    the *new* page into the shared VM object on a copy-on-write fault,
//!    so every mapper observes it, while the *original* frame is frozen
//!    and handed to the checkpoint flusher. See [`cow`].
//! 2. **Per-page write epochs.** Every write fault stamps the page with
//!    the current checkpoint epoch, so an incremental checkpoint arms and
//!    flushes only pages dirtied since the previous one — the mechanism
//!    behind Table 3's 7× smaller stop time. The same page is never
//!    flushed twice for shared or COW memory.
//!
//! Structure:
//!
//! * [`page`] — page contents (zero / seeded / explicit bytes) and
//!   content hashing for deduplication.
//! * [`frame`] — the physical frame table with reference counting.
//! * [`object`] — VM objects, shadow chains, resident page sets.
//! * [`map`] — per-process address spaces (`VmMap`) and map entries.
//! * [`fault`] — the page-fault handler (zero-fill, page-in, fork COW via
//!   shadow push, Aurora checkpoint COW).
//! * [`cow`] — checkpoint epochs: arming pages and collecting dirty sets.
//! * [`pager`] — the backing-store interface used by swap and lazy
//!   restore.
//! * [`pageout`] — the clock (second-chance) page-replacement algorithm,
//!   also used to pick the hottest pages for restore prefetch.

pub mod cow;
pub mod fault;
pub mod frame;
pub mod map;
pub mod object;
pub mod page;
pub mod pageout;
pub mod pager;

use std::sync::Arc;

use aurora_sim::SimClock;

pub use frame::{FrameId, FrameTable};
pub use map::{MapEntry, Prot, SlsPolicy, VmMap};
pub use object::{DirtyMask, VmObject, VmoId, VmoKind, MAX_DIRTY_RUNS};
pub use page::{PageData, PAGE_SIZE};
pub use pager::{Pager, PagerId};

/// Counters describing VM activity; several feed the paper's tables.
#[derive(Debug, Default, Clone)]
pub struct VmStats {
    /// Copy-on-write faults serviced (checkpoint COW + fork COW).
    pub cow_faults: u64,
    /// Zero-fill faults.
    pub zero_fills: u64,
    /// Minor faults (resident page, mapping fixup only).
    pub minor_faults: u64,
    /// Major faults (page fetched from a pager/backing store).
    pub major_faults: u64,
    /// Pages copied between frames.
    pub pages_copied: u64,
    /// Pages armed for checkpoint COW (PTE manipulations).
    pub pages_armed: u64,
    /// Pages evicted by the clock algorithm.
    pub pages_evicted: u64,
}

/// The VM subsystem: frame table, object table, pagers and statistics.
pub struct Vm {
    /// Shared virtual clock.
    pub clock: Arc<SimClock>,
    /// Physical frame table.
    pub frames: FrameTable,
    objects: Vec<Option<VmObject>>,
    free_objects: Vec<u32>,
    pagers: Vec<Option<Box<dyn Pager>>>,
    /// Activity counters.
    pub stats: VmStats,
    /// Current checkpoint epoch (bumped by [`cow::begin_epoch`]).
    pub epoch: u64,
    next_uid: u64,
    /// Image cache: pages faulted in from a checkpoint image are shared
    /// (one frame, reference counted) among every object backed by the
    /// same pager key — the mechanism behind "instances warm each other
    /// up" in the paper's serverless discussion. Each cache entry holds
    /// one frame reference.
    image_cache: std::collections::HashMap<(PagerId, u64, u64), FrameId>,
}

impl Vm {
    /// Creates an empty VM subsystem.
    pub fn new(clock: Arc<SimClock>) -> Self {
        Vm {
            clock,
            frames: FrameTable::new(),
            objects: Vec::new(),
            free_objects: Vec::new(),
            pagers: Vec::new(),
            stats: VmStats::default(),
            epoch: 1,
            next_uid: 1,
            image_cache: std::collections::HashMap::new(),
        }
    }

    /// Allocates a new VM object and returns its id.
    pub fn create_object(&mut self, kind: VmoKind, size_pages: u64) -> VmoId {
        let mut obj = VmObject::new(kind, size_pages);
        obj.uid = self.next_uid;
        self.next_uid += 1;
        match self.free_objects.pop() {
            Some(slot) => {
                self.objects[slot as usize] = Some(obj);
                VmoId(slot)
            }
            None => {
                self.objects.push(Some(obj));
                VmoId(self.objects.len() as u32 - 1)
            }
        }
    }

    /// Immutable access to an object.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale — that is a kernel bug, not a user error.
    pub fn object(&self, id: VmoId) -> &VmObject {
        self.objects[id.0 as usize]
            .as_ref()
            .expect("stale VmoId: object already destroyed")
    }

    /// Mutable access to an object.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn object_mut(&mut self, id: VmoId) -> &mut VmObject {
        self.objects[id.0 as usize]
            .as_mut()
            .expect("stale VmoId: object already destroyed")
    }

    /// True if the object id is live (used by assertions and tests).
    pub fn object_exists(&self, id: VmoId) -> bool {
        self.objects
            .get(id.0 as usize)
            .is_some_and(|o| o.is_some())
    }

    /// Takes a new reference on an object.
    pub fn ref_object(&mut self, id: VmoId) {
        self.object_mut(id).refs += 1;
    }

    /// Drops a reference; destroys the object (releasing frames and its
    /// backing reference) when the count reaches zero.
    pub fn unref_object(&mut self, id: VmoId) {
        let obj = self.object_mut(id);
        debug_assert!(obj.refs > 0, "unref of dead object");
        obj.refs -= 1;
        if obj.refs > 0 {
            return;
        }
        let obj = self.objects[id.0 as usize]
            .take()
            .expect("checked above: object exists");
        for (_, page) in obj.pages {
            self.frames.unref(page.frame);
        }
        for frozen in obj.frozen {
            self.frames.unref(frozen.frame);
        }
        self.free_objects.push(id.0);
        if let Some((backing, _)) = obj.backing {
            self.unref_object(backing);
        }
    }

    /// Registers a pager and returns its id.
    pub fn register_pager(&mut self, pager: Box<dyn Pager>) -> PagerId {
        self.pagers.push(Some(pager));
        PagerId(self.pagers.len() as u32 - 1)
    }

    /// Mutable access to a registered pager.
    ///
    /// # Panics
    ///
    /// Panics if the pager was unregistered.
    pub fn pager_mut(&mut self, id: PagerId) -> &mut dyn Pager {
        self.pagers[id.0 as usize]
            .as_mut()
            .expect("stale PagerId")
            .as_mut()
    }

    /// Removes a pager (its objects must no longer reference it) and
    /// releases the image-cache frames it contributed.
    pub fn unregister_pager(&mut self, id: PagerId) {
        self.pagers[id.0 as usize] = None;
        let stale: Vec<_> = self
            .image_cache
            .keys()
            .filter(|(p, _, _)| *p == id)
            .copied()
            .collect();
        for key in stale {
            if let Some(frame) = self.image_cache.remove(&key) {
                self.frames.unref(frame);
            }
        }
    }

    /// Looks up a shared image frame (restore/fault paths).
    pub fn image_cache_get(&self, pager: PagerId, key: u64, idx: u64) -> Option<FrameId> {
        self.image_cache.get(&(pager, key, idx)).copied()
    }

    /// Publishes a frame into the image cache (takes one extra ref).
    pub fn image_cache_put(&mut self, pager: PagerId, key: u64, idx: u64, frame: FrameId) {
        self.frames.ref_frame(frame);
        if let Some(old) = self.image_cache.insert((pager, key, idx), frame) {
            self.frames.unref(old);
        }
    }

    /// Drops one image-cache entry (its content was superseded, e.g. by
    /// a swap write-back).
    pub fn image_cache_invalidate(&mut self, pager: PagerId, key: u64, idx: u64) {
        if let Some(frame) = self.image_cache.remove(&(pager, key, idx)) {
            self.frames.unref(frame);
        }
    }

    /// Number of live objects (leak checking in tests).
    pub fn live_objects(&self) -> usize {
        self.objects.iter().filter(|o| o.is_some()).count()
    }
}

impl core::fmt::Debug for Vm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Vm")
            .field("objects", &self.live_objects())
            .field("frames", &self.frames.allocated())
            .field("epoch", &self.epoch)
            .finish()
    }
}
