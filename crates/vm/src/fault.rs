//! The page-fault handler.
//!
//! This is where Aurora's key VM change lives. The write-fault rule is:
//!
//! > If the faulting page's frame is shared (reference count > 1 —
//! > because a checkpoint froze it, or because a restored image or
//! > another serverless instance shares it), allocate a fresh frame,
//! > copy the contents, and install the new frame **into the same VM
//! > object**, so every process mapping the object keeps seeing a single
//! > coherent page. The old frame stays alive through the references the
//! > checkpoint (or sibling image) holds.
//!
//! Contrast with fork-style COW, which installs the copy into a *shadow*
//! object private to the faulting process — correct for fork, fatal for
//! shared memory. Both paths are implemented below and distinguished by
//! the `needs_copy` bit on the map entry.
//!
//! The handler also implements zero-fill, shadow-chain lookup, and pager
//! page-in (major faults) for swap and lazy restore.

use aurora_sim::cost;
use aurora_sim::error::{Error, Result};
use aurora_sim::time::SimDuration;

use crate::frame::FrameId;
use crate::map::VmMap;
use crate::object::{DirtyMask, ResidentPage, VmoId, VmoKind};
use crate::page::{PageData, PAGE_SIZE};
use crate::Vm;

/// Kind of access that faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read access.
    Read,
    /// Write access.
    Write,
}

impl Vm {
    /// Resolves a fault at `addr`, returning the frame that now backs it.
    ///
    /// Charges the virtual cost of whatever work was needed (possibly
    /// none, for a resident unshared page — the hardware-TLB case).
    ///
    /// A raw write fault has no byte-range information, so it marks the
    /// page's whole [`DirtyMask`] dirty; `copyout` goes through the
    /// tracked variant to record its precise extent instead.
    pub fn fault(&mut self, map: &mut VmMap, addr: u64, access: Access) -> Result<FrameId> {
        self.fault_tracked(map, addr, access, None)
    }

    /// [`Vm::fault`] with an optional precise dirty extent
    /// (`page_offset`, `len`) recorded on a write.
    fn fault_tracked(
        &mut self,
        map: &mut VmMap,
        addr: u64,
        access: Access,
        extent: Option<(u32, u32)>,
    ) -> Result<FrameId> {
        let entry = map
            .find_mut(addr)
            .ok_or_else(|| Error::fault(format!("no mapping at {addr:#x}")))?;
        if access == Access::Write && !entry.prot.write {
            return Err(Error::fault(format!("write to read-only {addr:#x}")));
        }
        if access == Access::Read && !entry.prot.read {
            return Err(Error::fault(format!("read of unreadable {addr:#x}")));
        }
        let idx = entry.page_index(addr);

        // Fork-COW: the first write through a needs_copy entry interposes
        // a shadow object between the entry and its backing object.
        if access == Access::Write && entry.needs_copy {
            let old = entry.object;
            let size = self.object(old).size_pages;
            let shadow = self.create_object(VmoKind::Shadow, size);
            // The entry's reference on `old` is inherited by the shadow's
            // backing link, so no net reference change on `old`.
            self.object_mut(shadow).backing = Some((old, 0));
            let entry = map.find_mut(addr).expect("entry exists: found above");
            entry.object = shadow;
            entry.needs_copy = false;
        }

        let entry = map.find(addr).expect("entry exists: found above");
        let top = entry.object;
        let epoch = self.epoch;

        // Walk the shadow chain looking for the page.
        let mut cur = top;
        let mut cur_idx = idx;
        let found: Option<(VmoId, u64, FrameId)> = loop {
            let (resident, pager_binding, backing) = {
                let obj = self.object(cur);
                (obj.page(cur_idx).map(|p| p.frame), obj.pager, obj.backing)
            };
            if let Some(frame) = resident {
                break Some((cur, cur_idx, frame));
            }
            if let Some((pager, key)) = pager_binding {
                // Shared image frame already in memory (another instance
                // of the same checkpoint faulted it in): wire it up with
                // a minor fault and no device traffic.
                if let Some(frame) = self
                    .image_cache_get(pager, key, cur_idx)
                    .filter(|f| self.frames.exists(*f))
                {
                    self.frames.ref_frame(frame);
                    // The resident entry owns this new reference; drop the
                    // alloc-time convention of one ref per resident page.
                    self.object_mut(cur).insert_page(
                        cur_idx,
                        ResidentPage {
                            frame,
                            write_epoch: 0,
                            cow_protected: false,
                            referenced: true,
                            heat: 1,
                        },
                    );
                    self.stats.minor_faults += 1;
                    self.clock
                        .charge(SimDuration::from_nanos(cost::MINOR_FAULT_NS));
                    break Some((cur, cur_idx, frame));
                }
                if self.pager_mut(pager).has_page(key, cur_idx) {
                    // Major fault: fetch from the backing store and
                    // publish the frame for sibling instances.
                    let data = self.pager_mut(pager).page_in(key, cur_idx)?;
                    let frame = self.frames.alloc(data);
                    self.image_cache_put(pager, key, cur_idx, frame);
                    self.object_mut(cur).insert_page(
                        cur_idx,
                        ResidentPage {
                            frame,
                            write_epoch: 0,
                            cow_protected: false,
                            referenced: true,
                            heat: 1,
                        },
                    );
                    self.stats.major_faults += 1;
                    self.clock
                        .charge(SimDuration::from_nanos(cost::MINOR_FAULT_NS));
                    break Some((cur, cur_idx, frame));
                }
            }
            match backing {
                Some((b, off)) => {
                    cur = b;
                    cur_idx += off;
                }
                None => break None,
            }
        };

        let resolved: Result<FrameId> = match (found, access) {
            (None, _) => {
                // Zero-fill into the top object.
                let frame = self.frames.alloc(PageData::Zero);
                let write_epoch = if access == Access::Write { epoch } else { 0 };
                self.object_mut(top).insert_page(
                    idx,
                    ResidentPage {
                        frame,
                        write_epoch,
                        cow_protected: false,
                        referenced: true,
                        heat: 1,
                    },
                );
                self.stats.zero_fills += 1;
                self.clock
                    .charge(SimDuration::from_nanos(cost::PAGE_ZERO_NS + cost::MINOR_FAULT_NS));
                Ok(frame)
            }
            (Some((owner, owner_idx, frame)), Access::Read) => {
                let page = self
                    .object_mut(owner)
                    .pages
                    .get_mut(&owner_idx)
                    .expect("page resident: found above");
                page.referenced = true;
                page.heat = page.heat.saturating_add(1);
                if owner != top {
                    // Mapping fixup for a backing-object page.
                    self.stats.minor_faults += 1;
                    self.clock
                        .charge(SimDuration::from_nanos(cost::MINOR_FAULT_NS));
                }
                Ok(frame)
            }
            (Some((owner, _owner_idx, frame)), Access::Write) => {
                if owner == top {
                    if self.frames.refs(frame) > 1 {
                        // Aurora checkpoint/sharing COW: install the copy
                        // into the SAME object so all mappers see it.
                        let data = self.frames.data(frame).clone();
                        let new = self.frames.alloc(data);
                        let page = self
                            .object_mut(top)
                            .pages
                            .get_mut(&idx)
                            .expect("page resident: found above");
                        page.frame = new;
                        page.write_epoch = epoch;
                        page.cow_protected = false;
                        page.referenced = true;
                        page.heat = page.heat.saturating_add(1);
                        // Drop the resident reference on the old frame;
                        // the checkpoint's (or sibling's) references keep
                        // it alive until flushed.
                        self.frames.unref(frame);
                        self.stats.cow_faults += 1;
                        self.stats.pages_copied += 1;
                        self.clock.charge(SimDuration::from_nanos(
                            cost::COW_FAULT_NS + cost::PAGE_COPY_NS,
                        ));
                        Ok(new)
                    } else {
                        // Exclusive resident page: plain write.
                        let page = self
                            .object_mut(top)
                            .pages
                            .get_mut(&idx)
                            .expect("page resident: found above");
                        page.write_epoch = epoch;
                        page.cow_protected = false;
                        page.referenced = true;
                        page.heat = page.heat.saturating_add(1);
                        Ok(frame)
                    }
                } else {
                    // Fork-COW resolution: copy the backing page up into
                    // the top (shadow) object; the backing page is
                    // untouched and stays shared with the other side.
                    let data = self.frames.data(frame).clone();
                    let new = self.frames.alloc(data);
                    self.object_mut(top).insert_page(
                        idx,
                        ResidentPage {
                            frame: new,
                            write_epoch: epoch,
                            cow_protected: false,
                            referenced: true,
                            heat: 1,
                        },
                    );
                    self.stats.cow_faults += 1;
                    self.stats.pages_copied += 1;
                    self.clock.charge(SimDuration::from_nanos(
                        cost::COW_FAULT_NS + cost::PAGE_COPY_NS,
                    ));
                    Ok(new)
                }
            }
        };
        let frame = resolved?;
        if access == Access::Write {
            // The write always lands in the top object (every COW arm
            // installs its copy there); record its footprint for the
            // flusher's delta/full decision.
            let mask = self.object_mut(top).dirty.entry(idx).or_default();
            match extent {
                Some((off, len)) => mask.note(off, len),
                None => *mask = DirtyMask::Full,
            }
        }
        Ok(frame)
    }

    /// Writes `data` into the address space at `addr` (kernel copyout).
    pub fn copyout(&mut self, map: &mut VmMap, addr: u64, data: &[u8]) -> Result<()> {
        let mut off = 0usize;
        while off < data.len() {
            let cur = addr + off as u64;
            let page_off = (cur % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - page_off).min(data.len() - off);
            let frame =
                self.fault_tracked(map, cur, Access::Write, Some((page_off as u32, n as u32)))?;
            // The fault guaranteed exclusivity (refs == 1) for writes.
            let new_data = self.frames.data(frame).write(page_off, &data[off..off + n]);
            self.frames.set_data(frame, new_data);
            off += n;
        }
        Ok(())
    }

    /// Reads from the address space at `addr` into `buf` (kernel copyin).
    pub fn copyin(&mut self, map: &mut VmMap, addr: u64, buf: &mut [u8]) -> Result<()> {
        let mut off = 0usize;
        while off < buf.len() {
            let cur = addr + off as u64;
            let page_off = (cur % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - page_off).min(buf.len() - off);
            let frame = self.fault(map, cur, Access::Read)?;
            self.frames.data(frame).read(page_off, &mut buf[off..off + n]);
            off += n;
        }
        Ok(())
    }

    /// Touches a whole range for writing with `Seeded` contents — used by
    /// benchmarks to model large working sets cheaply. Each page gets a
    /// deterministic seed derived from `(seed_base, page index)`.
    pub fn touch_seeded(
        &mut self,
        map: &mut VmMap,
        addr: u64,
        len: u64,
        seed_base: u64,
    ) -> Result<()> {
        let start_page = addr / PAGE_SIZE as u64;
        let pages = len.div_ceil(PAGE_SIZE as u64);
        for i in 0..pages {
            let a = (start_page + i) * PAGE_SIZE as u64;
            let frame = self.fault(map, a, Access::Write)?;
            // Mix the base before combining: a raw XOR would make nearby
            // seed bases produce shifted copies of each other's pages,
            // which dedup would then spuriously collapse.
            let seed =
                aurora_sim::rng::mix64(aurora_sim::rng::mix64(seed_base) ^ (start_page + i));
            self.frames.set_data(frame, PageData::Seeded(seed));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::Prot;
    use crate::pager::MemPager;
    use aurora_sim::SimClock;

    const P: u64 = PAGE_SIZE as u64;

    fn setup() -> (Vm, VmMap, u64) {
        let mut vm = Vm::new(SimClock::new());
        let mut map = VmMap::new();
        let addr = vm.map_anonymous(&mut map, 8 * P, Prot::RW, false).unwrap();
        (vm, map, addr)
    }

    #[test]
    fn zero_fill_then_readback() {
        let (mut vm, mut map, a) = setup();
        let mut buf = [0xFFu8; 16];
        vm.copyin(&mut map, a, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(vm.stats.zero_fills, 1);
    }

    #[test]
    fn copyout_copyin_roundtrip_across_pages() {
        let (mut vm, mut map, a) = setup();
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        // Deliberately unaligned start.
        vm.copyout(&mut map, a + 123, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        vm.copyin(&mut map, a + 123, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn unmapped_and_protection_faults() {
        let (mut vm, mut map, a) = setup();
        let mut buf = [0u8; 4];
        assert!(vm.copyin(&mut map, 0x10, &mut buf).is_err());
        vm.protect(&mut map, a, Prot::RO).unwrap();
        assert!(vm.copyout(&mut map, a, &[1]).is_err());
        assert!(vm.copyin(&mut map, a, &mut buf).is_ok());
    }

    #[test]
    fn fork_cow_isolates_parent_and_child() {
        let (mut vm, mut parent, a) = setup();
        vm.copyout(&mut parent, a, b"parent-data").unwrap();
        let mut child = vm.fork_map(&mut parent);

        // Child sees parent's data through the chain.
        let mut buf = [0u8; 11];
        vm.copyin(&mut child, a, &mut buf).unwrap();
        assert_eq!(&buf, b"parent-data");

        // Child writes; parent must not see it.
        vm.copyout(&mut child, a, b"child-data!").unwrap();
        vm.copyin(&mut parent, a, &mut buf).unwrap();
        assert_eq!(&buf, b"parent-data");
        vm.copyin(&mut child, a, &mut buf).unwrap();
        assert_eq!(&buf, b"child-data!");
        assert!(vm.stats.cow_faults >= 1);

        // Parent writes; child keeps its copy.
        vm.copyout(&mut parent, a, b"parent-new!").unwrap();
        vm.copyin(&mut child, a, &mut buf).unwrap();
        assert_eq!(&buf, b"child-data!");

        vm.destroy_map(&mut child);
        vm.destroy_map(&mut parent);
        assert_eq!(vm.live_objects(), 0);
        assert_eq!(vm.frames.allocated(), 0);
    }

    #[test]
    fn shared_mapping_propagates_writes_after_fork() {
        let mut vm = Vm::new(SimClock::new());
        let mut parent = VmMap::new();
        let a = vm.map_anonymous(&mut parent, P, Prot::RW, true).unwrap();
        vm.copyout(&mut parent, a, b"before").unwrap();
        let mut child = vm.fork_map(&mut parent);
        vm.copyout(&mut child, a, b"after!").unwrap();
        let mut buf = [0u8; 6];
        vm.copyin(&mut parent, a, &mut buf).unwrap();
        assert_eq!(&buf, b"after!", "shared memory must stay shared");
        vm.destroy_map(&mut child);
        vm.destroy_map(&mut parent);
    }

    #[test]
    fn aurora_cow_preserves_sharing_for_shared_frames() {
        // Two processes share an object; a checkpoint-style extra frame
        // reference exists. A write must replace the page in the shared
        // object (both procs see the new data) and leave the old frame
        // intact for the flusher.
        let mut vm = Vm::new(SimClock::new());
        let mut m1 = VmMap::new();
        let a = vm.map_anonymous(&mut m1, P, Prot::RW, true).unwrap();
        vm.copyout(&mut m1, a, b"original").unwrap();
        let obj = m1.find(a).unwrap().object;
        let mut m2 = VmMap::new();
        let b = vm.map_object(&mut m2, obj, 0, P, Prot::RW, true).unwrap();

        // Freeze the frame as a checkpoint would.
        let frame = vm.object(obj).page(0).unwrap().frame;
        vm.frames.ref_frame(frame);
        let old_data = vm.frames.data(frame).clone();

        // Writer in process 2 faults: Aurora COW.
        vm.copyout(&mut m2, b, b"modified").unwrap();
        assert_eq!(vm.stats.cow_faults, 1);

        // Both processes see the new data.
        let mut buf = [0u8; 8];
        vm.copyin(&mut m1, a, &mut buf).unwrap();
        assert_eq!(&buf, b"modified");
        vm.copyin(&mut m2, b, &mut buf).unwrap();
        assert_eq!(&buf, b"modified");

        // The frozen frame still holds the original contents.
        assert!(vm.frames.data(frame).content_eq(&old_data));
        let mut orig = [0u8; 8];
        vm.frames.data(frame).read(0, &mut orig);
        assert_eq!(&orig, b"original");
        vm.frames.unref(frame);
        vm.destroy_map(&mut m1);
        vm.destroy_map(&mut m2);
    }

    #[test]
    fn exactly_one_cow_per_armed_page() {
        let (mut vm, mut map, a) = setup();
        vm.copyout(&mut map, a, b"x").unwrap();
        let obj = map.find(a).unwrap().object;
        let frame = vm.object(obj).page(0).unwrap().frame;
        vm.frames.ref_frame(frame); // arm
        vm.copyout(&mut map, a, b"y").unwrap();
        assert_eq!(vm.stats.cow_faults, 1);
        vm.copyout(&mut map, a, b"z").unwrap();
        vm.copyout(&mut map, a, b"w").unwrap();
        assert_eq!(vm.stats.cow_faults, 1, "subsequent writes are free");
        vm.frames.unref(frame);
    }

    #[test]
    fn pager_supplies_missing_pages() {
        let mut vm = Vm::new(SimClock::new());
        let mut map = VmMap::new();
        let a = vm.map_anonymous(&mut map, 4 * P, Prot::RW, false).unwrap();
        let obj = map.find(a).unwrap().object;

        let mut pager = MemPager::new();
        pager.preload(77, 1, PageData::Seeded(1234));
        let pid = vm.register_pager(Box::new(pager));
        vm.object_mut(obj).pager = Some((pid, 77));

        // Page 1 comes from the pager (major fault)...
        let mut buf = vec![0u8; PAGE_SIZE];
        vm.copyin(&mut map, a + P, &mut buf).unwrap();
        assert_eq!(buf, PageData::Seeded(1234).materialize());
        assert_eq!(vm.stats.major_faults, 1);
        // ...page 2 is zero-filled (the pager has nothing for it).
        vm.copyin(&mut map, a + 2 * P, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(vm.stats.zero_fills, 1);
    }

    #[test]
    fn write_epoch_stamping() {
        let (mut vm, mut map, a) = setup();
        vm.copyout(&mut map, a, b"1").unwrap();
        let obj = map.find(a).unwrap().object;
        assert_eq!(vm.object(obj).page(0).unwrap().write_epoch, 1);
        vm.epoch = 5;
        vm.copyout(&mut map, a + P, b"2").unwrap();
        assert_eq!(vm.object(obj).page(0).unwrap().write_epoch, 1);
        assert_eq!(vm.object(obj).page(1).unwrap().write_epoch, 5);
    }

    #[test]
    fn copyout_records_sub_page_dirty_extent() {
        // A 64-byte kernel write must report a dirty footprint of at most
        // 128 bytes — the heart of the delta-checkpoint optimization.
        let (mut vm, mut map, a) = setup();
        vm.copyout(&mut map, a + 256, &[0xAB; 64]).unwrap();
        let obj = map.find(a).unwrap().object;
        let mask = vm.object(obj).dirty.get(&0).expect("mask recorded");
        assert_eq!(mask.runs().unwrap(), &[(256, 64)]);
        assert!(mask.bytes().unwrap() <= 128);

        // A raw write fault on another page is conservatively full.
        vm.fault(&mut map, a + P, Access::Write).unwrap();
        let mask = vm.object(obj).dirty.get(&1).expect("mask recorded");
        assert!(mask.runs().is_none(), "untracked write marks the whole page");
    }

    #[test]
    fn copyout_straddling_pages_tracks_both_masks() {
        let (mut vm, mut map, a) = setup();
        // 100 bytes starting 30 bytes before a page boundary.
        vm.copyout(&mut map, a + P - 30, &[7u8; 100]).unwrap();
        let obj = map.find(a).unwrap().object;
        let m0 = vm.object(obj).dirty.get(&0).unwrap();
        assert_eq!(m0.runs().unwrap(), &[(PAGE_SIZE as u32 - 30, 30)]);
        let m1 = vm.object(obj).dirty.get(&1).unwrap();
        assert_eq!(m1.runs().unwrap(), &[(0, 70)]);
    }

    #[test]
    fn touch_seeded_populates_range() {
        let (mut vm, mut map, a) = setup();
        vm.touch_seeded(&mut map, a, 4 * P, 0xDEAD).unwrap();
        let obj = map.find(a).unwrap().object;
        assert_eq!(vm.object(obj).resident(), 4);
        // Pages differ from one another.
        let f0 = vm.object(obj).page(0).unwrap().frame;
        let f1 = vm.object(obj).page(1).unwrap().frame;
        assert!(!vm.frames.data(f0).content_eq(vm.frames.data(f1)));
    }
}
