//! VM objects and shadow chains.
//!
//! A VM object is a container of pages: an anonymous region, a file's page
//! cache, or a *shadow* — the Mach mechanism behind fork's copy-on-write,
//! where a small object holding only the privately modified pages sits in
//! front of a larger backing object. Aurora's checkpointer walks these
//! chains verbatim, and the restore path rebuilds them exactly, which is
//! how the paper "faithfully reproduces the entire memory hierarchy to
//! preserve page deduplication".

use std::collections::BTreeMap;

use crate::frame::FrameId;
use crate::pager::PagerId;

/// Identifier of a VM object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmoId(pub(crate) u32);

impl VmoId {
    /// Raw index (stable within a VM instance; used by serializers).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Reconstructs an id from a raw index (restore path).
    pub fn from_index(i: u32) -> VmoId {
        VmoId(i)
    }
}

/// What kind of memory an object represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmoKind {
    /// Anonymous (heap, stack, private mappings).
    Anonymous,
    /// A shadow object created by a fork-style COW split.
    Shadow,
    /// Named shared memory (SysV/POSIX shm keep their pages here).
    SharedMem,
    /// File-backed (the page cache of a vnode).
    Vnode {
        /// Opaque file identity assigned by the VFS layer.
        file_id: u64,
    },
}

/// A page resident in an object.
#[derive(Debug, Clone, Copy)]
pub struct ResidentPage {
    /// The physical frame holding the contents.
    pub frame: FrameId,
    /// Checkpoint epoch of the last write to this page.
    pub write_epoch: u64,
    /// Whether the page is write-protected for checkpoint COW.
    pub cow_protected: bool,
    /// Reference bit for the clock algorithm.
    pub referenced: bool,
    /// Accumulated access count (heat) for restore prefetch ordering.
    pub heat: u32,
}

/// A frame frozen at checkpoint time, awaiting flush.
#[derive(Debug, Clone, Copy)]
pub struct FrozenPage {
    /// Page index within the object.
    pub page_idx: u64,
    /// The frozen frame (holds one reference).
    pub frame: FrameId,
    /// The epoch of the checkpoint that froze it.
    pub epoch: u64,
}

/// A VM object.
#[derive(Debug)]
pub struct VmObject {
    /// Machine-unique identity (never reused, unlike `VmoId` slots).
    /// Checkpoint code keys its VM-object → store-object mapping by this.
    pub uid: u64,
    /// Object kind.
    pub kind: VmoKind,
    /// Resident pages by page index.
    pub pages: BTreeMap<u64, ResidentPage>,
    /// Shadow/backing link: `(object, page offset into backing)`.
    pub backing: Option<(VmoId, u64)>,
    /// Reference count (map entries + shadow children + kernel refs).
    pub refs: u32,
    /// Size in pages.
    pub size_pages: u64,
    /// Pager supplying non-resident pages (swap / lazy restore), with the
    /// key the pager uses to identify this object's backing store.
    pub pager: Option<(PagerId, u64)>,
    /// Frames frozen by an in-flight checkpoint, not yet flushed.
    pub frozen: Vec<FrozenPage>,
}

impl VmObject {
    /// Creates an object with one reference and no pages. The `uid` is
    /// assigned by [`crate::Vm::create_object`].
    pub fn new(kind: VmoKind, size_pages: u64) -> Self {
        VmObject {
            uid: 0,
            kind,
            pages: BTreeMap::new(),
            backing: None,
            refs: 1,
            size_pages,
            pager: None,
            frozen: Vec::new(),
        }
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.pages.len()
    }

    /// Looks up a resident page.
    pub fn page(&self, idx: u64) -> Option<&ResidentPage> {
        self.pages.get(&idx)
    }

    /// Inserts (or replaces) a resident page entry.
    ///
    /// The caller manages frame reference counts.
    pub fn insert_page(&mut self, idx: u64, page: ResidentPage) -> Option<ResidentPage> {
        self.pages.insert(idx, page)
    }

    /// Pages whose `write_epoch` is at least `since` (the incremental
    /// checkpoint dirty set).
    pub fn dirty_since(&self, since: u64) -> impl Iterator<Item = (u64, &ResidentPage)> {
        self.pages
            .iter()
            .filter(move |(_, p)| p.write_epoch >= since)
            .map(|(idx, p)| (*idx, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rp(frame: u32, epoch: u64) -> ResidentPage {
        ResidentPage {
            frame: FrameId(frame),
            write_epoch: epoch,
            cow_protected: false,
            referenced: false,
            heat: 0,
        }
    }

    #[test]
    fn dirty_since_filters_by_epoch() {
        let mut o = VmObject::new(VmoKind::Anonymous, 16);
        o.insert_page(0, rp(0, 1));
        o.insert_page(1, rp(1, 3));
        o.insert_page(2, rp(2, 5));
        let dirty: Vec<u64> = o.dirty_since(3).map(|(i, _)| i).collect();
        assert_eq!(dirty, vec![1, 2]);
        assert_eq!(o.dirty_since(6).count(), 0);
        assert_eq!(o.dirty_since(0).count(), 3);
    }

    #[test]
    fn insert_replaces() {
        let mut o = VmObject::new(VmoKind::Anonymous, 4);
        assert!(o.insert_page(0, rp(0, 1)).is_none());
        let old = o.insert_page(0, rp(7, 2)).unwrap();
        assert_eq!(old.frame, FrameId(0));
        assert_eq!(o.resident(), 1);
        assert_eq!(o.page(0).unwrap().frame, FrameId(7));
    }
}
