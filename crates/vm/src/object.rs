//! VM objects and shadow chains.
//!
//! A VM object is a container of pages: an anonymous region, a file's page
//! cache, or a *shadow* — the Mach mechanism behind fork's copy-on-write,
//! where a small object holding only the privately modified pages sits in
//! front of a larger backing object. Aurora's checkpointer walks these
//! chains verbatim, and the restore path rebuilds them exactly, which is
//! how the paper "faithfully reproduces the entire memory hierarchy to
//! preserve page deduplication".

use std::collections::BTreeMap;

use crate::frame::FrameId;
use crate::pager::PagerId;

/// Identifier of a VM object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmoId(pub(crate) u32);

impl VmoId {
    /// Raw index (stable within a VM instance; used by serializers).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Reconstructs an id from a raw index (restore path).
    pub fn from_index(i: u32) -> VmoId {
        VmoId(i)
    }
}

/// What kind of memory an object represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmoKind {
    /// Anonymous (heap, stack, private mappings).
    Anonymous,
    /// A shadow object created by a fork-style COW split.
    Shadow,
    /// Named shared memory (SysV/POSIX shm keep their pages here).
    SharedMem,
    /// File-backed (the page cache of a vnode).
    Vnode {
        /// Opaque file identity assigned by the VFS layer.
        file_id: u64,
    },
}

/// Maximum dirty runs tracked per page before the mask collapses to
/// [`DirtyMask::Full`]. Scattered writes past this point would cost more
/// in delta-record framing than the extents save.
pub const MAX_DIRTY_RUNS: usize = 16;

/// Sub-page dirty footprint of one resident page since its last capture.
///
/// Precise byte ranges come from `copyout` (the kernel knows exactly what
/// it wrote); raw write faults and seeded touches conservatively mark the
/// whole page. The flusher uses `Runs` to stage compact delta records
/// instead of rewriting 4 KiB images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirtyMask {
    /// The whole page must be treated as dirty.
    Full,
    /// Sorted, coalesced `(offset, len)` byte runs within the page.
    Runs(Vec<(u32, u32)>),
}

impl Default for DirtyMask {
    fn default() -> Self {
        DirtyMask::Runs(Vec::new())
    }
}

impl DirtyMask {
    /// Records a write of `len` bytes at `off`, coalescing overlapping
    /// and adjacent runs. Collapses to `Full` past [`MAX_DIRTY_RUNS`].
    pub fn note(&mut self, off: u32, len: u32) {
        let DirtyMask::Runs(runs) = self else {
            return;
        };
        if len == 0 {
            return;
        }
        runs.push((off, len));
        runs.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(runs.len());
        for &(o, l) in runs.iter() {
            match merged.last_mut() {
                Some((po, pl)) if o <= *po + *pl => {
                    *pl = (*pl).max(o + l - *po);
                }
                _ => merged.push((o, l)),
            }
        }
        if merged.len() > MAX_DIRTY_RUNS {
            *self = DirtyMask::Full;
        } else {
            *runs = merged;
        }
    }

    /// Total dirty bytes (`None` for a full page — the caller compares
    /// against the page size itself).
    pub fn bytes(&self) -> Option<u64> {
        match self {
            DirtyMask::Full => None,
            DirtyMask::Runs(runs) => Some(runs.iter().map(|&(_, l)| l as u64).sum()),
        }
    }

    /// The runs, or `None` for a full page.
    pub fn runs(&self) -> Option<&[(u32, u32)]> {
        match self {
            DirtyMask::Full => None,
            DirtyMask::Runs(runs) => Some(runs),
        }
    }
}

/// A page resident in an object.
#[derive(Debug, Clone, Copy)]
pub struct ResidentPage {
    /// The physical frame holding the contents.
    pub frame: FrameId,
    /// Checkpoint epoch of the last write to this page.
    pub write_epoch: u64,
    /// Whether the page is write-protected for checkpoint COW.
    pub cow_protected: bool,
    /// Reference bit for the clock algorithm.
    pub referenced: bool,
    /// Accumulated access count (heat) for restore prefetch ordering.
    pub heat: u32,
}

/// A frame frozen at checkpoint time, awaiting flush.
#[derive(Debug, Clone, Copy)]
pub struct FrozenPage {
    /// Page index within the object.
    pub page_idx: u64,
    /// The frozen frame (holds one reference).
    pub frame: FrameId,
    /// The epoch of the checkpoint that froze it.
    pub epoch: u64,
}

/// A VM object.
#[derive(Debug)]
pub struct VmObject {
    /// Machine-unique identity (never reused, unlike `VmoId` slots).
    /// Checkpoint code keys its VM-object → store-object mapping by this.
    pub uid: u64,
    /// Object kind.
    pub kind: VmoKind,
    /// Resident pages by page index.
    pub pages: BTreeMap<u64, ResidentPage>,
    /// Shadow/backing link: `(object, page offset into backing)`.
    pub backing: Option<(VmoId, u64)>,
    /// Reference count (map entries + shadow children + kernel refs).
    pub refs: u32,
    /// Size in pages.
    pub size_pages: u64,
    /// Pager supplying non-resident pages (swap / lazy restore), with the
    /// key the pager uses to identify this object's backing store.
    pub pager: Option<(PagerId, u64)>,
    /// Frames frozen by an in-flight checkpoint, not yet flushed.
    pub frozen: Vec<FrozenPage>,
    /// Sub-page dirty footprints since each page's last capture. A page
    /// written through an untracked path simply has no entry, which the
    /// flusher reads as [`DirtyMask::Full`] — precision is an
    /// optimization, never a correctness requirement.
    pub dirty: BTreeMap<u64, DirtyMask>,
}

impl VmObject {
    /// Creates an object with one reference and no pages. The `uid` is
    /// assigned by [`crate::Vm::create_object`].
    pub fn new(kind: VmoKind, size_pages: u64) -> Self {
        VmObject {
            uid: 0,
            kind,
            pages: BTreeMap::new(),
            backing: None,
            refs: 1,
            size_pages,
            pager: None,
            frozen: Vec::new(),
            dirty: BTreeMap::new(),
        }
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.pages.len()
    }

    /// Looks up a resident page.
    pub fn page(&self, idx: u64) -> Option<&ResidentPage> {
        self.pages.get(&idx)
    }

    /// Inserts (or replaces) a resident page entry.
    ///
    /// The caller manages frame reference counts.
    pub fn insert_page(&mut self, idx: u64, page: ResidentPage) -> Option<ResidentPage> {
        self.pages.insert(idx, page)
    }

    /// Pages whose `write_epoch` is at least `since` (the incremental
    /// checkpoint dirty set).
    pub fn dirty_since(&self, since: u64) -> impl Iterator<Item = (u64, &ResidentPage)> {
        self.pages
            .iter()
            .filter(move |(_, p)| p.write_epoch >= since)
            .map(|(idx, p)| (*idx, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rp(frame: u32, epoch: u64) -> ResidentPage {
        ResidentPage {
            frame: FrameId(frame),
            write_epoch: epoch,
            cow_protected: false,
            referenced: false,
            heat: 0,
        }
    }

    #[test]
    fn dirty_since_filters_by_epoch() {
        let mut o = VmObject::new(VmoKind::Anonymous, 16);
        o.insert_page(0, rp(0, 1));
        o.insert_page(1, rp(1, 3));
        o.insert_page(2, rp(2, 5));
        let dirty: Vec<u64> = o.dirty_since(3).map(|(i, _)| i).collect();
        assert_eq!(dirty, vec![1, 2]);
        assert_eq!(o.dirty_since(6).count(), 0);
        assert_eq!(o.dirty_since(0).count(), 3);
    }

    #[test]
    fn dirty_mask_coalesces_adjacent_and_overlapping_runs() {
        let mut m = DirtyMask::default();
        m.note(100, 50);
        m.note(150, 50); // Adjacent: merges.
        m.note(120, 10); // Contained: absorbed.
        assert_eq!(m.runs().unwrap(), &[(100, 100)]);
        assert_eq!(m.bytes(), Some(100));
        m.note(300, 8); // Disjoint: second run.
        assert_eq!(m.runs().unwrap().len(), 2);
        assert_eq!(m.bytes(), Some(108));
    }

    #[test]
    fn dirty_mask_collapses_to_full_past_run_cap() {
        let mut m = DirtyMask::default();
        for i in 0..(MAX_DIRTY_RUNS as u32 + 1) {
            m.note(i * 100, 1); // All disjoint.
        }
        assert_eq!(m, DirtyMask::Full);
        assert_eq!(m.bytes(), None);
        // Full is absorbing.
        m.note(0, 1);
        assert_eq!(m, DirtyMask::Full);
    }

    #[test]
    fn insert_replaces() {
        let mut o = VmObject::new(VmoKind::Anonymous, 4);
        assert!(o.insert_page(0, rp(0, 1)).is_none());
        let old = o.insert_page(0, rp(7, 2)).unwrap();
        assert_eq!(old.frame, FrameId(0));
        assert_eq!(o.resident(), 1);
        assert_eq!(o.page(0).unwrap().frame, FrameId(7));
    }
}
