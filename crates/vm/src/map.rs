//! Per-process address spaces.
//!
//! A [`VmMap`] is a sorted set of [`MapEntry`]s, each wiring a virtual
//! address range to a window of a VM object. Entries carry the Aurora
//! policy bits controlled by `sls_mctl`: a region can be excluded from
//! checkpoints entirely, or hinted for eager/lazy restore.

use std::collections::BTreeMap;

use aurora_sim::error::{Error, Result};

use crate::object::{VmoId, VmoKind};
use crate::page::PAGE_SIZE;
use crate::Vm;

/// Protection bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prot {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
}

impl Prot {
    /// Read-only.
    pub const RO: Prot = Prot {
        read: true,
        write: false,
    };
    /// Read-write.
    pub const RW: Prot = Prot {
        read: true,
        write: true,
    };
}

/// Restore-policy hints for a region (set via `sls_mctl`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestoreHint {
    /// Let the pageout heat ranking decide (default).
    #[default]
    Auto,
    /// Page the region in eagerly at restore.
    Eager,
    /// Always restore lazily, even hot pages.
    Lazy,
}

/// Aurora per-region policy (the `sls_mctl` knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlsPolicy {
    /// Exclude this region from checkpoints (e.g. scratch buffers).
    pub exclude: bool,
    /// Restore paging hint.
    pub restore: RestoreHint,
}

/// One mapping: `[start, end)` → `object[offset_pages ..]`.
#[derive(Debug, Clone)]
pub struct MapEntry {
    /// First mapped address (page aligned).
    pub start: u64,
    /// One past the last mapped address (page aligned).
    pub end: u64,
    /// The mapped object.
    pub object: VmoId,
    /// Offset into the object, in pages.
    pub offset_pages: u64,
    /// Protection.
    pub prot: Prot,
    /// Shared mapping (writes visible to other mappers) vs private.
    pub shared: bool,
    /// Fork-COW pending: the next write fault must shadow-split.
    pub needs_copy: bool,
    /// Aurora checkpoint policy.
    pub policy: SlsPolicy,
}

impl MapEntry {
    /// Pages covered by this entry.
    pub fn pages(&self) -> u64 {
        (self.end - self.start) / PAGE_SIZE as u64
    }

    /// The object page index backing address `addr`.
    pub fn page_index(&self, addr: u64) -> u64 {
        debug_assert!(addr >= self.start && addr < self.end);
        self.offset_pages + (addr - self.start) / PAGE_SIZE as u64
    }
}

/// Lowest mappable user address.
pub const USER_BASE: u64 = 0x0000_0000_0001_0000;
/// Highest mappable user address (47-bit canonical space).
pub const USER_TOP: u64 = 0x0000_7FFF_FFFF_0000;

/// A process address space.
#[derive(Debug, Default)]
pub struct VmMap {
    entries: BTreeMap<u64, MapEntry>,
    /// Bump hint for fresh anonymous mappings.
    next_hint: u64,
}

impl VmMap {
    /// Creates an empty address space.
    pub fn new() -> Self {
        VmMap {
            entries: BTreeMap::new(),
            next_hint: USER_BASE,
        }
    }

    /// Iterates entries in address order.
    pub fn entries(&self) -> impl Iterator<Item = &MapEntry> {
        self.entries.values()
    }

    /// Iterates entries mutably.
    pub fn entries_mut(&mut self) -> impl Iterator<Item = &mut MapEntry> {
        self.entries.values_mut()
    }

    /// Number of map entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total mapped pages.
    pub fn total_pages(&self) -> u64 {
        self.entries.values().map(|e| e.pages()).sum()
    }

    /// Finds the entry containing `addr`.
    pub fn find(&self, addr: u64) -> Option<&MapEntry> {
        self.entries
            .range(..=addr)
            .next_back()
            .map(|(_, e)| e)
            .filter(|e| addr < e.end)
    }

    /// Finds the entry containing `addr`, mutably.
    pub fn find_mut(&mut self, addr: u64) -> Option<&mut MapEntry> {
        self.entries
            .range_mut(..=addr)
            .next_back()
            .map(|(_, e)| e)
            .filter(|e| addr < e.end)
    }

    /// Finds a free gap of `len` bytes at or above the hint.
    fn find_gap(&self, len: u64) -> Option<u64> {
        let mut candidate = self.next_hint.max(USER_BASE);
        loop {
            if candidate + len > USER_TOP {
                // Wrap once and search from the bottom.
                if self.next_hint == USER_BASE {
                    return None;
                }
                candidate = USER_BASE;
            }
            // The entry at or before the candidate must end by it; the
            // entry after must start after the candidate range.
            if let Some((_, prev)) = self.entries.range(..=candidate).next_back() {
                if prev.end > candidate {
                    candidate = prev.end;
                    continue;
                }
            }
            if let Some((_, next)) = self.entries.range(candidate..).next() {
                if next.start < candidate + len {
                    candidate = next.end;
                    continue;
                }
            }
            return Some(candidate);
        }
    }

    /// Inserts an entry (internal; ranges must not overlap).
    fn insert(&mut self, entry: MapEntry) {
        debug_assert!(entry.start < entry.end);
        debug_assert!(entry.start.is_multiple_of(PAGE_SIZE as u64));
        self.entries.insert(entry.start, entry);
    }

    /// Installs a fully formed entry at its recorded address (restore
    /// path). The caller holds the object reference this entry consumes.
    pub fn install_entry(&mut self, entry: MapEntry) {
        self.next_hint = self.next_hint.max(entry.end);
        self.insert(entry);
    }
}

impl Vm {
    /// Maps `len` bytes of fresh anonymous memory.
    ///
    /// Returns the chosen base address. `shared` controls whether fork
    /// children share writes (the SysV-shm-like behaviour) or get COW
    /// copies.
    pub fn map_anonymous(
        &mut self,
        map: &mut VmMap,
        len: u64,
        prot: Prot,
        shared: bool,
    ) -> Result<u64> {
        if len == 0 || !len.is_multiple_of(PAGE_SIZE as u64) {
            return Err(Error::invalid(format!("bad mapping length {len}")));
        }
        let addr = map
            .find_gap(len)
            .ok_or_else(|| Error::no_memory("address space exhausted"))?;
        let kind = if shared {
            VmoKind::SharedMem
        } else {
            VmoKind::Anonymous
        };
        let object = self.create_object(kind, len / PAGE_SIZE as u64);
        map.insert(MapEntry {
            start: addr,
            end: addr + len,
            object,
            offset_pages: 0,
            prot,
            shared,
            needs_copy: false,
            policy: SlsPolicy::default(),
        });
        map.next_hint = addr + len;
        Ok(addr)
    }

    /// Maps an existing object (shared memory attach, file mapping).
    ///
    /// Takes a new reference on the object.
    pub fn map_object(
        &mut self,
        map: &mut VmMap,
        object: VmoId,
        offset_pages: u64,
        len: u64,
        prot: Prot,
        shared: bool,
    ) -> Result<u64> {
        if len == 0 || !len.is_multiple_of(PAGE_SIZE as u64) {
            return Err(Error::invalid(format!("bad mapping length {len}")));
        }
        let addr = map
            .find_gap(len)
            .ok_or_else(|| Error::no_memory("address space exhausted"))?;
        self.ref_object(object);
        map.insert(MapEntry {
            start: addr,
            end: addr + len,
            object,
            offset_pages,
            prot,
            shared,
            needs_copy: !shared,
            policy: SlsPolicy::default(),
        });
        map.next_hint = addr + len;
        Ok(addr)
    }

    /// Unmaps the entry containing `addr` (whole-entry granularity).
    pub fn unmap(&mut self, map: &mut VmMap, addr: u64) -> Result<()> {
        let start = map
            .find(addr)
            .map(|e| e.start)
            .ok_or_else(|| Error::fault(format!("unmap: {addr:#x} not mapped")))?;
        let entry = map.entries.remove(&start).expect("entry just found");
        self.unref_object(entry.object);
        Ok(())
    }

    /// Changes protection of the entry containing `addr`.
    pub fn protect(&mut self, map: &mut VmMap, addr: u64, prot: Prot) -> Result<()> {
        let entry = map
            .find_mut(addr)
            .ok_or_else(|| Error::fault(format!("protect: {addr:#x} not mapped")))?;
        entry.prot = prot;
        Ok(())
    }

    /// Updates the Aurora policy of the entry containing `addr`
    /// (the kernel half of `sls_mctl`).
    pub fn set_policy(&mut self, map: &mut VmMap, addr: u64, policy: SlsPolicy) -> Result<()> {
        let entry = map
            .find_mut(addr)
            .ok_or_else(|| Error::fault(format!("mctl: {addr:#x} not mapped")))?;
        entry.policy = policy;
        Ok(())
    }

    /// Duplicates an address space for fork.
    ///
    /// Shared entries alias the same object. Private entries go
    /// copy-on-write: both parent and child keep referencing the original
    /// object with `needs_copy` set, and the first write fault on either
    /// side pushes a shadow object (see [`crate::fault`]). Charges one PTE
    /// copy per resident page, like a real fork.
    pub fn fork_map(&mut self, parent: &mut VmMap) -> VmMap {
        let mut child = VmMap::new();
        child.next_hint = parent.next_hint;
        let mut pte_copies = 0u64;
        for entry in parent.entries.values_mut() {
            self.ref_object(entry.object);
            let mut child_entry = entry.clone();
            if !entry.shared {
                entry.needs_copy = true;
                child_entry.needs_copy = true;
            }
            pte_copies += self.objects_resident_range(
                entry.object,
                entry.offset_pages,
                entry.pages(),
            );
            child.insert(child_entry);
        }
        self.clock.charge(aurora_sim::time::SimDuration::from_nanos(
            pte_copies * aurora_sim::cost::PTE_COPY_NS,
        ));
        child
    }

    /// Counts resident pages of `object` within `[offset, offset+pages)`.
    fn objects_resident_range(&self, object: VmoId, offset: u64, pages: u64) -> u64 {
        self.object(object)
            .pages
            .range(offset..offset + pages)
            .count() as u64
    }

    /// Destroys an address space, releasing every object reference.
    pub fn destroy_map(&mut self, map: &mut VmMap) {
        let entries = core::mem::take(&mut map.entries);
        for (_, entry) in entries {
            self.unref_object(entry.object);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_sim::SimClock;

    #[test]
    fn anonymous_mappings_do_not_overlap() {
        let mut vm = Vm::new(SimClock::new());
        let mut map = VmMap::new();
        let a = vm
            .map_anonymous(&mut map, 4 * PAGE_SIZE as u64, Prot::RW, false)
            .unwrap();
        let b = vm
            .map_anonymous(&mut map, 4 * PAGE_SIZE as u64, Prot::RW, false)
            .unwrap();
        assert!(b >= a + 4 * PAGE_SIZE as u64 || a >= b + 4 * PAGE_SIZE as u64);
        assert_eq!(map.len(), 2);
        assert_eq!(map.total_pages(), 8);
    }

    #[test]
    fn find_resolves_interior_addresses() {
        let mut vm = Vm::new(SimClock::new());
        let mut map = VmMap::new();
        let a = vm
            .map_anonymous(&mut map, 2 * PAGE_SIZE as u64, Prot::RW, false)
            .unwrap();
        assert!(map.find(a).is_some());
        assert!(map.find(a + 100).is_some());
        assert!(map.find(a + 2 * PAGE_SIZE as u64).is_none());
        assert!(map.find(a.wrapping_sub(1)).is_none());
    }

    #[test]
    fn unmap_releases_object() {
        let mut vm = Vm::new(SimClock::new());
        let mut map = VmMap::new();
        let a = vm
            .map_anonymous(&mut map, PAGE_SIZE as u64, Prot::RW, false)
            .unwrap();
        assert_eq!(vm.live_objects(), 1);
        vm.unmap(&mut map, a).unwrap();
        assert_eq!(vm.live_objects(), 0);
        assert!(vm.unmap(&mut map, a).is_err());
    }

    #[test]
    fn fork_shares_objects_and_sets_needs_copy() {
        let mut vm = Vm::new(SimClock::new());
        let mut parent = VmMap::new();
        vm.map_anonymous(&mut parent, PAGE_SIZE as u64, Prot::RW, false)
            .unwrap();
        vm.map_anonymous(&mut parent, PAGE_SIZE as u64, Prot::RW, true)
            .unwrap();
        let child = vm.fork_map(&mut parent);
        assert_eq!(child.len(), 2);
        let p: Vec<_> = parent.entries().collect();
        let c: Vec<_> = child.entries().collect();
        // Private entry: both sides flagged needs_copy.
        assert!(p[0].needs_copy && c[0].needs_copy);
        // Shared entry: no COW.
        assert!(!p[1].needs_copy && !c[1].needs_copy);
        assert_eq!(p[0].object, c[0].object);
        // Two references per object now.
        assert_eq!(vm.object(p[0].object).refs, 2);
    }

    #[test]
    fn destroy_map_releases_everything() {
        let mut vm = Vm::new(SimClock::new());
        let mut parent = VmMap::new();
        vm.map_anonymous(&mut parent, PAGE_SIZE as u64, Prot::RW, false)
            .unwrap();
        let mut child = vm.fork_map(&mut parent);
        vm.destroy_map(&mut child);
        assert_eq!(vm.live_objects(), 1);
        vm.destroy_map(&mut parent);
        assert_eq!(vm.live_objects(), 0);
    }

    #[test]
    fn bad_lengths_rejected() {
        let mut vm = Vm::new(SimClock::new());
        let mut map = VmMap::new();
        assert!(vm.map_anonymous(&mut map, 0, Prot::RW, false).is_err());
        assert!(vm.map_anonymous(&mut map, 100, Prot::RW, false).is_err());
    }
}
