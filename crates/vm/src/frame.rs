//! The physical frame table.
//!
//! Frames are reference counted: a frame may simultaneously be resident in
//! a VM object, frozen for an in-flight checkpoint flush, and shared with
//! a restored image (the paper: "No memory is copied, since Aurora uses
//! COW semantics to share pages between the image and the running
//! application"). The table is a slab with an embedded free list.

use crate::page::PageData;

/// Identifier of a physical frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub(crate) u32);

#[derive(Debug)]
struct Frame {
    data: PageData,
    refs: u32,
}

/// The frame table.
#[derive(Debug, Default)]
pub struct FrameTable {
    frames: Vec<Option<Frame>>,
    free: Vec<u32>,
    allocated: usize,
    /// High-water mark of simultaneously allocated frames.
    peak: usize,
}

impl FrameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FrameTable::default()
    }

    /// Allocates a frame holding `data`, with one reference.
    pub fn alloc(&mut self, data: PageData) -> FrameId {
        self.allocated += 1;
        self.peak = self.peak.max(self.allocated);
        let frame = Frame { data, refs: 1 };
        match self.free.pop() {
            Some(slot) => {
                self.frames[slot as usize] = Some(frame);
                FrameId(slot)
            }
            None => {
                self.frames.push(Some(frame));
                FrameId(self.frames.len() as u32 - 1)
            }
        }
    }

    fn frame(&self, id: FrameId) -> &Frame {
        self.frames[id.0 as usize]
            .as_ref()
            .expect("stale FrameId: frame already freed")
    }

    fn frame_mut(&mut self, id: FrameId) -> &mut Frame {
        self.frames[id.0 as usize]
            .as_mut()
            .expect("stale FrameId: frame already freed")
    }

    /// Takes an additional reference on a frame.
    pub fn ref_frame(&mut self, id: FrameId) {
        self.frame_mut(id).refs += 1;
    }

    /// Drops a reference, freeing the frame at zero.
    pub fn unref(&mut self, id: FrameId) {
        let frame = self.frame_mut(id);
        debug_assert!(frame.refs > 0, "unref of free frame");
        frame.refs -= 1;
        if frame.refs == 0 {
            self.frames[id.0 as usize] = None;
            self.free.push(id.0);
            self.allocated -= 1;
        }
    }

    /// Reference count of a frame (test/introspection).
    pub fn refs(&self, id: FrameId) -> u32 {
        self.frame(id).refs
    }

    /// The page contents of a frame.
    pub fn data(&self, id: FrameId) -> &PageData {
        &self.frame(id).data
    }

    /// Replaces the contents of a frame in place.
    ///
    /// Only legal for exclusively owned frames: overwriting a shared frame
    /// would be a COW violation, which is exactly the bug class the Aurora
    /// fault handler exists to prevent.
    ///
    /// # Panics
    ///
    /// Panics if the frame has more than one reference.
    pub fn set_data(&mut self, id: FrameId, data: PageData) {
        let frame = self.frame_mut(id);
        assert_eq!(
            frame.refs, 1,
            "in-place write to a shared frame (COW violation)"
        );
        frame.data = data;
    }

    /// True if the frame id refers to a live frame.
    pub fn exists(&self, id: FrameId) -> bool {
        self.frames
            .get(id.0 as usize)
            .is_some_and(|f| f.is_some())
    }

    /// Number of live frames.
    pub fn allocated(&self) -> usize {
        self.allocated
    }

    /// High-water mark of live frames.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle_reuses_slots() {
        let mut t = FrameTable::new();
        let a = t.alloc(PageData::Zero);
        let b = t.alloc(PageData::Seeded(1));
        assert_eq!(t.allocated(), 2);
        t.unref(a);
        assert_eq!(t.allocated(), 1);
        assert!(!t.exists(a));
        let c = t.alloc(PageData::Zero);
        assert_eq!(c.0, a.0, "slot reused");
        t.unref(b);
        t.unref(c);
        assert_eq!(t.allocated(), 0);
        assert_eq!(t.peak(), 2);
    }

    #[test]
    fn refcounting_keeps_frames_alive() {
        let mut t = FrameTable::new();
        let f = t.alloc(PageData::Seeded(9));
        t.ref_frame(f);
        assert_eq!(t.refs(f), 2);
        t.unref(f);
        assert!(t.exists(f));
        t.unref(f);
        assert!(!t.exists(f));
    }

    #[test]
    #[should_panic(expected = "COW violation")]
    fn shared_frame_write_panics() {
        let mut t = FrameTable::new();
        let f = t.alloc(PageData::Zero);
        t.ref_frame(f);
        t.set_data(f, PageData::Seeded(1));
    }

    #[test]
    fn exclusive_frame_write_ok() {
        let mut t = FrameTable::new();
        let f = t.alloc(PageData::Zero);
        t.set_data(f, PageData::Seeded(5));
        assert_eq!(*t.data(f), PageData::Seeded(5));
    }
}
