//! Checkpoint epochs: arming pages and collecting dirty sets.
//!
//! At a serialization barrier the orchestrator calls [`begin_epoch`] over
//! the address spaces of a persistence group. For every page that must be
//! part of the checkpoint — all resident pages for a *full* checkpoint,
//! only pages written since the previous checkpoint for an *incremental*
//! one — the page is **armed**: its frame gains a reference (freezing the
//! contents; the next write triggers Aurora COW) and one page-table
//! manipulation cost is charged. This charge is precisely the paper's
//! "lazy data copy" line in Table 3: for a 2 GiB working set a full
//! checkpoint arms 524 288 pages (~5 ms) while an incremental one arms
//! only the recent dirty set (<1 ms).
//!
//! The collected [`EpochPlan`] hands the frozen frames to the flusher,
//! which writes them out asynchronously and then releases them via
//! [`release_flushed`]. A page is therefore never flushed twice, even
//! when shared by many processes: objects are visited once per plan.

use std::collections::HashSet;

use aurora_sim::cost;
use aurora_sim::time::SimDuration;

use crate::frame::FrameId;
use crate::map::VmMap;
use crate::object::{DirtyMask, VmoId};
use crate::page::PAGE_SIZE;
use crate::Vm;

/// One frozen page awaiting flush.
#[derive(Debug, Clone)]
pub struct FlushPage {
    /// The object the page belongs to.
    pub object: VmoId,
    /// Page index within the object.
    pub page_idx: u64,
    /// The frozen frame (holds one reference owned by the plan).
    pub frame: FrameId,
    /// Dirty footprint since the page's previous capture, snapshotted
    /// (and cleared) at arm time. `Full` when unknown or for a full
    /// capture; `Runs` lets the flusher append a sub-page delta record
    /// instead of a 4 KiB image.
    pub dirty: DirtyMask,
}

/// The result of arming a checkpoint epoch.
#[derive(Debug, Default)]
pub struct EpochPlan {
    /// Epoch number this checkpoint captured.
    pub epoch: u64,
    /// Pages armed (PTE manipulations performed).
    pub armed_pages: u64,
    /// Frozen pages to flush, with one frame reference each.
    pub flush: Vec<FlushPage>,
    /// Objects visited (for metadata serialization bookkeeping).
    pub objects: Vec<VmoId>,
}

impl EpochPlan {
    /// Total bytes the flusher will write for page data.
    pub fn flush_bytes(&self) -> u64 {
        self.flush.len() as u64 * PAGE_SIZE as u64
    }
}

/// Selects which pages a checkpoint captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Capture {
    /// Every resident page (full checkpoint).
    Full,
    /// Pages with `write_epoch >= since` (incremental checkpoint).
    DirtySince(u64),
}

/// Arms a checkpoint epoch across the given address spaces.
///
/// Visits each reachable VM object exactly once (shared objects are not
/// double-captured), arms the selected pages, bumps `vm.epoch`, and
/// returns the flush plan. Regions excluded via `sls_mctl` are skipped.
pub fn begin_epoch(vm: &mut Vm, maps: &[&VmMap], capture: Capture) -> EpochPlan {
    let mut plan = EpochPlan {
        epoch: vm.epoch,
        ..EpochPlan::default()
    };
    let mut visited: HashSet<VmoId> = HashSet::new();

    for map in maps {
        for entry in map.entries() {
            if entry.policy.exclude {
                continue;
            }
            // Walk the whole shadow chain: backing objects hold the
            // deduplicated history and must be captured (once) too.
            let mut cur = Some(entry.object);
            while let Some(oid) = cur {
                if !visited.insert(oid) {
                    break; // Chain tail already captured via another path.
                }
                plan.objects.push(oid);
                arm_object(vm, oid, capture, &mut plan);
                cur = vm.object(oid).backing.map(|(b, _)| b);
            }
        }
    }

    vm.stats.pages_armed += plan.armed_pages;
    vm.clock.charge(SimDuration::from_nanos(
        plan.armed_pages * cost::PTE_COW_ARM_NS,
    ));
    vm.epoch += 1;
    plan
}

/// Arms the selected pages of one object.
fn arm_object(vm: &mut Vm, oid: VmoId, capture: Capture, plan: &mut EpochPlan) {
    // Collect first to keep the borrow checker happy; objects in the plan
    // are typically a tiny fraction of the page count.
    let selected: Vec<(u64, FrameId)> = {
        let obj = vm.object(oid);
        match capture {
            Capture::Full => obj.pages.iter().map(|(i, p)| (*i, p.frame)).collect(),
            Capture::DirtySince(since) => obj
                .dirty_since(since)
                .map(|(i, p)| (i, p.frame))
                .collect(),
        }
    };
    for (idx, frame) in selected {
        vm.frames.ref_frame(frame);
        // Consume the page's dirty mask: the frozen frame is about to be
        // made durable, so the next epoch's footprint starts empty. A
        // full capture flushes whole images regardless of the mask, and a
        // page with no recorded mask is conservatively fully dirty.
        let mask = vm.object_mut(oid).dirty.remove(&idx);
        let dirty = match capture {
            Capture::Full => DirtyMask::Full,
            Capture::DirtySince(_) => mask.unwrap_or(DirtyMask::Full),
        };
        let page = vm
            .object_mut(oid)
            .pages
            .get_mut(&idx)
            .expect("page listed above is resident");
        page.cow_protected = true;
        plan.armed_pages += 1;
        plan.flush.push(FlushPage {
            object: oid,
            page_idx: idx,
            frame,
            dirty,
        });
    }
}

/// Releases the plan's frame references after the flusher is done.
pub fn release_flushed(vm: &mut Vm, plan: &EpochPlan) {
    for fp in &plan.flush {
        vm.frames.unref(fp.frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{Prot, SlsPolicy};
    use aurora_sim::SimClock;

    const P: u64 = PAGE_SIZE as u64;

    #[test]
    fn full_captures_all_resident_pages() {
        let mut vm = Vm::new(SimClock::new());
        let mut map = VmMap::new();
        let a = vm.map_anonymous(&mut map, 8 * P, Prot::RW, false).unwrap();
        vm.touch_seeded(&mut map, a, 8 * P, 1).unwrap();
        let plan = begin_epoch(&mut vm, &[&map], Capture::Full);
        assert_eq!(plan.armed_pages, 8);
        assert_eq!(plan.flush.len(), 8);
        release_flushed(&mut vm, &plan);
        vm.destroy_map(&mut map);
        assert_eq!(vm.frames.allocated(), 0, "no leaked frames");
    }

    #[test]
    fn incremental_captures_only_dirty_pages() {
        let mut vm = Vm::new(SimClock::new());
        let mut map = VmMap::new();
        let a = vm.map_anonymous(&mut map, 8 * P, Prot::RW, false).unwrap();
        vm.touch_seeded(&mut map, a, 8 * P, 1).unwrap();

        // Full checkpoint captures everything.
        let full = begin_epoch(&mut vm, &[&map], Capture::Full);
        assert_eq!(full.armed_pages, 8);
        let next_since = full.epoch + 1;
        release_flushed(&mut vm, &full);

        // Dirty two pages; incremental captures exactly those.
        vm.copyout(&mut map, a, b"dirty").unwrap();
        vm.copyout(&mut map, a + 5 * P, b"dirty").unwrap();
        let incr = begin_epoch(&mut vm, &[&map], Capture::DirtySince(next_since));
        assert_eq!(incr.armed_pages, 2);
        release_flushed(&mut vm, &incr);

        // Nothing dirtied since: empty plan.
        let incr2 = begin_epoch(&mut vm, &[&map], Capture::DirtySince(incr.epoch + 1));
        assert_eq!(incr2.armed_pages, 0);
        release_flushed(&mut vm, &incr2);
        vm.destroy_map(&mut map);
    }

    #[test]
    fn same_page_never_flushed_twice_for_shared_memory() {
        // Two maps share one object; the plan must include its pages once.
        let mut vm = Vm::new(SimClock::new());
        let mut m1 = VmMap::new();
        let a = vm.map_anonymous(&mut m1, 4 * P, Prot::RW, true).unwrap();
        vm.touch_seeded(&mut m1, a, 4 * P, 2).unwrap();
        let obj = m1.find(a).unwrap().object;
        let mut m2 = VmMap::new();
        vm.map_object(&mut m2, obj, 0, 4 * P, Prot::RW, true).unwrap();

        let plan = begin_epoch(&mut vm, &[&m1, &m2], Capture::Full);
        assert_eq!(plan.armed_pages, 4, "shared object captured once");
        release_flushed(&mut vm, &plan);
        vm.destroy_map(&mut m1);
        vm.destroy_map(&mut m2);
    }

    #[test]
    fn excluded_regions_are_skipped() {
        let mut vm = Vm::new(SimClock::new());
        let mut map = VmMap::new();
        let a = vm.map_anonymous(&mut map, 2 * P, Prot::RW, false).unwrap();
        let b = vm.map_anonymous(&mut map, 2 * P, Prot::RW, false).unwrap();
        vm.touch_seeded(&mut map, a, 2 * P, 1).unwrap();
        vm.touch_seeded(&mut map, b, 2 * P, 2).unwrap();
        vm.set_policy(
            &mut map,
            b,
            SlsPolicy {
                exclude: true,
                ..SlsPolicy::default()
            },
        )
        .unwrap();
        let plan = begin_epoch(&mut vm, &[&map], Capture::Full);
        assert_eq!(plan.armed_pages, 2, "excluded region not captured");
        release_flushed(&mut vm, &plan);
        vm.destroy_map(&mut map);
    }

    #[test]
    fn armed_pages_survive_writes_with_original_contents() {
        let mut vm = Vm::new(SimClock::new());
        let mut map = VmMap::new();
        let a = vm.map_anonymous(&mut map, P, Prot::RW, false).unwrap();
        vm.copyout(&mut map, a, b"checkpoint-me").unwrap();
        let plan = begin_epoch(&mut vm, &[&map], Capture::Full);
        // Application keeps writing after the barrier.
        vm.copyout(&mut map, a, b"post-barrier!").unwrap();
        // The frozen frame still holds the checkpoint-time contents.
        let frozen = plan.flush[0].frame;
        let mut buf = [0u8; 13];
        vm.frames.data(frozen).read(0, &mut buf);
        assert_eq!(&buf, b"checkpoint-me");
        release_flushed(&mut vm, &plan);
        vm.destroy_map(&mut map);
        assert_eq!(vm.frames.allocated(), 0);
    }

    #[test]
    fn arming_charges_pte_costs() {
        let clock = SimClock::new();
        let mut vm = Vm::new(clock.clone());
        let mut map = VmMap::new();
        let a = vm.map_anonymous(&mut map, 64 * P, Prot::RW, false).unwrap();
        vm.touch_seeded(&mut map, a, 64 * P, 3).unwrap();
        let before = clock.now();
        let plan = begin_epoch(&mut vm, &[&map], Capture::Full);
        let cost_ns = clock.now().since(before).as_nanos();
        assert_eq!(cost_ns, 64 * cost::PTE_COW_ARM_NS);
        release_flushed(&mut vm, &plan);
        vm.destroy_map(&mut map);
    }

    #[test]
    fn shadow_chain_objects_are_captured() {
        // After a fork + child write, the child's shadow holds the new
        // page and the original object holds the old one; a full capture
        // of the child must include both.
        let mut vm = Vm::new(SimClock::new());
        let mut parent = VmMap::new();
        let a = vm.map_anonymous(&mut parent, 2 * P, Prot::RW, false).unwrap();
        vm.touch_seeded(&mut parent, a, 2 * P, 9).unwrap();
        let mut child = vm.fork_map(&mut parent);
        vm.copyout(&mut child, a, b"child!").unwrap();

        let plan = begin_epoch(&mut vm, &[&child], Capture::Full);
        // Child shadow has 1 resident page, backing has 2.
        assert_eq!(plan.armed_pages, 3);
        assert_eq!(plan.objects.len(), 2);
        release_flushed(&mut vm, &plan);
        vm.destroy_map(&mut child);
        vm.destroy_map(&mut parent);
    }
}
