//! The backing-store (pager) interface.
//!
//! A pager supplies pages that are not resident and absorbs pages evicted
//! under memory pressure. Two implementations matter in Aurora:
//!
//! * the **swap pager** (integrated with the object store), and
//! * the **lazy-restore pager**: after a restore, application memory is
//!   effectively swapped out into the checkpoint image and faulted in on
//!   demand — the mechanism behind Aurora's sub-millisecond restores.
//!
//! Both live in higher-level crates; this module defines the interface
//! plus an in-memory test pager.

use aurora_sim::error::Result;

use crate::page::PageData;

/// Identifier of a registered pager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PagerId(pub(crate) u32);

/// Supplies and absorbs non-resident pages for VM objects.
///
/// `key` identifies the object within the pager's backing store (assigned
/// when the object is bound to the pager).
pub trait Pager {
    /// Fetches page `idx` of object `key`, charging device costs.
    fn page_in(&mut self, key: u64, idx: u64) -> Result<PageData>;

    /// Writes back page `idx` of object `key` (eviction path).
    fn page_out(&mut self, key: u64, idx: u64, data: &PageData) -> Result<()>;

    /// True if the pager holds data for page `idx` of `key`.
    fn has_page(&self, key: u64, idx: u64) -> bool;

    /// True when several VM objects (e.g. sibling instances restored
    /// from one checkpoint image) share this pager. Shared pagers are
    /// read-mostly: eviction never writes dirty pages back through them
    /// (a write would be visible to every sibling).
    fn shared(&self) -> bool {
        false
    }
}

/// A trivial in-memory pager for tests.
#[derive(Debug, Default)]
pub struct MemPager {
    pages: std::collections::HashMap<(u64, u64), PageData>,
    /// Number of page-ins served (test observability).
    pub ins: u64,
    /// Number of page-outs absorbed.
    pub outs: u64,
}

impl MemPager {
    /// Creates an empty pager.
    pub fn new() -> Self {
        MemPager::default()
    }

    /// Pre-populates a page (simulating an existing image).
    pub fn preload(&mut self, key: u64, idx: u64, data: PageData) {
        self.pages.insert((key, idx), data);
    }
}

impl Pager for MemPager {
    fn page_in(&mut self, key: u64, idx: u64) -> Result<PageData> {
        self.ins += 1;
        Ok(self
            .pages
            .get(&(key, idx))
            .cloned()
            .unwrap_or(PageData::Zero))
    }

    fn page_out(&mut self, key: u64, idx: u64, data: &PageData) -> Result<()> {
        self.outs += 1;
        self.pages.insert((key, idx), data.clone());
        Ok(())
    }

    fn has_page(&self, key: u64, idx: u64) -> bool {
        self.pages.contains_key(&(key, idx))
    }
}
