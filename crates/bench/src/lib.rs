//! Experiment harnesses for every table and figure in the paper.
//!
//! Each function builds the workload from scratch on a fresh simulated
//! host, runs the experiment, and returns the measured (virtual-time)
//! numbers; `src/bin/tables.rs` prints them next to the published values.
//! See `EXPERIMENTS.md` for the paper-vs-measured record and DESIGN.md §5
//! for the cost-model calibration.

use std::cell::RefCell;
use std::rc::Rc;

use aurora_apps::kv::{KvServer, PersistMode};
use aurora_apps::profiles;
use aurora_apps::serverless;
use aurora_apps::workload::{KeyDist, Workload};
use aurora_core::restore::RestoreMode;
use aurora_core::{BackendKind, Host, RestoreBreakdown};
use aurora_hw::{BlockDev, ModelDev};
use aurora_objstore::{ObjectStore, StoreConfig};
use aurora_sim::time::{SimDuration, SimTime};
use aurora_sim::SimClock;
use aurora_slsfs::StoreHandle;

/// Fraction of the 2 GiB working set Redis dirties between incremental
/// checkpoints (calibrated: paper's 711.1 µs of incremental COW arming
/// at ~10 ns/page is ≈71 000 pages of 524 288).
pub const REDIS_DIRTY_FRACTION: f64 = 0.1356;

/// Builds a benchmark host with `blocks` NVMe blocks.
pub fn bench_host(blocks: u64) -> Host {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", blocks));
    Host::boot(
        "bench",
        dev,
        StoreConfig {
            journal_blocks: 8 * 1024,
            ..StoreConfig::default()
        },
    )
    .expect("host boot")
}

/// An in-memory (ramdisk) checkpoint backend.
pub fn memory_backend(host: &Host, blocks: u64) -> StoreHandle {
    let dev = Box::new(ModelDev::ramdisk(host.clock.clone(), "md0", blocks));
    let journal = (blocks / 16).clamp(64, 16 * 1024);
    Rc::new(RefCell::new(
        ObjectStore::format(
            dev,
            StoreConfig {
                journal_blocks: journal,
                ..StoreConfig::default()
            },
        )
        .expect("ram store"),
    ))
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// "Metadata copy".
    pub metadata: SimDuration,
    /// "Lazy data copy" (COW arming).
    pub lazy: SimDuration,
    /// "Application stop time".
    pub stop: SimDuration,
    /// Pages captured.
    pub pages: u64,
}

/// Table 3: checkpoint stop-time breakdown for a Redis-class process.
///
/// Returns `(full, incremental)`.
pub fn table3(data_bytes: u64) -> (Table3Row, Table3Row) {
    // Size the store for the working set plus several incremental epochs.
    let blocks = (data_bytes / 4096) * 3 + 64 * 1024;
    let mut host = bench_host(blocks);
    let profile = profiles::redis_profile(data_bytes);
    let (pid, _client) = profiles::build(&mut host, &profile, 6379).expect("build profile");
    let gid = host.persist("redis", pid).expect("persist");

    // Steady state: one warm-up incremental cycle.
    host.checkpoint(gid, true, None).expect("warmup full");
    host.wait_durable(gid).expect("durable");
    profiles::dirty_data(&mut host, pid, &profile, REDIS_DIRTY_FRACTION).expect("dirty");
    host.checkpoint(gid, false, None).expect("warmup incr");
    host.wait_durable(gid).expect("durable");

    // Full: copy the entire address space.
    profiles::dirty_data(&mut host, pid, &profile, REDIS_DIRTY_FRACTION).expect("dirty");
    let full = host.checkpoint(gid, true, None).expect("full");
    host.wait_durable(gid).expect("durable");

    // Incremental: only the dirty set since the full.
    profiles::dirty_data(&mut host, pid, &profile, REDIS_DIRTY_FRACTION).expect("dirty");
    let incr = host.checkpoint(gid, false, None).expect("incr");

    (
        Table3Row {
            metadata: full.metadata_copy,
            lazy: full.lazy_data_copy,
            stop: full.stop_time,
            pages: full.pages,
        },
        Table3Row {
            metadata: incr.metadata_copy,
            lazy: incr.lazy_data_copy,
            stop: incr.stop_time,
            pages: incr.pages,
        },
    )
}

/// One column of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Col {
    /// Workload + backend label.
    pub label: &'static str,
    /// "Object Store Read".
    pub objstore_read: SimDuration,
    /// "Memory state".
    pub memory: SimDuration,
    /// "Metadata state".
    pub metadata: SimDuration,
    /// "Total latency".
    pub total: SimDuration,
}

fn restore_col(label: &'static str, r: &RestoreBreakdown) -> Table4Col {
    Table4Col {
        label,
        objstore_read: r.objstore_read,
        memory: r.memory_state,
        metadata: r.metadata_state,
        total: r.total,
    }
}

/// Table 4: restore-time breakdowns.
///
/// Returns `[redis/memory, serverless/memory, serverless/disk]`.
pub fn table4(redis_bytes: u64) -> Vec<Table4Col> {
    let mut out = Vec::new();

    // Redis restored from an in-memory image.
    {
        let blocks = (redis_bytes / 4096) * 2 + 64 * 1024;
        let mut host = bench_host(blocks);
        let profile = profiles::redis_profile(redis_bytes);
        let (pid, _client) = profiles::build(&mut host, &profile, 6379).expect("build");
        let gid = host.persist("redis", pid).expect("persist");
        let mem = memory_backend(&host, blocks);
        host.attach_backend(gid, BackendKind::Memory, mem.clone())
            .expect("attach");
        host.checkpoint(gid, true, None).expect("ckpt");
        host.wait_durable(gid).expect("durable");
        let ckpt = mem.borrow().head().expect("mem ckpt");
        let r = host.restore(&mem, ckpt, RestoreMode::Lazy).expect("restore");
        out.push(restore_col("Redis/Memory", &r));
    }

    // Serverless function from memory and from disk.
    {
        let mut host = bench_host(256 * 1024);
        let profile = profiles::serverless_profile();
        let (pid, _client) = profiles::build(&mut host, &profile, 8080).expect("build");
        let gid = host.persist("hello-fn", pid).expect("persist");
        let mem = memory_backend(&host, 64 * 1024);
        host.attach_backend(gid, BackendKind::Memory, mem.clone())
            .expect("attach");
        host.checkpoint(gid, true, None).expect("ckpt");
        host.wait_durable(gid).expect("durable");

        let mem_ckpt = mem.borrow().head().expect("mem ckpt");
        let r = host
            .restore(&mem, mem_ckpt, RestoreMode::Lazy)
            .expect("restore mem");
        out.push(restore_col("Serverless/Memory", &r));

        let disk = host.sls.primary.clone();
        let disk_ckpt = disk.borrow().head().expect("disk ckpt");
        let r = host
            .restore(&disk, disk_ckpt, RestoreMode::Lazy)
            .expect("restore disk");
        out.push(restore_col("Serverless/Disk", &r));
    }
    out
}

/// One row of the checkpoint-frequency sweep (E5).
#[derive(Debug, Clone)]
pub struct FreqRow {
    /// Target period.
    pub period: SimDuration,
    /// Checkpoints achieved in the simulated second.
    pub achieved: u64,
    /// Mean stop time.
    pub mean_stop: SimDuration,
    /// Fraction of runtime spent stopped.
    pub overhead_pct: f64,
    /// Flush backlog at the end (durability lag behind the clock).
    pub backlog: SimDuration,
}

/// E5: checkpoint-frequency sweep over one simulated second.
pub fn freq_sweep(data_bytes: u64, periods_ms: &[u64]) -> Vec<FreqRow> {
    let mut rows = Vec::new();
    for &period_ms in periods_ms {
        let mut host = bench_host(1 << 20);
        let profile = profiles::redis_profile(data_bytes);
        let (pid, _client) = profiles::build(&mut host, &profile, 6379).expect("build");
        let gid = host.persist("redis", pid).expect("persist");
        host.sls.group_mut(gid).expect("group").period = SimDuration::from_millis(period_ms);
        host.sls.group_mut(gid).expect("group").history_window = 8;
        host.checkpoint(gid, true, None).expect("initial full");
        host.wait_durable(gid).expect("durable");

        let start = host.clock.now();
        let end = start + SimDuration::from_secs(1);
        let mut stops = SimDuration::ZERO;
        let mut taken = 0u64;
        // The app dirties ~2% of its data per millisecond of runtime.
        while host.clock.now() < end {
            profiles::dirty_data(&mut host, pid, &profile, 0.02).expect("dirty");
            host.clock.charge(SimDuration::from_millis(1));
            if let Some(bd) = host.checkpoint_tick(gid).expect("tick") {
                stops += bd.stop_time;
                taken += 1;
            }
        }
        let elapsed = host.clock.now().since(start);
        let backlog = host
            .sls
            .group_ref(gid)
            .expect("group")
            .ec_outstanding
            .back()
            .map(|&(_, at)| at.since(host.clock.now()))
            .unwrap_or(SimDuration::ZERO);
        rows.push(FreqRow {
            period: SimDuration::from_millis(period_ms),
            achieved: taken,
            mean_stop: if taken > 0 {
                stops / taken
            } else {
                SimDuration::ZERO
            },
            overhead_pct: 100.0 * stops.as_nanos() as f64 / elapsed.as_nanos() as f64,
            backlog,
        });
    }
    rows
}

/// E6 results: function-image density and mutual warm-up.
#[derive(Debug, Clone)]
pub struct DedupReport {
    /// Store blocks used by the first image.
    pub first_image_blocks: u64,
    /// Marginal blocks per additional image (mean).
    pub marginal_blocks: f64,
    /// Number of images built.
    pub images: u64,
    /// Major faults for the first instance's working set.
    pub first_instance_majors: u64,
    /// Major faults for the second instance touching the same set.
    pub second_instance_majors: u64,
}

/// E6: serverless image density through dedup + instance warm-up.
pub fn dedup_density(images: u64, runtime_pages: u64, fn_pages: u64) -> DedupReport {
    dedup_density_with(true, images, runtime_pages, fn_pages)
}

/// E6 with the content-hash dedup design choice toggleable — the
/// ablation behind the paper's "one order of magnitude lower disk
/// usage" claim for high-density serverless images.
pub fn dedup_density_with(
    dedup: bool,
    images: u64,
    runtime_pages: u64,
    fn_pages: u64,
) -> DedupReport {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 1 << 20));
    let mut host = Host::boot(
        "bench",
        dev,
        StoreConfig {
            journal_blocks: 8 * 1024,
            dedup,
            ..StoreConfig::default()
        },
    )
    .expect("host boot");
    let blocks0 = host.sls.primary.borrow().blocks_in_use();
    let mut first_image_blocks = 0;
    let mut last = blocks0;
    let mut image0 = None;
    for i in 0..images {
        let image =
            serverless::build_image(&mut host, &format!("fn-{i}"), runtime_pages, fn_pages, i)
                .expect("image");
        let now = host.sls.primary.borrow().blocks_in_use();
        if i == 0 {
            first_image_blocks = now - blocks0;
            image0 = Some(image);
        }
        last = now;
    }
    let marginal = if images > 1 {
        (last - blocks0 - first_image_blocks) as f64 / (images - 1) as f64
    } else {
        0.0
    };

    // Warm-up: two instances of image 0 touch the same pages.
    let image = image0.expect("at least one image");
    let (i1, _) = serverless::instantiate(&mut host, &image, RestoreMode::Lazy).expect("inst");
    let (i2, _) = serverless::instantiate(&mut host, &image, RestoreMode::Lazy).expect("inst");
    let majors0 = host.kernel.vm.stats.major_faults;
    serverless::invoke(&mut host, &image, i1, 32).expect("invoke");
    let majors1 = host.kernel.vm.stats.major_faults;
    serverless::invoke(&mut host, &image, i2, 32).expect("invoke");
    let majors2 = host.kernel.vm.stats.major_faults;

    DedupReport {
        first_image_blocks,
        marginal_blocks: marginal,
        images,
        first_instance_majors: majors1 - majors0,
        second_instance_majors: majors2 - majors1,
    }
}

/// One row of the KV persistence comparison (E7).
#[derive(Debug, Clone)]
pub struct KvPortRow {
    /// Mode label.
    pub label: &'static str,
    /// Virtual time for the mutation phase.
    pub total: SimDuration,
    /// Mean per-mutation latency.
    pub mean_op: SimDuration,
    /// 99th-percentile per-mutation latency.
    pub p99_op: SimDuration,
    /// Longest single stall (fork pause, flush wait).
    pub worst_stall: SimDuration,
}

/// E7: per-mutation cost of each persistence strategy.
pub fn kv_ports(ops: u64) -> Vec<KvPortRow> {
    let configs: Vec<(&'static str, PersistMode)> = vec![
        ("no persistence", PersistMode::None),
        ("fork snapshot (RDB)", PersistMode::ForkSnapshot { every: ops / 4 }),
        ("WAL + fsync (AOF)", PersistMode::WalFsync),
        ("Aurora port (ntflush)", PersistMode::AuroraPort),
        ("Aurora transparent", PersistMode::AuroraTransparent),
    ];
    let mut rows = Vec::new();
    for (label, mode) in configs {
        let mut host = bench_host(512 * 1024);
        let mut server = KvServer::start(&mut host, mode, 64 << 20, 16 * 1024).expect("server");
        let gid = server.gid;
        let mut w = Workload::new(42, 4096, 128, 0.0, KeyDist::Zipfian { theta: 0.99 });
        // Preload outside the measured window.
        for op in w.load_ops() {
            server.exec(&mut host, &op).expect("load");
        }
        if let Some(gid) = gid {
            host.checkpoint(gid, true, None).expect("ckpt");
            host.wait_durable(gid).expect("durable");
        }

        let start = host.clock.now();
        let mut worst = SimDuration::ZERO;
        let mut lat = aurora_sim::stats::LogHistogram::new();
        // Client inter-arrival gap, identical across modes, so periodic
        // (transparent) checkpointing has a timeline to ride on.
        let think = SimDuration::from_micros(100);
        for i in 0..ops {
            let op = w.next_op();
            host.clock.charge(think);
            let t0 = host.clock.now();
            server.exec(&mut host, &op).expect("op");
            // Transparent mode: the SLS checkpoints on its own schedule.
            if mode == PersistMode::AuroraTransparent {
                host.checkpoint_tick(gid.expect("gid")).expect("tick");
            }
            // Aurora port: application checkpoint every quarter.
            if mode == PersistMode::AuroraPort && ops >= 4 && (i + 1) % (ops / 4) == 0 {
                server.aurora_checkpoint(&mut host).expect("app ckpt");
            }
            let op_latency = host.clock.now().since(t0);
            lat.record_duration(op_latency);
            worst = worst.max(op_latency);
        }
        // Report persistence cost: total minus the uniform think time.
        let total = host.clock.now().since(start).saturating_sub(think * ops);
        rows.push(KvPortRow {
            label,
            total,
            mean_op: total / ops,
            p99_op: SimDuration::from_nanos(lat.p99()),
            worst_stall: worst.max(server.snapshot_stalls),
        });
    }
    rows
}

/// One row of the lazy-restore experiment (E9).
#[derive(Debug, Clone)]
pub struct LazyRow {
    /// Restore mode label.
    pub label: &'static str,
    /// Restore call latency.
    pub restore_latency: SimDuration,
    /// Pages paged in during restore.
    pub prefetched: u64,
    /// Major faults while touching the hot set afterwards.
    pub post_majors: u64,
    /// Time to run the post-restore hot-set pass.
    pub first_run: SimDuration,
}

/// E9: eager vs lazy vs prefetch restore for a given image size.
pub fn lazy_restore(data_bytes: u64, hot_pages: u64) -> Vec<LazyRow> {
    let mut rows = Vec::new();
    for (label, mode) in [
        ("eager", RestoreMode::Eager),
        ("lazy", RestoreMode::Lazy),
        ("lazy+prefetch", RestoreMode::LazyPrefetch),
    ] {
        let mut host = bench_host(1 << 20);
        let pid = host.kernel.spawn("lazyapp");
        let addr = host.kernel.mmap_anon(pid, data_bytes, false).expect("map");
        host.kernel
            .mem_touch_seeded(pid, addr, data_bytes, 0x1A2B)
            .expect("touch");
        // Heat the hot set so the image records it.
        let mut buf = [0u8; 8];
        for i in 0..hot_pages {
            for _ in 0..3 {
                host.kernel
                    .mem_read(pid, addr + i * 4096, &mut buf)
                    .expect("read");
            }
        }
        let gid = host.persist("lazyapp", pid).expect("persist");
        let bd = host.checkpoint(gid, true, None).expect("ckpt");
        host.clock.advance_to(bd.durable_at);

        let store = host.sls.primary.clone();
        let t0 = host.clock.now();
        let r = host
            .restore(&store, bd.ckpt.expect("ckpt id"), mode)
            .expect("restore");
        let restore_latency = host.clock.now().since(t0);

        let np = r.root_pid().expect("pid");
        let majors0 = host.kernel.vm.stats.major_faults;
        let t1 = host.clock.now();
        for i in 0..hot_pages {
            host.kernel
                .mem_read(np, addr + i * 4096, &mut buf)
                .expect("read");
        }
        rows.push(LazyRow {
            label,
            restore_latency,
            prefetched: r.pages_prefetched,
            post_majors: host.kernel.vm.stats.major_faults - majors0,
            first_run: host.clock.now().since(t1),
        });
    }
    rows
}

/// E8 results: bounded record/replay.
#[derive(Debug, Clone)]
pub struct RecrepReport {
    /// Total inputs recorded.
    pub inputs: u64,
    /// Checkpoint interval (ops).
    pub interval: u64,
    /// Peak log length between checkpoints.
    pub peak_log: usize,
    /// Whether replay reproduced the pre-crash state exactly.
    pub replay_exact: bool,
}

/// E8: record/replay bounded by the checkpoint interval.
pub fn recrep(inputs: u64, interval: u64) -> RecrepReport {
    use aurora_core::recrep::RecordLog;

    let mut host = bench_host(256 * 1024);
    let mut server = KvServer::start(&mut host, PersistMode::AuroraTransparent, 16 << 20, 4096)
        .expect("server");
    let gid = server.gid.expect("gid");
    let mut log = RecordLog::new();
    let mut w = Workload::new(9, 512, 64, 0.0, KeyDist::Uniform);

    let mut last_ckpt = None;
    for i in 0..inputs {
        let raw = w.next_op().encode();
        let input = log.record(raw);
        let (op, _) = aurora_apps::kv::KvOp::decode(&input).expect("decode");
        server.exec(&mut host, &op).expect("op");
        if (i + 1) % interval == 0 {
            let bd = host.checkpoint(gid, false, None).expect("ckpt");
            log.on_checkpoint(bd.ckpt.expect("id"));
            last_ckpt = bd.ckpt;
        }
    }
    let peak = log.peak_len;
    // "Crash": roll back to the last checkpoint, then replay the log.
    let state_before: u64 = server.len(&mut host).expect("len");
    let ops_before = server.ops_executed(&host);
    let r = host.rollback(gid, last_ckpt).expect("rollback");
    let np = r.root_pid().expect("pid");
    let mut server =
        KvServer::attach(&mut host, np, PersistMode::AuroraTransparent).expect("attach");
    log.begin_replay();
    while log.replaying() {
        let input = log.record(Vec::new());
        if input.is_empty() {
            break;
        }
        let (op, _) = aurora_apps::kv::KvOp::decode(&input).expect("decode");
        server.exec(&mut host, &op).expect("replay op");
    }
    let replay_exact = server.len(&mut host).expect("len") == state_before
        && server.ops_executed(&host) == ops_before;
    RecrepReport {
        inputs,
        interval,
        peak_log: peak,
        replay_exact,
    }
}

/// One row of the live-migration experiment (E10).
#[derive(Debug, Clone)]
pub struct MigrateRow {
    /// Working-set size (bytes).
    pub data_bytes: u64,
    /// Pre-copy rounds (including the final stop round).
    pub rounds: u32,
    /// Bytes over the wire.
    pub total_bytes: u64,
    /// Bytes of the final (stop-and-copy) round.
    pub final_round_bytes: u64,
    /// Source downtime.
    pub downtime: SimDuration,
    /// Destination restore latency.
    pub restore_total: SimDuration,
}

/// E10: live migration downtime vs. working-set size.
///
/// The application keeps dirtying a fixed fraction of its data between
/// rounds (modelled by the checkpoints the migration loop itself takes);
/// downtime should track the *delta* size, not the image size.
pub fn migrate_sweep(sizes: &[u64]) -> Vec<MigrateRow> {
    let mut rows = Vec::new();
    for &data_bytes in sizes {
        let clock = SimClock::new();
        let blocks = (data_bytes / 4096) * 4 + 128 * 1024;
        let src_dev = Box::new(ModelDev::nvme(clock.clone(), "src-nvme", blocks));
        let mut src = Host::boot(
            "src",
            src_dev,
            StoreConfig {
                journal_blocks: 8 * 1024,
                ..StoreConfig::default()
            },
        )
        .expect("src boot");
        let dst_dev = Box::new(ModelDev::nvme(clock.clone(), "dst-nvme", blocks));
        let mut dst = Host::boot(
            "dst",
            dst_dev,
            StoreConfig {
                journal_blocks: 8 * 1024,
                ..StoreConfig::default()
            },
        )
        .expect("dst boot");
        let mut link = aurora_hw::LinkModel::ten_gbe(clock);

        let pid = src.kernel.spawn("migrant");
        let addr = src.kernel.mmap_anon(pid, data_bytes, false).expect("map");
        src.kernel
            .mem_touch_seeded(pid, addr, data_bytes, 0x4D16)
            .expect("touch");
        let gid = src.persist("migrant", pid).expect("persist");

        let stats = aurora_core::migrate::live_migrate(&mut src, &mut dst, gid, &mut link, 6)
            .expect("migrate");
        rows.push(MigrateRow {
            data_bytes,
            rounds: stats.rounds,
            total_bytes: stats.total_bytes,
            final_round_bytes: *stats.round_bytes.last().expect("rounds ran"),
            downtime: stats.downtime,
            restore_total: stats.restore.total,
        });
    }
    rows
}

/// One row of the backend-medium ablation (E11).
#[derive(Debug, Clone)]
pub struct BackendRow {
    /// Medium label.
    pub label: &'static str,
    /// Checkpoint stop time (identical across media — the point).
    pub stop: SimDuration,
    /// Lag from barrier exit to durability on this medium.
    pub durability_lag: SimDuration,
    /// ntflush (synchronous log append) latency on this medium.
    pub ntflush: SimDuration,
}

/// E11 (ablation): the same incremental checkpoint against NVMe, NVDIMM
/// and DRAM media — the paper's thesis that modern device latency is
/// what makes SLSes practical, quantified.
pub fn backend_sweep(data_bytes: u64) -> Vec<BackendRow> {
    let mut rows = Vec::new();
    type MakeDev = fn(std::sync::Arc<SimClock>, u64) -> ModelDev;
    let media: Vec<(&'static str, MakeDev)> = vec![
        ("NVMe (Optane-class)", |c, b| ModelDev::nvme(c, "nvme", b)),
        ("NVDIMM", |c, b| ModelDev::nvdimm(c, "nvd", b)),
        ("DRAM (ephemeral)", |c, b| ModelDev::ramdisk(c, "md", b)),
    ];
    for (label, make) in media {
        let clock = SimClock::new();
        let blocks = (data_bytes / 4096) * 3 + 64 * 1024;
        let dev = Box::new(make(clock.clone(), blocks));
        let mut host = Host::boot(
            "media",
            dev,
            StoreConfig {
                journal_blocks: 4 * 1024,
                ..StoreConfig::default()
            },
        )
        .expect("boot");
        let profile = profiles::redis_profile(data_bytes);
        let (pid, _client) = profiles::build(&mut host, &profile, 6379).expect("build");
        let gid = host.persist("media", pid).expect("persist");
        host.checkpoint(gid, true, None).expect("full");
        host.wait_durable(gid).expect("durable");

        profiles::dirty_data(&mut host, pid, &profile, REDIS_DIRTY_FRACTION).expect("dirty");
        let bd = host.checkpoint(gid, false, None).expect("incr");
        let lag = bd.durable_at.since(host.clock.now());

        // ntflush on the same medium, measured on an idle device (the
        // checkpoint's background flush has drained).
        host.wait_durable(gid).expect("durable");
        let (fd, _) = host.ntlog_create(gid, pid).expect("ntlog");
        let t0 = host.clock.now();
        host.sls_ntflush(gid, pid, fd, &[7u8; 256]).expect("flush");
        let ntflush = host.clock.now().since(t0);

        rows.push(BackendRow {
            label,
            stop: bd.stop_time,
            durability_lag: lag,
            ntflush,
        });
    }
    rows
}

/// One row of the stripe-width experiment (E12).
#[derive(Debug, Clone)]
pub struct StripeRow {
    /// Devices in the stripe.
    pub width: usize,
    /// Durability lag of one steady incremental checkpoint.
    pub durability_lag: SimDuration,
    /// Checkpoints achieved in one simulated second at a 1 ms period.
    pub achieved_1khz: u64,
    /// End-of-second flush backlog at that rate.
    pub backlog: SimDuration,
}

/// E12 (ablation): striping checkpoints across multiple NVMe drives —
/// the paper's four-Optane testbed and its aggregate-bandwidth thesis.
/// Checkpoint frequency is "bounded by the speed with which Aurora can
/// flush incremental checkpoints"; more spindles raise that bound.
pub fn stripe_sweep(data_bytes: u64, widths: &[usize]) -> Vec<StripeRow> {
    use aurora_hw::StripedDev;
    let mut rows = Vec::new();
    for &width in widths {
        let clock = SimClock::new();
        let per_member = ((data_bytes / 4096) * 4) / width as u64 + 64 * 1024;
        let members: Vec<ModelDev> = (0..width)
            .map(|i| ModelDev::nvme(clock.clone(), &format!("nvme{i}"), per_member))
            .collect();
        let dev = Box::new(StripedDev::new(members));
        let mut host = Host::boot(
            "stripe",
            dev,
            StoreConfig {
                journal_blocks: 8 * 1024,
                ..StoreConfig::default()
            },
        )
        .expect("boot");
        let profile = profiles::redis_profile(data_bytes);
        let (pid, _client) = profiles::build(&mut host, &profile, 6379).expect("build");
        let gid = host.persist("stripe", pid).expect("persist");
        host.sls.group_mut(gid).expect("group").period = SimDuration::from_millis(1);
        host.sls.group_mut(gid).expect("group").history_window = 8;
        host.checkpoint(gid, true, None).expect("full");
        host.wait_durable(gid).expect("durable");

        // One steady incremental: how long until durable?
        profiles::dirty_data(&mut host, pid, &profile, REDIS_DIRTY_FRACTION).expect("dirty");
        let bd = host.checkpoint(gid, false, None).expect("incr");
        let lag = bd.durable_at.since(host.clock.now());
        host.wait_durable(gid).expect("durable");

        // One simulated second at a 1 ms period with a heavy dirty rate.
        let start = host.clock.now();
        let end = start + SimDuration::from_secs(1);
        let mut taken = 0u64;
        while host.clock.now() < end {
            profiles::dirty_data(&mut host, pid, &profile, 0.05).expect("dirty");
            host.clock.charge(SimDuration::from_millis(1));
            if host.checkpoint_tick(gid).expect("tick").is_some() {
                taken += 1;
            }
        }
        let backlog = host
            .sls
            .group_ref(gid)
            .expect("group")
            .ec_outstanding
            .back()
            .map(|&(_, at)| at.since(host.clock.now()))
            .unwrap_or(SimDuration::ZERO);
        rows.push(StripeRow {
            width,
            durability_lag: lag,
            achieved_1khz: taken,
            backlog,
        });
    }
    rows
}

/// Figure 1 self-check: every pictured component exists and is wired.
pub fn fig1_selfcheck() -> Vec<(&'static str, bool)> {
    let mut host = bench_host(64 * 1024);
    let pid = host.kernel.spawn("probe");
    let mut checks: Vec<(&'static str, bool)> = Vec::new();

    // Userspace: application + libsls entry points (Table 2 API).
    checks.push(("application processes (POSIX kernel)", host.kernel.procs.len() == 1));
    let addr = host.kernel.mmap_anon(pid, 4096, false).is_ok();
    checks.push(("virtual memory subsystem", addr));
    let gid = host.persist("probe", pid);
    checks.push(("SLS orchestrator (persist/ioctl path)", gid.is_ok()));
    let gid = gid.expect("persist");
    checks.push((
        "libsls API (sls_checkpoint)",
        host.sls_checkpoint(gid, Some("probe")).is_ok(),
    ));
    checks.push((
        "SLS file system (mounted at /sls)",
        host.kernel.open(pid, "/sls/fig1", true).is_ok(),
    ));
    checks.push((
        "object store (checkpoints on NVMe model)",
        host.sls.primary.borrow().checkpoints().len() == 1,
    ));
    // IPC / socket / VFS / process / thread object columns.
    checks.push(("IPC objects (pipes)", host.kernel.pipe(pid).is_ok()));
    checks.push((
        "socket objects (TCP/IP)",
        host.kernel.tcp_listen(pid, 9999).is_ok(),
    ));
    checks.push((
        "first-class SysV shm objects",
        host.kernel.shmget(1, 4096).is_ok(),
    ));
    // Hardware row: NVMe (primary), NVDIMM, memory backend, NIC.
    checks.push((
        "NVMe backend device",
        host.sls.primary.borrow().device().info().persistent,
    ));
    let clock = host.clock.clone();
    let nvdimm = ModelDev::nvdimm(clock.clone(), "nvd0", 1024);
    checks.push(("NVDIMM device model", nvdimm.info().persistence_domain));
    let mem = memory_backend(&host, 1024);
    checks.push((
        "memory (ephemeral) backend",
        host.attach_backend(gid, BackendKind::Memory, mem).is_ok(),
    ));
    checks.push((
        "NIC / network backend (10 GbE link model)",
        aurora_hw::LinkModel::ten_gbe(clock).bandwidth > 0,
    ));
    checks
}

impl RecrepReport {
    /// True when the log stayed bounded by the interval.
    pub fn bounded(&self) -> bool {
        self.peak_log as u64 <= self.interval
    }
}

/// Formats a virtual duration like the paper (microseconds, one decimal).
pub fn us(d: SimDuration) -> String {
    format!("{:.1}", d.as_micros_f64())
}

/// Formats a ratio measured/paper.
pub fn ratio(measured: SimDuration, paper_us: f64) -> String {
    format!("{:.2}x", measured.as_micros_f64() / paper_us)
}

/// The virtual instant — convenience for binaries.
pub fn now(host: &Host) -> SimTime {
    host.clock.now()
}
