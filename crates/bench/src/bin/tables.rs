//! Regenerates every table and figure of the paper.
//!
//! ```text
//! tables            # everything
//! tables table3     # Table 3 only (checkpoint stop-time breakdown)
//! tables table4     # Table 4 (restore breakdowns)
//! tables fig1       # Figure 1 architecture self-check
//! tables freq       # E5 checkpoint-frequency sweep
//! tables dedup      # E6 serverless density + warm-up
//! tables kvports    # E7 KV persistence-strategy comparison
//! tables lazy       # E9 lazy-restore ablation
//! tables recrep     # E8 bounded record/replay
//! tables migrate    # E10 live-migration sweep
//! tables media      # E11 backend-media ablation
//! tables stripe     # E12 NVMe stripe-width ablation
//! tables check      # self-evaluating shape checks (exit 1 on failure)
//! tables --quick    # everything, at reduced working-set sizes
//! ```
//!
//! All reported times are **virtual** (simulated) time; compare shape —
//! ratios, orderings, crossovers — against the published numbers, which
//! are printed alongside.

use aurora_bench as bench;
use aurora_sim::time::SimDuration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = which.is_empty();
    let pick = |name: &str| all || which.contains(&name);

    // The paper's Redis uses a 2 GiB working set; --quick shrinks it.
    let redis_bytes: u64 = if quick { 256 << 20 } else { 2 << 30 };

    if pick("fig1") {
        fig1();
    }
    if pick("table1") {
        table1();
    }
    if pick("table2") {
        table2();
    }
    if pick("table3") {
        table3(redis_bytes);
    }
    if pick("table4") {
        table4(redis_bytes);
    }
    if pick("freq") {
        freq(if quick { 64 << 20 } else { 256 << 20 });
    }
    if pick("dedup") {
        dedup(if quick { 4 } else { 8 });
    }
    if pick("kvports") {
        kvports(if quick { 200 } else { 400 });
    }
    if pick("lazy") {
        lazy(if quick { 64 << 20 } else { 256 << 20 });
    }
    if pick("recrep") {
        recrep();
    }
    if pick("migrate") {
        migrate(quick);
    }
    if pick("media") {
        media(if quick { 64 << 20 } else { 256 << 20 });
    }
    if pick("stripe") {
        stripe(if quick { 64 << 20 } else { 256 << 20 });
    }
    if which.contains(&"check") {
        check();
    }
}

/// Self-evaluating reproduction: runs every experiment at reduced scale
/// and asserts the paper's shape criteria, printing a verdict per check.
fn check() {
    header("Shape checks — every criterion from EXPERIMENTS.md, at --quick scale");
    let mut pass = 0;
    let mut fail = 0;
    let mut verdict = |name: &str, ok: bool| {
        println!("  [{}] {name}", if ok { "PASS" } else { "FAIL" });
        if ok {
            pass += 1;
        } else {
            fail += 1;
        }
    };

    let ok = bench::fig1_selfcheck().iter().all(|(_, ok)| *ok);
    verdict("fig1: all architecture components wired", ok);

    let (full, incr) = bench::table3(256 << 20);
    let ratio = full.lazy.as_nanos() as f64 / incr.lazy.as_nanos().max(1) as f64;
    verdict("table3: incremental lazy-copy 5x-9x cheaper (paper 7.2x)", (5.0..9.0).contains(&ratio));
    verdict("table3: incremental stop < 1 ms", incr.stop < SimDuration::from_millis(1));
    verdict(
        "table3: metadata ~equal full vs incremental",
        full.metadata.as_nanos().abs_diff(incr.metadata.as_nanos()) * 5
            < full.metadata.as_nanos(),
    );

    let cols = bench::table4(256 << 20);
    verdict(
        "table4: every restore < 1 ms",
        cols.iter().all(|c| c.total < SimDuration::from_millis(1)),
    );
    verdict(
        "table4: disk restore dominated by object-store read",
        cols[2].objstore_read > cols[2].memory && cols[2].objstore_read > cols[2].metadata,
    );
    verdict(
        "table4: disk metadata cheaper than memory-backend metadata",
        cols[2].metadata < cols[1].metadata,
    );

    let rows = bench::freq_sweep(64 << 20, &[10]);
    verdict(
        "E5: 100 Hz sustainable with <5% overhead and no backlog",
        rows[0].achieved >= 90
            && rows[0].overhead_pct < 5.0
            && rows[0].backlog == SimDuration::ZERO,
    );

    let d = bench::dedup_density(4, 256, 16);
    let doff = bench::dedup_density_with(false, 4, 256, 16);
    verdict(
        "E6a: disabling dedup makes marginal images ~10x larger (ablation)",
        doff.marginal_blocks > 8.0 * d.marginal_blocks,
    );
    verdict(
        "E6: marginal image ~= function delta (dedup)",
        d.marginal_blocks <= 18.0,
    );
    verdict(
        "E6: second instance faults less than the first (warm-up)",
        d.second_instance_majors < d.first_instance_majors,
    );

    let ports = bench::kv_ports(200);
    let find = |label: &str| {
        ports
            .iter()
            .find(|r| r.label.contains(label))
            .expect("row exists")
    };
    verdict(
        "E7: Aurora port <= WAL per durable mutation",
        find("Aurora port").mean_op <= find("WAL").mean_op,
    );
    verdict(
        "E7: fork snapshot has the worst stall",
        find("fork").worst_stall > find("WAL").worst_stall
            && find("fork").worst_stall > find("Aurora port").worst_stall,
    );

    let lazy = bench::lazy_restore(64 << 20, 64);
    verdict(
        "E9: lazy restore 100x faster than eager",
        lazy[1].restore_latency.as_nanos() * 100 < lazy[0].restore_latency.as_nanos(),
    );
    verdict(
        "E9: prefetch halves post-restore faults",
        lazy[2].post_majors * 2 <= lazy[1].post_majors,
    );

    let rr = bench::recrep(256, 32);
    verdict("E8: record log bounded by checkpoint interval", rr.bounded());
    verdict("E8: replay reproduces the pre-crash state exactly", rr.replay_exact);

    let mig = bench::migrate_sweep(&[16 << 20, 64 << 20]);
    verdict(
        "E10: migration downtime independent of image size",
        mig[0].downtime == mig[1].downtime,
    );
    verdict(
        "E10: wire bytes track the image size",
        mig[1].total_bytes > mig[0].total_bytes * 3,
    );

    let media = bench::backend_sweep(64 << 20);
    verdict(
        "E11: stop time medium-independent",
        media.iter().all(|r| r.stop == media[0].stop),
    );
    verdict(
        "E11: durability ordering NVMe > NVDIMM > DRAM",
        media[0].durability_lag > media[1].durability_lag
            && media[1].durability_lag > media[2].durability_lag,
    );

    let stripes = bench::stripe_sweep(64 << 20, &[1, 4]);
    verdict(
        "E12: 4-drive stripe flushes >=2x faster",
        stripes[0].durability_lag.as_nanos() >= 2 * stripes[1].durability_lag.as_nanos(),
    );

    println!("
  {pass} passed, {fail} failed");
    if fail > 0 {
        std::process::exit(1);
    }
}

fn header(title: &str) {
    println!("\n==========================================================================");
    println!("{title}");
    println!("==========================================================================");
}

fn fig1() {
    header("Figure 1 — system architecture self-check");
    for (component, ok) in bench::fig1_selfcheck() {
        println!("  [{}] {component}", if ok { "ok" } else { "MISSING" });
    }
}

fn table1() {
    header("Table 1 — command line interface (see `sls --help`)");
    for (cmd, what) in [
        ("sls persist", "Add an application to a persistence group"),
        ("sls attach", "Attach a persistence group to a backend"),
        ("sls detach", "Detach a persistence group from a backend"),
        ("sls checkpoint", "Checkpoint an application"),
        ("sls restore", "Restore an application from an image"),
        ("sls ps", "List applications in Aurora"),
        ("sls send", "Send an application to a remote"),
        ("sls recv", "Receive an application from a remote"),
    ] {
        println!("  {cmd:<16} {what}");
    }
    println!("  (each is exercised end-to-end by tests/cli_table1.rs)");
}

fn table2() {
    header("Table 2 — libsls developer API");
    for (func, what) in [
        ("sls_checkpoint()", "Create an image"),
        ("sls_restore()", "Restore a checkpoint"),
        ("sls_rollback()", "Roll back state to last checkpoint"),
        ("sls_ntflush()", "Non-temporal flush (outside checkpoint)"),
        ("sls_barrier()", "Wait for a checkpoint to be flushed"),
        ("sls_mctl()", "Include/exclude memory regions"),
        ("sls_fdctl()", "Enable/disable external consistency"),
    ] {
        println!("  {func:<18} {what}");
    }
    println!("  (each is exercised end-to-end by tests/api_table2.rs)");
}

fn table3(bytes: u64) {
    header(&format!(
        "Table 3 — checkpoint stop time, Redis-class process, {} MiB working set",
        bytes >> 20
    ));
    let (full, incr) = bench::table3(bytes);
    let paper = [(267.9, 239.7), (5145.9, 711.1), (5413.8, 950.8)];
    println!(
        "  {:<24} {:>12} {:>12}   (paper: full / incremental)",
        "Checkpoint", "Full", "Incremental"
    );
    let rows = [
        ("Metadata copy (us)", full.metadata, incr.metadata, paper[0]),
        ("Lazy data copy (us)", full.lazy, incr.lazy, paper[1]),
        ("Application stop (us)", full.stop, incr.stop, paper[2]),
    ];
    for (label, f, i, (pf, pi)) in rows {
        println!(
            "  {label:<24} {:>12} {:>12}   ({pf} / {pi})",
            bench::us(f),
            bench::us(i)
        );
    }
    println!(
        "  pages captured: full {} / incremental {}   lazy-copy ratio: {:.1}x (paper 7.2x)",
        full.pages,
        incr.pages,
        full.lazy.as_nanos() as f64 / incr.lazy.as_nanos().max(1) as f64
    );
    println!(
        "  stop < 1ms for incremental: {}",
        incr.stop < SimDuration::from_millis(1)
    );
}

fn table4(bytes: u64) {
    header(&format!(
        "Table 4 — restore time breakdown (Redis working set {} MiB)",
        bytes >> 20
    ));
    let cols = bench::table4(bytes);
    let paper: [(f64, f64, f64, f64); 3] = [
        (0.0, 494.4, 261.1, 755.5),
        (0.0, 144.6, 240.4, 454.4),
        (322.7, 122.6, 206.9, 652.2),
    ];
    println!(
        "  {:<22} {:>18} {:>18} {:>18}",
        "Restore", cols[0].label, cols[1].label, cols[2].label
    );
    let fmt_paper = |v: f64| {
        if v == 0.0 {
            "N/A".to_string()
        } else {
            format!("{v}")
        }
    };
    type GetCol = fn(&bench::Table4Col) -> SimDuration;
    let rows: [(&str, GetCol, usize); 4] = [
        ("Object store read (us)", |c| c.objstore_read, 0),
        ("Memory state (us)", |c| c.memory, 1),
        ("Metadata state (us)", |c| c.metadata, 2),
        ("Total latency (us)", |c| c.total, 3),
    ];
    for (label, get, row_idx) in rows {
        let paper_vals: Vec<String> = paper
            .iter()
            .map(|p| fmt_paper([p.0, p.1, p.2, p.3][row_idx]))
            .collect();
        println!(
            "  {label:<22} {:>18} {:>18} {:>18}   (paper: {} / {} / {})",
            bench::us(get(&cols[0])),
            bench::us(get(&cols[1])),
            bench::us(get(&cols[2])),
            paper_vals[0],
            paper_vals[1],
            paper_vals[2],
        );
    }
    println!(
        "  all restores < 1ms: {}",
        cols.iter().all(|c| c.total < SimDuration::from_millis(1))
    );
}

fn freq(bytes: u64) {
    header(&format!(
        "E5 — checkpoint frequency sweep ({} MiB working set, 1 simulated second)",
        bytes >> 20
    ));
    println!(
        "  {:>10} {:>10} {:>14} {:>12} {:>12}",
        "period", "achieved", "mean stop", "overhead", "backlog"
    );
    for row in bench::freq_sweep(bytes, &[1, 2, 5, 10, 20, 50, 100]) {
        println!(
            "  {:>10} {:>10} {:>12}us {:>11.2}% {:>12}",
            format!("{}", row.period),
            row.achieved,
            bench::us(row.mean_stop),
            row.overhead_pct,
            format!("{}", row.backlog),
        );
    }
    println!("  paper claim: up to 100 checkpoints/sec with modest overhead.");
}

fn dedup(images: u64) {
    header("E6 — serverless image density (object-store dedup) + warm-up");
    let r = bench::dedup_density(images, 512, 16);
    println!(
        "  first image: {} blocks; each additional image: {:.1} blocks (runtime 512 pages + fn 16 pages)",
        r.first_image_blocks, r.marginal_blocks
    );
    println!(
        "  density gain: {:.0}x smaller marginal image",
        r.first_image_blocks as f64 / r.marginal_blocks.max(0.01)
    );
    println!(
        "  warm-up: first instance {} major faults; second instance {} (shares frames)",
        r.first_instance_majors, r.second_instance_majors
    );
    println!("  paper claim: functions are small deltas over the runtime; instances warm each other.");

    // E6a — the ablation: the same density run with content-hash dedup
    // disabled. Every image pays its full runtime again.
    let off = bench::dedup_density_with(false, images, 512, 16);
    println!(
        "  ablation (dedup off): each additional image costs {:.1} blocks ({:.0}x more)",
        off.marginal_blocks,
        off.marginal_blocks / r.marginal_blocks.max(0.01)
    );
}

fn kvports(ops: u64) {
    header(&format!(
        "E7 — KV persistence strategies ({ops} durable mutations, zipfian)"
    ));
    println!(
        "  {:<26} {:>12} {:>12} {:>12} {:>14}",
        "strategy", "total", "mean/op", "p99/op", "worst stall"
    );
    for row in bench::kv_ports(ops) {
        println!(
            "  {:<26} {:>12} {:>10}us {:>10}us {:>14}",
            row.label,
            format!("{}", row.total),
            bench::us(row.mean_op),
            bench::us(row.p99_op),
            format!("{}", row.worst_stall),
        );
    }
    println!("  paper claim: the Aurora port outperforms fork- and WAL-based persistence.");
}

fn lazy(bytes: u64) {
    header(&format!(
        "E9 — restore modes, {} MiB image, 64-page hot set",
        bytes >> 20
    ));
    println!(
        "  {:<16} {:>16} {:>12} {:>12} {:>14}",
        "mode", "restore latency", "prefetched", "post majors", "hot-set pass"
    );
    for row in bench::lazy_restore(bytes, 64) {
        println!(
            "  {:<16} {:>16} {:>12} {:>12} {:>14}",
            row.label,
            format!("{}", row.restore_latency),
            row.prefetched,
            row.post_majors,
            format!("{}", row.first_run),
        );
    }
    println!("  paper claim: lazy restore keeps latency image-size-independent; prefetch absorbs the fault storm.");
}

fn migrate(quick: bool) {
    header("E10 — live migration: downtime vs working-set size");
    let sizes: &[u64] = if quick {
        &[16 << 20, 64 << 20]
    } else {
        &[16 << 20, 64 << 20, 256 << 20]
    };
    println!(
        "  {:>10} {:>8} {:>14} {:>14} {:>12} {:>14}",
        "image", "rounds", "total bytes", "final round", "downtime", "dst restore"
    );
    for row in bench::migrate_sweep(sizes) {
        println!(
            "  {:>7}MiB {:>8} {:>14} {:>14} {:>12} {:>14}",
            row.data_bytes >> 20,
            row.rounds,
            row.total_bytes,
            row.final_round_bytes,
            format!("{}", row.downtime),
            format!("{}", row.restore_total),
        );
    }
    println!("  shape: downtime tracks the final delta, not the image size (pre-copy works).");
}

fn media(bytes: u64) {
    header(&format!(
        "E11 — backend media ablation ({} MiB working set, steady incremental)",
        bytes >> 20
    ));
    println!(
        "  {:>22} {:>12} {:>18} {:>14}",
        "medium", "stop time", "durability lag", "ntflush"
    );
    for row in bench::backend_sweep(bytes) {
        println!(
            "  {:>22} {:>12} {:>18} {:>14}",
            row.label,
            format!("{}", row.stop),
            format!("{}", row.durability_lag),
            format!("{}", row.ntflush),
        );
    }
    println!("  shape: stop time is medium-independent (async flush); durability follows device latency.");
}

fn stripe(bytes: u64) {
    header(&format!(
        "E12 — NVMe stripe width (the paper's four-Optane testbed), {} MiB working set",
        bytes >> 20
    ));
    println!(
        "  {:>8} {:>18} {:>16} {:>14}",
        "drives", "durability lag", "ckpts/s @1ms", "backlog"
    );
    for row in bench::stripe_sweep(bytes, &[1, 2, 4, 8]) {
        println!(
            "  {:>8} {:>18} {:>16} {:>14}",
            row.width,
            format!("{}", row.durability_lag),
            row.achieved_1khz,
            format!("{}", row.backlog),
        );
    }
    println!("  shape: flush bandwidth — and the checkpoint-frequency bound — scales with drives.");
}

fn recrep() {
    header("E8 — record/replay bounded by the checkpoint interval");
    for interval in [16u64, 64, 256] {
        let r = bench::recrep(512, interval);
        println!(
            "  {} inputs, checkpoint every {:>3}: peak log {:>3} records (bounded: {}), replay exact: {}",
            r.inputs,
            r.interval,
            r.peak_log,
            r.bounded(),
            r.replay_exact
        );
    }
    println!("  paper claim: checkpoints bound the record log; rollback + replay reproduces the crash window.");
}
