//! Replication benchmark: what a hot standby costs and what a failover
//! loses.
//!
//! Sweeps checkpoint period × link fault intensity. Each cell boots a
//! primary with an attached standby, runs a fixed number of full-dirty
//! checkpoint epochs shipping each one over the fault-modeled link, then
//! kills the primary abruptly right after the last commit — with acks
//! and retransmissions still in flight — and promotes the standby.
//!
//! Reported per cell:
//!
//! * **RPO** — epochs and payload bytes lost to the failover
//!   (`shipped - promoted`, and the shipped-byte mass above the promoted
//!   epoch). Clean links lose nothing because promote drains in-flight
//!   frames; lossy links lose the epochs whose dropped frames the dead
//!   primary never got to retransmit — shrinking as the checkpoint
//!   period grows and retransmission catches up between epochs.
//! * **RTO** — virtual time from the kill to the promoted standby
//!   serving the image: drain + discard-partials + boot + eager restore
//!   + every page touched.
//!
//! Everything is measured in **virtual time** (modeled NVMe and NIC
//! latency charged to the simulation clock), so the numbers are
//! deterministic and machine-independent. Emits
//! `BENCH_replication.json`.
//!
//! Flags:
//!
//! * `--quick` — smaller image and fewer epochs (CI smoke).
//! * `--gate` — exit non-zero unless every clean-link cell has zero RPO
//!   and a verified promoted image, every cell has a positive RTO, and
//!   the hostile link actually dropped frames.
//! * `--out <path>` — output path (default `BENCH_replication.json`).

use std::fmt::Write as _;

use aurora_core::restore::RestoreMode;
use aurora_core::{promote_to_host, Host, ReplConfig};
use aurora_hw::{LinkFaultRates, ModelDev};
use aurora_objstore::StoreConfig;
use aurora_sim::time::SimDuration;
use aurora_sim::SimClock;
use criterion::wall_now;

/// Virtual time between checkpoint epochs, in milliseconds. The sweep's
/// x-axis: longer periods give retransmission more room to drain the
/// unacked tail before the next epoch piles on.
const PERIODS_MS: [u64; 3] = [2, 10, 50];

/// Link fault intensities swept per period.
const FAULTS: [(&str, fn() -> LinkFaultRates); 3] = [
    ("clean", LinkFaultRates::clean),
    ("lossy", LinkFaultRates::lossy),
    ("hostile", LinkFaultRates::hostile),
];

/// Upper bound on the virtual time between link pumps. Must sit below
/// the retransmit timeout (1 ms) or the coarse pumping itself would
/// manufacture spurious retransmissions on a clean link.
const PUMP_STEP_US: u64 = 250;

struct BenchConfig {
    /// Pages in the checkpointed image (all dirtied every epoch).
    pages: u64,
    /// Checkpoint epochs shipped before the kill.
    epochs: u64,
}

impl BenchConfig {
    fn standard() -> Self {
        BenchConfig {
            pages: 64,
            epochs: 8,
        }
    }

    fn quick() -> Self {
        BenchConfig {
            pages: 24,
            epochs: 5,
        }
    }
}

/// Measured numbers for one (period, fault intensity) cell.
struct CellResult {
    period_ms: u64,
    fault: &'static str,
    shipped_epochs: u64,
    acked_at_kill: u64,
    promoted_epoch: u64,
    rpo_epochs: u64,
    rpo_bytes: u64,
    rto_virtual_ms: f64,
    frames_sent: u64,
    frames_retransmitted: u64,
    frames_dropped: u64,
    promoted_verified: bool,
}

fn store_config() -> StoreConfig {
    StoreConfig {
        journal_blocks: 2048,
        materialize_data: true,
        ..StoreConfig::default()
    }
}

/// One sweep cell: run the replicated workload, kill the primary after
/// the last commit, promote the standby and time it back to serving.
fn run_cell(cfg: &BenchConfig, period_ms: u64, fault: &'static str, rates: LinkFaultRates) -> CellResult {
    let clock = SimClock::new();
    let blocks = cfg.pages * 8 + 32 * 1024;
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", blocks));
    let mut host = Host::boot("repl-bench", dev, store_config()).expect("host boot");
    host.attach_standby(ReplConfig {
        seed: 0xBE7C_0000 ^ (period_ms << 8) ^ fault.len() as u64,
        rates,
        max_lag_epochs: u64::MAX, // the bench reports lag, it doesn't police it
        standby_blocks: blocks,
        standby_store: store_config(),
        ..ReplConfig::default()
    })
    .expect("attach standby");

    let pid = host.kernel.spawn("image");
    let addr = host
        .kernel
        .mmap_anon(pid, cfg.pages * 4096, false)
        .expect("map");
    let gid = host.persist("image", pid).expect("persist");

    let period = SimDuration::from_millis(period_ms);
    let step = SimDuration::from_micros(PUMP_STEP_US);
    let pumps = period.as_nanos().div_ceil(step.as_nanos());
    // Cumulative shipped payload bytes after each epoch, so the bytes
    // above the promoted epoch can be priced exactly after the kill.
    let mut shipped_cum: Vec<u64> = Vec::new();
    for epoch in 0..cfg.epochs {
        for p in 0..cfg.pages {
            let body = [epoch as u8 + 1, (p % 250) as u8, 0xC4];
            host.kernel
                .mem_write(pid, addr + p * 4096, &body)
                .expect("dirty");
        }
        let bd = host
            .checkpoint(gid, epoch == 0, None)
            .expect("checkpoint");
        assert!(bd.outcome.committed(), "checkpoint must commit");
        host.clock.advance_to(bd.durable_at);
        shipped_cum.push(host.replication().expect("standby").stats.bytes_shipped);
        // Let the inter-epoch period elapse in sub-steps so the link
        // keeps moving: deliveries land, acks return, timers fire. The
        // final epoch gets no grace period — the kill lands right on
        // its heels, which is the failover that actually hurts.
        if epoch + 1 < cfg.epochs {
            for _ in 0..pumps {
                let next = host.clock.now() + step;
                host.clock.advance_to(next);
                host.replication_pump();
            }
        }
    }

    // Abrupt kill: the primary vanishes with the last epoch's frames
    // (and any retransmit backlog) still in flight.
    let t_kill = host.clock.now();
    let repl = host.detach_standby().expect("standby attached");
    let acked_at_kill = repl.acked_epoch();
    let shipped = repl.shipped_epoch();
    let sent = repl.stats.frames_sent;
    let retx = repl.stats.frames_retransmitted;
    let dropped = repl.data_link_stats().dropped;
    drop(host);

    let (report, rto, verified) = match promote_to_host(repl, "standby") {
        Ok((mut standby, report)) => {
            let mut verified = false;
            if report.promoted_epoch > 0 {
                let store = standby.sls.primary.clone();
                let head = store.borrow().head().expect("promoted head");
                let r = standby
                    .restore(&store, head, RestoreMode::Eager)
                    .expect("restore");
                let np = r.restored_pid(pid.0).expect("pid");
                let mut buf = [0u8; 3];
                verified = true;
                for p in 0..cfg.pages {
                    standby
                        .kernel
                        .mem_read(np, addr + p * 4096, &mut buf)
                        .expect("touch");
                    let want = [report.promoted_epoch as u8, (p % 250) as u8, 0xC4];
                    verified &= buf == want;
                }
            }
            let rto = standby.clock.now().since(t_kill).as_secs_f64() * 1e3;
            (report, rto, verified)
        }
        Err(e) => panic!("promote failed: {e}"),
    };

    let total_bytes = shipped_cum.last().copied().unwrap_or(0);
    let promoted_bytes = if report.promoted_epoch == 0 {
        0
    } else {
        shipped_cum
            .get(report.promoted_epoch as usize - 1)
            .copied()
            .unwrap_or(total_bytes)
    };
    CellResult {
        period_ms,
        fault,
        shipped_epochs: shipped,
        acked_at_kill,
        promoted_epoch: report.promoted_epoch,
        rpo_epochs: shipped.saturating_sub(report.promoted_epoch),
        rpo_bytes: total_bytes.saturating_sub(promoted_bytes),
        rto_virtual_ms: rto,
        frames_sent: sent,
        frames_retransmitted: retx,
        frames_dropped: dropped,
        promoted_verified: verified,
    }
}

fn emit_json(cfg: &BenchConfig, rows: &[CellResult], harness_secs: f64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"replication\",");
    let _ = writeln!(
        s,
        "  \"workload\": \"full_dirty_epochs_shipped_to_standby_then_abrupt_kill_and_promote\","
    );
    let _ = writeln!(s, "  \"time_domain\": \"virtual\",");
    let _ = writeln!(s, "  \"image_pages\": {},", cfg.pages);
    let _ = writeln!(s, "  \"epochs\": {},", cfg.epochs);
    let _ = writeln!(s, "  \"harness_wall_secs\": {harness_secs:.3},");
    let _ = writeln!(s, "  \"cells\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"period_ms\": {},", r.period_ms);
        let _ = writeln!(s, "      \"fault\": \"{}\",", r.fault);
        let _ = writeln!(s, "      \"shipped_epochs\": {},", r.shipped_epochs);
        let _ = writeln!(s, "      \"acked_at_kill\": {},", r.acked_at_kill);
        let _ = writeln!(s, "      \"promoted_epoch\": {},", r.promoted_epoch);
        let _ = writeln!(s, "      \"rpo_epochs\": {},", r.rpo_epochs);
        let _ = writeln!(s, "      \"rpo_bytes\": {},", r.rpo_bytes);
        let _ = writeln!(s, "      \"rto_virtual_ms\": {:.3},", r.rto_virtual_ms);
        let _ = writeln!(s, "      \"frames_sent\": {},", r.frames_sent);
        let _ = writeln!(
            s,
            "      \"frames_retransmitted\": {},",
            r.frames_retransmitted
        );
        let _ = writeln!(s, "      \"frames_dropped\": {},", r.frames_dropped);
        let _ = writeln!(s, "      \"promoted_verified\": {}", r.promoted_verified);
        let _ = write!(s, "    }}");
        let _ = writeln!(s, "{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_replication.json".to_string());
    let cfg = if quick {
        BenchConfig::quick()
    } else {
        BenchConfig::standard()
    };

    let t0 = wall_now();
    let mut rows = Vec::new();
    for period_ms in PERIODS_MS {
        for (fault, rates) in FAULTS {
            rows.push(run_cell(&cfg, period_ms, fault, rates()));
        }
    }
    let harness_secs = t0.elapsed().as_secs_f64();
    let json = emit_json(&cfg, &rows, harness_secs);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_replication: cannot write {out}: {e}");
        std::process::exit(2);
    }
    print!("{json}");

    for r in &rows {
        println!(
            "period={}ms {}: shipped {} acked-at-kill {} promoted {} | \
             RPO {} epochs / {} bytes | RTO {:.3} virtual ms | \
             {} frames (+{} retx, {} dropped) verified={}",
            r.period_ms,
            r.fault,
            r.shipped_epochs,
            r.acked_at_kill,
            r.promoted_epoch,
            r.rpo_epochs,
            r.rpo_bytes,
            r.rto_virtual_ms,
            r.frames_sent,
            r.frames_retransmitted,
            r.frames_dropped,
            r.promoted_verified,
        );
    }

    if gate {
        let mut failed = false;
        for r in &rows {
            if r.fault == "clean" && r.rpo_epochs != 0 {
                eprintln!(
                    "bench_replication: GATE FAILED: clean link at {}ms lost {} epochs",
                    r.period_ms, r.rpo_epochs
                );
                failed = true;
            }
            if r.fault == "clean" && !r.promoted_verified {
                eprintln!(
                    "bench_replication: GATE FAILED: clean link at {}ms promoted an \
                     unverified image",
                    r.period_ms
                );
                failed = true;
            }
            // RTO is undefined when nothing promoted (the standby has no
            // image to serve); every real promote must take virtual time.
            if r.promoted_epoch > 0 && r.rto_virtual_ms <= 0.0 {
                eprintln!(
                    "bench_replication: GATE FAILED: {} at {}ms reported a non-positive RTO",
                    r.fault, r.period_ms
                );
                failed = true;
            }
            if r.promoted_epoch > 0 && !r.promoted_verified {
                eprintln!(
                    "bench_replication: GATE FAILED: {} at {}ms promoted epoch {} but the \
                     restored image did not match it",
                    r.fault, r.period_ms, r.promoted_epoch
                );
                failed = true;
            }
        }
        if !rows
            .iter()
            .any(|r| r.fault == "hostile" && r.frames_dropped > 0)
        {
            eprintln!(
                "bench_replication: GATE FAILED: the hostile link never dropped a frame"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "gate passed: clean links lose nothing and verify, every promote reaches \
             serving in positive virtual time"
        );
    }
}
