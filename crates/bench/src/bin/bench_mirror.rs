//! Mirror benchmark: what replication costs when healthy and what it
//! saves when a replica dies.
//!
//! Builds the same checkpointed workload on an unmirrored store and on
//! width-2 / width-3 mirrors, then measures checkpoint flush and eager
//! restore latency in two regimes per mirror:
//!
//! * **healthy** — every replica active: writes fan out to all of them
//!   (the steady-state price of redundancy), reads come from the
//!   preferred replica.
//! * **degraded** — replica 0 killed: writes fan to the survivors and
//!   the checkpoint commits with a `DegradedMirror` outcome, restores
//!   fail over to a healthy twin.
//!
//! After the degraded rounds the dead replica is revived and the
//! background resilver is timed rebuilding it from the live allocation
//! maps, ending with a fully `Committed` checkpoint.
//!
//! Everything is measured in **virtual time** (modeled NVMe latency and
//! bandwidth charged to the simulation clock), so the numbers are
//! deterministic and machine-independent. Emits `BENCH_mirror.json`.
//!
//! Flags:
//!
//! * `--quick` — smaller image and fewer rounds (CI smoke).
//! * `--gate` — exit non-zero unless degraded checkpoints keep at least
//!   85% of the same mirror's healthy throughput, the resilver moves
//!   real blocks, and the first post-resilver checkpoint commits clean.
//! * `--out <path>` — output path (default `BENCH_mirror.json`).

use std::fmt::Write as _;

use aurora_core::restore::RestoreMode;
use aurora_core::{CheckpointOutcome, Host};
use aurora_hw::{BlockDev, ModelDev};
use aurora_objstore::{CkptId, StoreConfig};
use aurora_sim::stats::LogHistogram;
use aurora_sim::SimClock;
use criterion::wall_now;

/// Mirror widths swept; width 1 is the unmirrored reference.
const WIDTHS: [usize; 3] = [1, 2, 3];

struct BenchConfig {
    /// Pages in the checkpointed image.
    pages: u64,
    /// Checkpoint rounds per regime.
    ckpt_rounds: u32,
    /// Cold eager restores per regime.
    restore_rounds: u32,
}

impl BenchConfig {
    fn standard() -> Self {
        BenchConfig {
            pages: 768,
            ckpt_rounds: 4,
            restore_rounds: 4,
        }
    }

    fn quick() -> Self {
        BenchConfig {
            pages: 192,
            ckpt_rounds: 2,
            restore_rounds: 2,
        }
    }
}

/// Measured numbers for one (width, regime) row.
struct RegimeResult {
    width: usize,
    state: &'static str,
    ckpt_pages_per_sec: f64,
    ckpt_p50_us: f64,
    ckpt_p99_us: f64,
    restore_pages_per_sec: f64,
    restore_p50_us: f64,
    restore_p99_us: f64,
    degraded_commits: u32,
    failovers: u64,
    degraded_writes: u64,
}

/// Resilver numbers for one mirror width.
struct ResilverResult {
    width: usize,
    secs: f64,
    blocks: u64,
    extents: u64,
    post_outcome_clean: bool,
}

/// Boots a width-`width` world (unmirrored when 1) with `pages` written
/// pages, persisted and durably checkpointed once as the baseline.
fn build_world(
    cfg: &BenchConfig,
    width: usize,
) -> (Host, aurora_posix::Pid, u64, aurora_core::GroupId) {
    let clock = SimClock::new();
    let blocks = cfg.pages * 8 + 64 * 1024;
    let config = StoreConfig {
        journal_blocks: 8 * 1024,
        materialize_data: true,
        ..StoreConfig::default()
    };
    let mut host = if width == 1 {
        let dev = Box::new(ModelDev::nvme(clock, "nvme0", blocks));
        Host::boot("mirror-bench", dev, config).expect("host boot")
    } else {
        let members: Vec<Box<dyn BlockDev>> = (0..width)
            .map(|i| {
                Box::new(ModelDev::nvme(clock.clone(), &format!("nvme{i}"), blocks))
                    as Box<dyn BlockDev>
            })
            .collect();
        Host::boot_mirrored("mirror-bench", members, config).expect("host boot")
    };
    let pid = host.kernel.spawn("image");
    let addr = host
        .kernel
        .mmap_anon(pid, cfg.pages * 4096, false)
        .expect("map");
    for p in 0..cfg.pages {
        let seed = if p % 8 == 7 { p / 8 } else { p };
        let body = [(seed % 249) as u8 + 1; 48];
        host.kernel
            .mem_write(pid, addr + p * 4096, &body)
            .expect("write");
    }
    let gid = host.persist("image", pid).expect("persist");
    let bd = host.checkpoint(gid, true, Some("base")).expect("ckpt");
    host.clock.advance_to(bd.durable_at);
    (host, pid, addr, gid)
}

/// One cold eager restore round at 4 workers: drop every cache, restore,
/// touch every page, retire the instance. Returns the virtual span.
fn restore_round(host: &mut Host, cfg: &BenchConfig, addr: u64, ckpt: CkptId) -> f64 {
    let store = host.sls.primary.clone();
    host.release_image(&store, ckpt);
    store.borrow_mut().drop_caches().expect("materialized store");
    let t0 = host.clock.now();
    let r = host
        .restore(&store, ckpt, RestoreMode::Eager)
        .expect("restore");
    let np = r.root_pid().expect("pid");
    let mut buf = [0u8; 8];
    for p in 0..cfg.pages {
        host.kernel
            .mem_read(np, addr + p * 4096, &mut buf)
            .expect("touch");
    }
    let span = host.clock.now().since(t0).as_secs_f64();
    let _ = host.kernel.exit(np, 0);
    host.kernel.procs.remove(&np);
    span
}

/// Mirror stat snapshot (failovers, degraded writes); zeros when
/// unmirrored.
fn mirror_stats(host: &Host) -> (u64, u64) {
    let st = host.sls.primary.borrow();
    let dev = st.device();
    match dev.as_mirror() {
        Some(m) => {
            let s = m.mirror_stats();
            (s.failovers, s.degraded_writes)
        }
        None => (0, 0),
    }
}

/// One regime at a fixed width: `ckpt_rounds` full dirty checkpoints,
/// then `restore_rounds` cold eager restores of the last image.
fn run_regime(
    host: &mut Host,
    cfg: &BenchConfig,
    width: usize,
    state: &'static str,
    pid: aurora_posix::Pid,
    addr: u64,
    gid: aurora_core::GroupId,
) -> RegimeResult {
    let (fail0, degw0) = mirror_stats(host);
    let mut pages = 0u64;
    let mut flush_secs = 0f64;
    let mut flush_lat = LogHistogram::new();
    let mut degraded_commits = 0u32;
    let mut last_ckpt = None;
    for r in 0..cfg.ckpt_rounds {
        // Dirty every page so each flush moves the whole image.
        for p in 0..cfg.pages {
            let salt = [r as u8 + 1, (p % 247) as u8, 0xA5];
            host.kernel
                .mem_write(pid, addr + p * 4096 + 8, &salt)
                .expect("dirty");
        }
        let bd = host.checkpoint(gid, true, None).expect("checkpoint");
        assert!(bd.outcome.committed(), "checkpoint must commit in {state}");
        if bd.outcome == CheckpointOutcome::DegradedMirror {
            degraded_commits += 1;
        }
        host.clock.advance_to(bd.durable_at);
        pages += bd.pages;
        flush_secs += bd.flush_span.as_secs_f64();
        flush_lat.record_duration(bd.flush_span);
        last_ckpt = bd.ckpt;
    }
    let ckpt = last_ckpt.expect("durable checkpoint id");

    let mut restore_secs = 0f64;
    let mut restore_lat = LogHistogram::new();
    for _ in 0..cfg.restore_rounds {
        let secs = restore_round(host, cfg, addr, ckpt);
        restore_secs += secs;
        restore_lat.record_duration(aurora_sim::time::SimDuration::from_nanos(
            (secs * 1e9) as u64,
        ));
    }

    let (fail1, degw1) = mirror_stats(host);
    RegimeResult {
        width,
        state,
        ckpt_pages_per_sec: if flush_secs > 0.0 {
            pages as f64 / flush_secs
        } else {
            0.0
        },
        ckpt_p50_us: flush_lat.p50() as f64 / 1_000.0,
        ckpt_p99_us: flush_lat.p99() as f64 / 1_000.0,
        restore_pages_per_sec: cfg.pages as f64 * cfg.restore_rounds as f64 / restore_secs,
        restore_p50_us: restore_lat.p50() as f64 / 1_000.0,
        restore_p99_us: restore_lat.p99() as f64 / 1_000.0,
        degraded_commits,
        failovers: fail1 - fail0,
        degraded_writes: degw1 - degw0,
    }
}

/// Full sweep for one width: healthy regime, then (mirrors only) kill
/// replica 0, degraded regime, revive, timed resilver and a clean
/// closing checkpoint.
fn run_width(
    cfg: &BenchConfig,
    width: usize,
) -> (Vec<RegimeResult>, Option<ResilverResult>) {
    let (mut host, pid, addr, gid) = build_world(cfg, width);
    let mut rows = vec![run_regime(&mut host, cfg, width, "healthy", pid, addr, gid)];
    if width == 1 {
        return (rows, None);
    }

    {
        let mut st = host.sls.primary.borrow_mut();
        let m = st.device_mut().as_mirror_mut().expect("mirror");
        m.kill_replica(0).expect("kill replica 0");
    }
    rows.push(run_regime(&mut host, cfg, width, "degraded", pid, addr, gid));

    {
        let mut st = host.sls.primary.borrow_mut();
        let m = st.device_mut().as_mirror_mut().expect("mirror");
        m.revive_replica(0).expect("revive replica 0");
    }
    let t0 = host.clock.now();
    let rep = host.resilver().expect("resilver");
    let secs = host.clock.now().since(t0).as_secs_f64();

    // The rebuilt mirror must checkpoint clean again.
    for p in 0..cfg.pages {
        host.kernel
            .mem_write(pid, addr + p * 4096 + 8, &[0xEE])
            .expect("dirty");
    }
    let bd = host.checkpoint(gid, true, None).expect("closing checkpoint");
    host.clock.advance_to(bd.durable_at);
    let resilver = ResilverResult {
        width,
        secs,
        blocks: rep.blocks,
        extents: rep.extents,
        post_outcome_clean: bd.outcome == CheckpointOutcome::Committed,
    };
    (rows, Some(resilver))
}

fn emit_json(
    cfg: &BenchConfig,
    rows: &[RegimeResult],
    resilvers: &[ResilverResult],
    harness_secs: f64,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"mirror\",");
    let _ = writeln!(
        s,
        "  \"workload\": \"full_dirty_checkpoints_and_cold_eager_restores\","
    );
    let _ = writeln!(s, "  \"time_domain\": \"virtual\",");
    let _ = writeln!(s, "  \"image_pages\": {},", cfg.pages);
    let _ = writeln!(s, "  \"harness_wall_secs\": {harness_secs:.3},");
    let _ = writeln!(s, "  \"variants\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"width\": {},", r.width);
        let _ = writeln!(s, "      \"state\": \"{}\",", r.state);
        let _ = writeln!(s, "      \"ckpt_pages_per_sec\": {:.1},", r.ckpt_pages_per_sec);
        let _ = writeln!(s, "      \"ckpt_p50_us\": {:.1},", r.ckpt_p50_us);
        let _ = writeln!(s, "      \"ckpt_p99_us\": {:.1},", r.ckpt_p99_us);
        let _ = writeln!(
            s,
            "      \"restore_pages_per_sec\": {:.1},",
            r.restore_pages_per_sec
        );
        let _ = writeln!(s, "      \"restore_p50_us\": {:.1},", r.restore_p50_us);
        let _ = writeln!(s, "      \"restore_p99_us\": {:.1},", r.restore_p99_us);
        let _ = writeln!(s, "      \"degraded_commits\": {},", r.degraded_commits);
        let _ = writeln!(s, "      \"failovers\": {},", r.failovers);
        let _ = writeln!(s, "      \"degraded_writes\": {}", r.degraded_writes);
        let _ = write!(s, "    }}");
        let _ = writeln!(s, "{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"resilver\": [");
    for (i, r) in resilvers.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"width\": {},", r.width);
        let _ = writeln!(s, "      \"virtual_secs\": {:.6},", r.secs);
        let _ = writeln!(s, "      \"blocks_copied\": {},", r.blocks);
        let _ = writeln!(s, "      \"extents_copied\": {},", r.extents);
        let _ = writeln!(
            s,
            "      \"post_resilver_checkpoint_clean\": {}",
            r.post_outcome_clean
        );
        let _ = write!(s, "    }}");
        let _ = writeln!(s, "{}", if i + 1 < resilvers.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_mirror.json".to_string());
    let cfg = if quick {
        BenchConfig::quick()
    } else {
        BenchConfig::standard()
    };

    let t0 = wall_now();
    let mut rows = Vec::new();
    let mut resilvers = Vec::new();
    for width in WIDTHS {
        let (mut r, resilver) = run_width(&cfg, width);
        rows.append(&mut r);
        resilvers.extend(resilver);
    }
    let harness_secs = t0.elapsed().as_secs_f64();
    let json = emit_json(&cfg, &rows, &resilvers, harness_secs);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_mirror: cannot write {out}: {e}");
        std::process::exit(2);
    }
    print!("{json}");

    for r in &rows {
        println!(
            "width={} {}: ckpt {:.0} pages/sec p50 {:.0}us p99 {:.0}us, \
             restore {:.0} pages/sec p50 {:.0}us, {} degraded commits, \
             {} failovers, {} degraded writes",
            r.width,
            r.state,
            r.ckpt_pages_per_sec,
            r.ckpt_p50_us,
            r.ckpt_p99_us,
            r.restore_pages_per_sec,
            r.restore_p50_us,
            r.degraded_commits,
            r.failovers,
            r.degraded_writes,
        );
    }
    for r in &resilvers {
        println!(
            "width={} resilver: {} blocks in {} extents over {:.3} virtual ms, clean close: {}",
            r.width,
            r.blocks,
            r.extents,
            r.secs * 1e3,
            r.post_outcome_clean,
        );
    }

    if gate {
        let mut failed = false;
        for width in [2usize, 3] {
            let healthy = rows
                .iter()
                .find(|r| r.width == width && r.state == "healthy")
                .expect("healthy row");
            let degraded = rows
                .iter()
                .find(|r| r.width == width && r.state == "degraded")
                .expect("degraded row");
            if degraded.ckpt_pages_per_sec < 0.85 * healthy.ckpt_pages_per_sec {
                eprintln!(
                    "bench_mirror: GATE FAILED: width-{width} degraded ckpt {:.0} pages/sec \
                     below 85% of healthy {:.0}",
                    degraded.ckpt_pages_per_sec, healthy.ckpt_pages_per_sec
                );
                failed = true;
            }
            if degraded.degraded_commits == 0 {
                eprintln!(
                    "bench_mirror: GATE FAILED: width-{width} degraded rounds never \
                     reported DegradedMirror"
                );
                failed = true;
            }
        }
        for r in &resilvers {
            if r.blocks == 0 {
                eprintln!(
                    "bench_mirror: GATE FAILED: width-{} resilver moved no blocks",
                    r.width
                );
                failed = true;
            }
            if !r.post_outcome_clean {
                eprintln!(
                    "bench_mirror: GATE FAILED: width-{} post-resilver checkpoint \
                     still degraded",
                    r.width
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("gate passed: degraded keeps >=85% of healthy, resilver rebuilds and closes clean");
    }
}
