//! Delta-log checkpoint benchmark: sub-page records vs full images.
//!
//! Runs a small-value KV churn workload — the regime the per-epoch
//! delta log exists for: every round dirties many pages by a few
//! hundred bytes each — twice, once with the delta path enabled
//! (default policy) and once with it disabled (`delta_max_bytes: 0`,
//! every flushed page is a full 4 KiB image). Emits `BENCH_wal.json`
//! with the incremental flush bytes of both variants, the reduction
//! factor, the delta-record counters, and an FNV digest of the restored
//! KV arena at 1, 2 and 8 restore workers for both variants.
//!
//! Flush bytes are measured in the checkpoint breakdown's own units
//! (full pages × 4096 + encoded delta bytes), so the reduction factor
//! is exactly the device-write footprint the delta path saves.
//!
//! Flags:
//!
//! * `--quick` — smaller workload and fewer rounds (CI smoke).
//! * `--gate <min>` — exit non-zero unless the flush-byte reduction is
//!   ≥ `min` (default 5.0) AND every restored-arena digest — across
//!   worker counts and across the two variants — is byte-identical.
//! * `--out <path>` — output path (default `BENCH_wal.json`).

use std::fmt::Write as _;

use aurora_apps::kv::{KvServer, PersistMode};
use aurora_apps::workload::{KeyDist, Workload};
use aurora_core::restore::RestoreMode;
use aurora_core::Host;
use aurora_hw::ModelDev;
use aurora_objstore::{CkptId, StoreConfig};
use aurora_sim::SimClock;
use criterion::wall_now;

/// Restore worker counts the digest sweep runs at.
const RESTORE_WORKERS: [usize; 3] = [1, 2, 8];

struct BenchConfig {
    /// KV arena bytes.
    arena: u64,
    /// Distinct keys in the workload.
    keys: u64,
    /// Value size in bytes (small on purpose: sub-page churn).
    val: usize,
    /// Mutations between checkpoints.
    ops_per_round: u64,
    /// Incremental checkpoint rounds after the full baseline.
    rounds: u32,
}

impl BenchConfig {
    fn standard() -> Self {
        BenchConfig {
            arena: 32 << 20,
            keys: 8 * 1024,
            val: 192,
            ops_per_round: 2048,
            rounds: 6,
        }
    }

    fn quick() -> Self {
        BenchConfig {
            arena: 8 << 20,
            keys: 2 * 1024,
            val: 128,
            ops_per_round: 512,
            rounds: 4,
        }
    }
}

/// Measured numbers for one variant (delta path on or off).
struct VariantResult {
    label: &'static str,
    /// Incremental flush bytes summed across the measured rounds.
    flush_bytes: u64,
    /// Pages handed to the flusher across those rounds.
    pages: u64,
    delta_records: u64,
    delta_bytes: u64,
    chains_compacted: u64,
    chain_len_max: u64,
    /// (restore workers, FNV digest of the restored arena).
    digests: Vec<(usize, u64)>,
}

fn boot(blocks: u64, delta_on: bool) -> Host {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", blocks));
    let mut config = StoreConfig {
        journal_blocks: 8 * 1024,
        ..StoreConfig::default()
    };
    if !delta_on {
        config.delta_max_bytes = 0;
    }
    Host::boot("wal-bench", dev, config).expect("host boot")
}

/// FNV-1a digest of the restored KV arena, read page by page through
/// the restored process.
fn arena_digest(host: &mut Host, ckpt: CkptId, arena: u64, workers: usize) -> u64 {
    host.sls.restore_workers = workers;
    let store = host.sls.primary.clone();
    let r = host
        .restore(&store, ckpt, RestoreMode::Eager)
        .expect("restore");
    let np = r.root_pid().expect("restored pid");
    let server =
        KvServer::attach(host, np, PersistMode::AuroraTransparent).expect("attach restored server");
    let base = server.heap_base();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = vec![0u8; 4096];
    for p in 0..arena / 4096 {
        host.kernel
            .mem_read(np, base + p * 4096, &mut buf)
            .expect("read arena");
        for &b in &buf {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    let _ = host.kernel.exit(np, 0);
    host.kernel.procs.remove(&np);
    h
}

/// One full trajectory: load the KV set, take a durable full baseline,
/// then `rounds` churn-and-incremental-checkpoint cycles, measuring the
/// incremental flush footprint; finally digest the restored arena at
/// each worker count.
fn run_variant(cfg: &BenchConfig, delta_on: bool) -> VariantResult {
    let mut host = boot(512 * 1024, delta_on);
    host.sls.flush_workers = 4;
    let mut server = KvServer::start(
        &mut host,
        PersistMode::AuroraTransparent,
        cfg.arena,
        16 * 1024,
    )
    .expect("kv server");
    let gid = server.gid.expect("transparent mode has a group");
    let mut w = Workload::new(42, cfg.keys, cfg.val, 0.0, KeyDist::Zipfian { theta: 0.99 });
    for op in w.load_ops() {
        server.exec(&mut host, &op).expect("load");
    }
    host.checkpoint(gid, true, None).expect("baseline");
    host.wait_durable(gid).expect("durable");

    let mut flush_bytes = 0u64;
    let mut pages = 0u64;
    let mut last = None;
    for round in 0..cfg.rounds {
        for _ in 0..cfg.ops_per_round {
            let op = w.next_op();
            server.exec(&mut host, &op).expect("op");
        }
        let name = format!("round-{round}");
        let bd = host
            .checkpoint(gid, false, Some(&name))
            .expect("incremental checkpoint");
        host.wait_durable(gid).expect("durable");
        flush_bytes += bd.flush_bytes;
        pages += bd.pages;
        last = bd.ckpt;
    }
    let ckpt = last.expect("at least one incremental round");

    let stats = {
        let store = host.sls.primary.borrow();
        (
            store.stats.delta_records,
            store.stats.delta_bytes,
            store.stats.chains_compacted,
            store.stats.chain_len_max,
        )
    };
    let digests = RESTORE_WORKERS
        .iter()
        .map(|&workers| (workers, arena_digest(&mut host, ckpt, cfg.arena, workers)))
        .collect();

    VariantResult {
        label: if delta_on { "delta" } else { "full" },
        flush_bytes,
        pages,
        delta_records: stats.0,
        delta_bytes: stats.1,
        chains_compacted: stats.2,
        chain_len_max: stats.3,
        digests,
    }
}

fn emit_json(delta: &VariantResult, full: &VariantResult, reduction: f64, harness_secs: f64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"delta_log_checkpoint\",");
    let _ = writeln!(s, "  \"workload\": \"kv_zipfian_small_value_churn\",");
    let _ = writeln!(s, "  \"harness_wall_secs\": {harness_secs:.3},");
    let _ = writeln!(s, "  \"flush_byte_reduction\": {reduction:.3},");
    let _ = writeln!(s, "  \"variants\": [");
    for (i, r) in [delta, full].iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"variant\": \"{}\",", r.label);
        let _ = writeln!(s, "      \"incremental_flush_bytes\": {},", r.flush_bytes);
        let _ = writeln!(s, "      \"pages_flushed\": {},", r.pages);
        let _ = writeln!(s, "      \"delta_records\": {},", r.delta_records);
        let _ = writeln!(s, "      \"delta_bytes\": {},", r.delta_bytes);
        let _ = writeln!(s, "      \"chains_compacted\": {},", r.chains_compacted);
        let _ = writeln!(s, "      \"chain_len_max\": {},", r.chain_len_max);
        let _ = writeln!(s, "      \"restore_digests\": [");
        for (j, (workers, digest)) in r.digests.iter().enumerate() {
            let _ = write!(
                s,
                "        {{ \"workers\": {workers}, \"digest\": \"{digest:#018x}\" }}"
            );
            let _ = writeln!(s, "{}", if j + 1 < r.digests.len() { "," } else { "" });
        }
        let _ = writeln!(s, "      ]");
        let _ = write!(s, "    }}");
        let _ = writeln!(s, "{}", if i == 0 { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate: Option<f64> = args
        .iter()
        .position(|a| a == "--gate")
        .map(|i| args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(5.0));
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_wal.json".to_string());
    let cfg = if quick {
        BenchConfig::quick()
    } else {
        BenchConfig::standard()
    };

    let t0 = wall_now();
    let delta = run_variant(&cfg, true);
    let full = run_variant(&cfg, false);
    let harness_secs = t0.elapsed().as_secs_f64();

    let reduction = if delta.flush_bytes > 0 {
        full.flush_bytes as f64 / delta.flush_bytes as f64
    } else {
        0.0
    };
    let json = emit_json(&delta, &full, reduction, harness_secs);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_wal: cannot write {out}: {e}");
        std::process::exit(2);
    }
    print!("{json}");

    println!(
        "delta path: {} bytes flushed over {} pages ({} records, {} encoded bytes, longest chain {})",
        delta.flush_bytes, delta.pages, delta.delta_records, delta.delta_bytes, delta.chain_len_max,
    );
    println!(
        "full images: {} bytes flushed over {} pages",
        full.flush_bytes, full.pages,
    );
    println!("flush-byte reduction: {reduction:.2}x");

    // Digest equality is a correctness gate in both directions: worker
    // count must not change the restored bytes, and the delta path must
    // reconstruct exactly what the full-image path stored.
    let reference = delta.digests[0].1;
    let mut digests_ok = true;
    for r in [&delta, &full] {
        for &(workers, digest) in &r.digests {
            if digest != reference {
                eprintln!(
                    "bench_wal: digest divergence: {} at {workers} workers: {digest:#018x} != {reference:#018x}",
                    r.label,
                );
                digests_ok = false;
            }
        }
    }
    if digests_ok {
        println!(
            "restore digests byte-identical at {:?} workers across both variants",
            RESTORE_WORKERS
        );
    }

    if let Some(min) = gate {
        if !digests_ok {
            eprintln!("bench_wal: GATE FAILED: restored-arena digests diverge");
            std::process::exit(1);
        }
        if delta.delta_records == 0 {
            eprintln!("bench_wal: GATE FAILED: delta path never staged a record");
            std::process::exit(1);
        }
        if reduction < min {
            eprintln!("bench_wal: GATE FAILED: flush-byte reduction {reduction:.3} < {min}");
            std::process::exit(1);
        }
        println!("gate passed: reduction {reduction:.3} >= {min}, digests identical");
    }
}
