//! Fleet-scheduler benchmark: serialized vs pipelined tenant cycles.
//!
//! Runs a fleet of independent KV tenants — one persistence group each
//! — through repeated rounds of mutate-then-checkpoint at 1, 4 and 16
//! concurrent tenants, twice per fleet size: once with every cycle
//! serialized behind `wait_durable` (the old global-barrier behavior,
//! where no tenant's capture starts until the previous tenant's flush
//! is durable) and once through the fleet scheduler, where only the
//! short stop-the-group capture serializes per group and tenant A's
//! flush overlaps tenant B's capture. Emits `BENCH_fleet.json` with
//! aggregate checkpoints/sec, per-tenant stop-time percentiles, and
//! the cold→warm restore latency after a crash.
//!
//! All throughput and latency figures are **virtual time**: the spans
//! charged to the simulation clock, deterministic and independent of
//! the harness machine. Wall time (harness runtime only) is read
//! through `criterion_shim::wall_now`, the workspace's single
//! sanctioned wall-clock site.
//!
//! Flags:
//!
//! * `--quick` — smaller workload and fewer rounds (CI smoke).
//! * `--gate <min>` — exit non-zero unless (a) pipelined/serialized
//!   aggregate throughput at 16 tenants ≥ min, (b) the pipelined
//!   16-tenant p99 stop time stays within 10% of the single-tenant
//!   serialized p99 (pipelining must not stretch the stop window), and
//!   (c) the blast-radius run's healthy-tenant stop p99 with one
//!   poisoned tenant stays within 25% of the all-healthy baseline
//!   (quarantine must confine the damage).
//! * `--out <path>` — output path (default `BENCH_fleet.json`).
//!
//! The **blast-radius** pair runs a pipelined fleet on isolated
//! per-tenant stores twice: once all-healthy, once with tenant 0's
//! device poisoned by latency spikes that bust every cycle deadline.
//! Both runs measure stop-time percentiles over the *healthy* tenants
//! only (tenant 0 is excluded from the histogram in both runs, so the
//! comparison is apples-to-apples); the poisoned run additionally
//! reports the quarantine counters.

use std::fmt::Write as _;

use aurora_apps::pool::TenantFleet;
use aurora_bench::bench_host;
use aurora_core::fleet::QUARANTINE_AFTER;
use aurora_core::restore::RestoreMode;
use aurora_core::Host;
use aurora_hw::FaultPlan;
use aurora_sim::stats::LogHistogram;
use criterion::wall_now;

/// Fleet sizes swept.
const TENANTS: [usize; 3] = [1, 4, 16];

/// Master seed: tenant `i` derives its op stream via `tenant_seed`.
const SEED: u64 = 42;

struct BenchConfig {
    /// Heap bytes per tenant server.
    heap: u64,
    /// Distinct keys per tenant.
    keys: u64,
    /// Value size in bytes (page-scale: the resident set is large, so
    /// each full checkpoint's hash stage dominates the cycle).
    val: usize,
    /// Mutations per tenant between checkpoints.
    ops_per_wake: usize,
    /// Measured checkpoint rounds per fleet size.
    rounds: u32,
}

impl BenchConfig {
    fn standard() -> Self {
        BenchConfig {
            heap: 8 << 20,
            keys: 2048,
            val: 1024,
            ops_per_wake: 32,
            rounds: 4,
        }
    }

    fn quick() -> Self {
        BenchConfig {
            heap: 2 << 20,
            keys: 512,
            val: 1024,
            ops_per_wake: 16,
            rounds: 3,
        }
    }
}

/// Measured numbers for one (fleet size, mode) cell.
struct ModeResult {
    checkpoints: u64,
    elapsed_secs: f64,
    ckpts_per_sec: f64,
    stop_p50_us: f64,
    stop_p99_us: f64,
    restore_p50_us: f64,
    restore_p99_us: f64,
    overlapped: u64,
    queue_stalls: u64,
}

/// One full trajectory: build the fleet, run `rounds` full-width
/// mutate-and-checkpoint waves, then crash and measure each tenant's
/// cold→warm restore. `pipelined` selects the scheduler path; the
/// serialized reference waits out each tenant's durability before the
/// next tenant's capture begins.
fn run_fleet(cfg: &BenchConfig, n: usize, pipelined: bool) -> ModeResult {
    let mut host = bench_host(512 * 1024);
    let mut fleet =
        TenantFleet::start(&mut host, n, SEED, cfg.heap, cfg.keys, cfg.val).expect("fleet");

    let t0 = host.clock.now();
    let mut stop = LogHistogram::new();
    let mut checkpoints = 0u64;
    for round in 0..cfg.rounds {
        let wave: Vec<usize> = (0..n).collect();
        for &t in &wave {
            fleet.touch(&mut host, t, cfg.ops_per_wake).expect("touch");
        }
        for &t in &wave {
            let name = format!("t{}-r{round}", fleet.tenants[t].index);
            let gid = fleet.tenants[t].gid;
            // Full checkpoints keep the flush plan large (the whole
            // resident set is hashed; dedup absorbs the unchanged
            // pages) — the regime where serializing whole cycles on
            // the old global barrier hurt most.
            let bd = if pipelined {
                host.checkpoint_pipelined(gid, true, Some(&name))
            } else {
                host.checkpoint(gid, true, Some(&name))
            }
            .expect("checkpoint");
            if !pipelined {
                host.wait_durable(gid).expect("durable");
            }
            stop.record_duration(bd.stop_time);
            checkpoints += 1;
            if bd.outcome.committed() {
                fleet.tenants[t].last_ckpt = name;
            }
        }
    }
    if pipelined {
        host.fleet_drain();
    }
    let elapsed = host.clock.now().since(t0).as_secs_f64();
    let overlapped = host.sls.fleet.stats.overlapped;
    let queue_stalls = host.sls.fleet.stats.queue_stalls;

    // Cold→warm: every tenant restores from its last checkpoint on the
    // rebooted host; the span is the full page-in to a runnable process.
    let mut host = host.crash_and_reboot().expect("reboot");
    let mut restore = LogHistogram::new();
    for t in 0..n {
        let r0 = host.clock.now();
        let pid = restore_last(&mut host, &fleet, t);
        restore.record_duration(host.clock.now().since(r0));
        let _ = host.kernel.exit(pid, 0);
        host.kernel.procs.remove(&pid);
    }

    ModeResult {
        checkpoints,
        elapsed_secs: elapsed,
        ckpts_per_sec: if elapsed > 0.0 {
            checkpoints as f64 / elapsed
        } else {
            0.0
        },
        stop_p50_us: stop.p50() as f64 / 1_000.0,
        stop_p99_us: stop.p99() as f64 / 1_000.0,
        restore_p50_us: restore.p50() as f64 / 1_000.0,
        restore_p99_us: restore.p99() as f64 / 1_000.0,
        overlapped,
        queue_stalls,
    }
}

/// Tenants in each blast-radius run.
const BLAST_TENANTS: usize = 8;

/// Healthy-tenant numbers from one blast-radius run.
struct BlastResult {
    healthy_checkpoints: u64,
    healthy_stop_p50_us: f64,
    healthy_stop_p99_us: f64,
    quarantines: u64,
    readmissions: u64,
    cycles_skipped: u64,
}

/// Runs `BLAST_TENANTS` tenants on isolated per-tenant stores through
/// pipelined full-checkpoint waves. With `poison`, tenant 0's device
/// stalls every write past the cycle deadline, so it degrades and
/// quarantines; the histogram covers only tenants `1..n` in both runs.
fn run_blast(cfg: &BenchConfig, poison: bool) -> BlastResult {
    let n = BLAST_TENANTS;
    // Enough rounds to cross the quarantine threshold and then skip.
    let rounds = cfg.rounds.max(QUARANTINE_AFTER + 2);
    let mut host = bench_host(512 * 1024);
    let mut fleet =
        TenantFleet::start(&mut host, n, SEED, cfg.heap, cfg.keys, cfg.val).expect("fleet");
    fleet.isolate(&mut host).expect("isolate");
    let gid0 = fleet.tenants[0].gid;
    if poison {
        let store0 = fleet.tenants[0].store.clone().expect("isolated store");
        let deadline = host.sls.fleet.cycle_deadline;
        store0
            .borrow_mut()
            .device_mut()
            .install_fault_plan(FaultPlan::latency_spike(
                1,
                1_000_000,
                deadline.as_nanos() * 4,
            ));
    }

    let mut stop = LogHistogram::new();
    let mut healthy_checkpoints = 0u64;
    for round in 0..rounds {
        let wave: Vec<usize> = (0..n).collect();
        for &t in &wave {
            fleet.touch(&mut host, t, cfg.ops_per_wake).expect("touch");
        }
        for &t in &wave {
            let name = format!("bt{}-r{round}", fleet.tenants[t].index);
            let gid = fleet.tenants[t].gid;
            let result = host.checkpoint_pipelined(gid, true, Some(&name));
            if t == 0 {
                // The poisoned tenant's outcome (miss, quarantine skip)
                // is tracked by its fault domain, not the histogram.
                continue;
            }
            let bd = result.expect("healthy tenant checkpoint");
            assert!(bd.outcome.committed(), "healthy tenant must commit");
            stop.record_duration(bd.stop_time);
            healthy_checkpoints += 1;
        }
    }
    host.fleet_drain();
    let d = host.tenant_domain(gid0);
    if poison {
        assert!(d.quarantines > 0, "poisoned tenant must quarantine");
    }
    BlastResult {
        healthy_checkpoints,
        healthy_stop_p50_us: stop.p50() as f64 / 1_000.0,
        healthy_stop_p99_us: stop.p99() as f64 / 1_000.0,
        quarantines: d.quarantines,
        readmissions: d.readmissions,
        cycles_skipped: d.cycles_skipped,
    }
}

/// Restores tenant `t`'s most recent checkpoint and returns the
/// restored root pid (the caller tears it down).
fn restore_last(host: &mut Host, fleet: &TenantFleet, t: usize) -> aurora_posix::Pid {
    let store = host.sls.primary.clone();
    let want = fleet.tenants[t].last_ckpt.as_str();
    let id = store
        .borrow()
        .checkpoints()
        .iter()
        .find(|c| c.name.as_deref() == Some(want))
        .map(|c| c.id)
        .expect("tenant checkpoint survived");
    let r = host.restore(&store, id, RestoreMode::Eager).expect("restore");
    r.root_pid().expect("root pid")
}

fn emit_mode(s: &mut String, label: &str, r: &ModeResult, trailing_comma: bool) {
    let _ = writeln!(s, "      \"{label}\": {{");
    let _ = writeln!(s, "        \"checkpoints\": {},", r.checkpoints);
    let _ = writeln!(s, "        \"elapsed_secs\": {:.6},", r.elapsed_secs);
    let _ = writeln!(s, "        \"ckpts_per_sec\": {:.1},", r.ckpts_per_sec);
    let _ = writeln!(s, "        \"stop_p50_us\": {:.1},", r.stop_p50_us);
    let _ = writeln!(s, "        \"stop_p99_us\": {:.1},", r.stop_p99_us);
    let _ = writeln!(s, "        \"restore_p50_us\": {:.1},", r.restore_p50_us);
    let _ = writeln!(s, "        \"restore_p99_us\": {:.1},", r.restore_p99_us);
    let _ = writeln!(s, "        \"overlapped_cycles\": {},", r.overlapped);
    let _ = writeln!(s, "        \"queue_stalls\": {}", r.queue_stalls);
    let _ = writeln!(s, "      }}{}", if trailing_comma { "," } else { "" });
}

fn emit_blast(s: &mut String, label: &str, r: &BlastResult, trailing_comma: bool) {
    let _ = writeln!(s, "    \"{label}\": {{");
    let _ = writeln!(s, "      \"healthy_checkpoints\": {},", r.healthy_checkpoints);
    let _ = writeln!(s, "      \"healthy_stop_p50_us\": {:.1},", r.healthy_stop_p50_us);
    let _ = writeln!(s, "      \"healthy_stop_p99_us\": {:.1},", r.healthy_stop_p99_us);
    let _ = writeln!(s, "      \"quarantines\": {},", r.quarantines);
    let _ = writeln!(s, "      \"readmissions\": {},", r.readmissions);
    let _ = writeln!(s, "      \"cycles_skipped\": {}", r.cycles_skipped);
    let _ = writeln!(s, "    }}{}", if trailing_comma { "," } else { "" });
}

/// Healthy-tenant p99 ratio of the poisoned run over the baseline.
fn blast_ratio(baseline: &BlastResult, poisoned: &BlastResult) -> f64 {
    if baseline.healthy_stop_p99_us > 0.0 {
        poisoned.healthy_stop_p99_us / baseline.healthy_stop_p99_us
    } else {
        0.0
    }
}

fn emit_json(
    results: &[(usize, ModeResult, ModeResult)],
    blast: &(BlastResult, BlastResult),
    harness_secs: f64,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"fleet_scheduler\",");
    let _ = writeln!(s, "  \"workload\": \"kv_tenant_fleet_full_checkpoints\",");
    let _ = writeln!(s, "  \"time_domain\": \"virtual\",");
    let _ = writeln!(s, "  \"harness_wall_secs\": {harness_secs:.3},");
    let _ = writeln!(s, "  \"fleets\": [");
    for (i, (n, ser, pipe)) in results.iter().enumerate() {
        let speedup = if ser.ckpts_per_sec > 0.0 {
            pipe.ckpts_per_sec / ser.ckpts_per_sec
        } else {
            0.0
        };
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"tenants\": {n},");
        let _ = writeln!(s, "      \"aggregate_speedup\": {speedup:.3},");
        emit_mode(&mut s, "serialized", ser, true);
        emit_mode(&mut s, "pipelined", pipe, false);
        let _ = write!(s, "    }}");
        let _ = writeln!(s, "{}", if i + 1 < results.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ],");
    let (baseline, poisoned) = blast;
    let _ = writeln!(s, "  \"blast_radius\": {{");
    let _ = writeln!(s, "    \"tenants\": {BLAST_TENANTS},");
    let _ = writeln!(
        s,
        "    \"healthy_p99_ratio\": {:.3},",
        blast_ratio(baseline, poisoned)
    );
    emit_blast(&mut s, "baseline", baseline, true);
    emit_blast(&mut s, "poisoned", poisoned, false);
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate: Option<f64> = args
        .iter()
        .position(|a| a == "--gate")
        .map(|i| args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(3.0));
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let cfg = if quick {
        BenchConfig::quick()
    } else {
        BenchConfig::standard()
    };

    let t0 = wall_now();
    let results: Vec<(usize, ModeResult, ModeResult)> = TENANTS
        .iter()
        .map(|&n| {
            let ser = run_fleet(&cfg, n, false);
            let pipe = run_fleet(&cfg, n, true);
            (n, ser, pipe)
        })
        .collect();
    let blast = (run_blast(&cfg, false), run_blast(&cfg, true));
    let harness_secs = t0.elapsed().as_secs_f64();

    let json = emit_json(&results, &blast, harness_secs);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_fleet: cannot write {out}: {e}");
        std::process::exit(2);
    }
    print!("{json}");

    for (n, ser, pipe) in &results {
        println!(
            "tenants={n}: serialized {:.0} ckpts/sec, pipelined {:.0} ckpts/sec ({:.2}x), \
             stop p99 {:.0}us -> {:.0}us, restore p99 {:.0}us, {} overlapped",
            ser.ckpts_per_sec,
            pipe.ckpts_per_sec,
            if ser.ckpts_per_sec > 0.0 {
                pipe.ckpts_per_sec / ser.ckpts_per_sec
            } else {
                0.0
            },
            ser.stop_p99_us,
            pipe.stop_p99_us,
            pipe.restore_p99_us,
            pipe.overlapped,
        );
    }
    println!(
        "blast radius ({} tenants, 1 poisoned): healthy stop p99 {:.1}us baseline -> {:.1}us \
         poisoned ({:.3}x); poisoned tenant: {} quarantines, {} re-admissions, {} skipped",
        BLAST_TENANTS,
        blast.0.healthy_stop_p99_us,
        blast.1.healthy_stop_p99_us,
        blast_ratio(&blast.0, &blast.1),
        blast.1.quarantines,
        blast.1.readmissions,
        blast.1.cycles_skipped,
    );

    if let Some(min) = gate {
        let single_serial_p99 = results
            .iter()
            .find(|(n, _, _)| *n == 1)
            .map(|(_, ser, _)| ser.stop_p99_us)
            .unwrap_or(0.0);
        let Some((_, ser16, pipe16)) = results.iter().find(|(n, _, _)| *n == 16) else {
            eprintln!("bench_fleet: GATE FAILED: no 16-tenant row");
            std::process::exit(1);
        };
        let speedup = if ser16.ckpts_per_sec > 0.0 {
            pipe16.ckpts_per_sec / ser16.ckpts_per_sec
        } else {
            0.0
        };
        if speedup < min {
            eprintln!("bench_fleet: GATE FAILED: 16-tenant aggregate speedup {speedup:.3} < {min}");
            std::process::exit(1);
        }
        let p99_cap = single_serial_p99 * 1.10;
        if pipe16.stop_p99_us > p99_cap {
            eprintln!(
                "bench_fleet: GATE FAILED: pipelined 16-tenant stop p99 {:.1}us exceeds \
                 single-tenant serialized p99 {:.1}us by more than 10%",
                pipe16.stop_p99_us, single_serial_p99
            );
            std::process::exit(1);
        }
        let ratio = blast_ratio(&blast.0, &blast.1);
        if ratio > 1.25 {
            eprintln!(
                "bench_fleet: GATE FAILED: healthy-tenant stop p99 with a poisoned tenant \
                 ({:.1}us) exceeds the all-healthy baseline ({:.1}us) by more than 25% \
                 ({ratio:.3}x)",
                blast.1.healthy_stop_p99_us, blast.0.healthy_stop_p99_us
            );
            std::process::exit(1);
        }
        println!(
            "gate passed: 16-tenant speedup {speedup:.3} >= {min}, stop p99 {:.1}us <= {:.1}us, \
             blast-radius healthy p99 ratio {ratio:.3} <= 1.25",
            pipe16.stop_p99_us, p99_cap
        );
    }
}
