//! Restore-pipeline benchmark: warm-start trajectory of the batched
//! read path.
//!
//! Builds a checkpointed image on a materialized store, crashes the
//! machine, and then restores it repeatedly under every restore mode at
//! 1, 2, 4 and 8 workers, emitting `BENCH_restore.json`. Workers = 1 is
//! the serial reference: the per-page loop that reads, hashes and wires
//! one page at a time. Each variant measures two regimes:
//!
//! * **cold** — the store's caches are dropped before every round
//!   (`drop_caches`), so each restore pays full device reads: the state
//!   of a machine that has never run the image.
//! * **warm** — the image cache is released (`release_image`) but the
//!   store's content-addressed read cache is left populated, so the
//!   planner's probes hit and pages are served at cache-hit cost: the
//!   warm-start regime the shared read cache exists for.
//!
//! Throughput and latency are measured in **virtual time** — the span
//! the restore charges to the simulation clock (extent reads at modeled
//! NVMe latency/bandwidth, the hash stage at the calibrated per-core
//! bandwidth divided by workers, cache hits at the indexed-lookup
//! cost). That keeps the trajectory deterministic and independent of
//! the harness machine's CPU count.
//!
//! Flags:
//!
//! * `--quick` — smaller image and fewer rounds (CI smoke).
//! * `--gate <min>` — exit non-zero unless the 4-worker eager restore
//!   reaches `min`× the serial throughput (default 2.0), warm rounds
//!   beat cold rounds, and the warm hit rate is positive.
//! * `--out <path>` — output path (default `BENCH_restore.json`).

use std::fmt::Write as _;

use aurora_core::restore::RestoreMode;
use aurora_core::Host;
use aurora_hw::ModelDev;
use aurora_objstore::{CkptId, StoreConfig};
use aurora_sim::stats::LogHistogram;
use aurora_sim::SimClock;
use criterion::wall_now;

/// Worker counts swept, serial reference first.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Restore modes swept.
const MODES: [(&str, RestoreMode); 3] = [
    ("eager", RestoreMode::Eager),
    ("lazy", RestoreMode::Lazy),
    ("lazy_prefetch", RestoreMode::LazyPrefetch),
];

struct BenchConfig {
    /// Pages in the checkpointed image.
    pages: u64,
    /// Cold restore rounds per variant.
    cold_rounds: u32,
    /// Warm restore rounds per variant.
    warm_rounds: u32,
}

impl BenchConfig {
    fn standard() -> Self {
        BenchConfig {
            pages: 1024,
            cold_rounds: 4,
            warm_rounds: 4,
        }
    }

    fn quick() -> Self {
        BenchConfig {
            pages: 256,
            cold_rounds: 2,
            warm_rounds: 2,
        }
    }
}

/// Measured numbers for one (mode, workers) variant.
struct VariantResult {
    mode: &'static str,
    workers: usize,
    cold_pages_per_sec: f64,
    cold_p50_us: f64,
    cold_p99_us: f64,
    warm_pages_per_sec: f64,
    warm_p50_us: f64,
    warm_p99_us: f64,
    warm_hit_rate: f64,
    extents_read: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Builds the deterministic world: a process with `pages` written pages
/// (seeded pattern with a sprinkle of duplicate pages for dedup),
/// checkpointed durably on a materialized store, then crashed. Returns
/// the rebooted host plus the mapped base address and checkpoint id.
fn build_world(cfg: &BenchConfig) -> (Host, u64, CkptId) {
    let clock = SimClock::new();
    let blocks = cfg.pages * 8 + 64 * 1024;
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", blocks));
    let mut host = Host::boot(
        "restore-bench",
        dev,
        StoreConfig {
            journal_blocks: 8 * 1024,
            materialize_data: true,
            ..StoreConfig::default()
        },
    )
    .expect("host boot");
    let pid = host.kernel.spawn("image");
    let addr = host
        .kernel
        .mmap_anon(pid, cfg.pages * 4096, false)
        .expect("map");
    for p in 0..cfg.pages {
        // One page in eight repeats an earlier body so the dedup index
        // and the read cache's content index see realistic twins.
        let seed = if p % 8 == 7 { p / 8 } else { p };
        let body = [(seed % 249) as u8 + 1; 48];
        host.kernel
            .mem_write(pid, addr + p * 4096, &body)
            .expect("write");
    }
    let gid = host.persist("image", pid).expect("persist");
    let bd = host.checkpoint(gid, true, Some("image")).expect("ckpt");
    host.clock.advance_to(bd.durable_at);
    let ckpt = bd.ckpt.expect("ckpt id");
    let host = host.crash_and_reboot().expect("reboot");
    (host, addr, ckpt)
}

/// One restore round: restore, touch every page (lazy modes fault the
/// remainder in), retire the instance. Returns (virtual span, breakdown
/// cache hits, misses, extents).
fn round(
    host: &mut Host,
    cfg: &BenchConfig,
    addr: u64,
    ckpt: CkptId,
    mode: RestoreMode,
) -> (f64, u64, u64, u64) {
    let store = host.sls.primary.clone();
    let t0 = host.clock.now();
    let r = host.restore(&store, ckpt, mode).expect("restore");
    let np = r.root_pid().expect("pid");
    let mut buf = [0u8; 8];
    for p in 0..cfg.pages {
        host.kernel
            .mem_read(np, addr + p * 4096, &mut buf)
            .expect("touch");
    }
    let span = host.clock.now().since(t0);
    let _ = host.kernel.exit(np, 0);
    host.kernel.procs.remove(&np);
    (
        span.as_secs_f64(),
        r.cache_hits,
        r.cache_misses,
        r.extents_read,
    )
}

/// One full trajectory at a fixed (mode, workers): cold rounds with the
/// caches dropped before each, then warm rounds against the populated
/// read cache.
fn run_variant(cfg: &BenchConfig, mode_label: &'static str, mode: RestoreMode, workers: usize) -> VariantResult {
    let (mut host, addr, ckpt) = build_world(cfg);
    host.sls.restore_workers = workers;
    let store = host.sls.primary.clone();

    let mut cold_secs = 0f64;
    let mut cold_lat = LogHistogram::new();
    let mut extents = 0u64;
    for _ in 0..cfg.cold_rounds {
        // Cold machine: no image cache, no page bodies, no read cache.
        host.release_image(&store, ckpt);
        store.borrow_mut().drop_caches().expect("materialized store");
        let (secs, _, _, ext) = round(&mut host, cfg, addr, ckpt, mode);
        cold_secs += secs;
        cold_lat.record_duration(aurora_sim::time::SimDuration::from_nanos(
            (secs * 1e9) as u64,
        ));
        extents += ext;
    }

    let mut warm_secs = 0f64;
    let mut warm_lat = LogHistogram::new();
    let mut hits = 0u64;
    let mut misses = 0u64;
    for _ in 0..cfg.warm_rounds {
        // Warm store: the read cache survives; only the wired image is
        // released, so the planner re-reads through the cache.
        host.release_image(&store, ckpt);
        let (secs, h, m, ext) = round(&mut host, cfg, addr, ckpt, mode);
        warm_secs += secs;
        warm_lat.record_duration(aurora_sim::time::SimDuration::from_nanos(
            (secs * 1e9) as u64,
        ));
        hits += h;
        misses += m;
        extents += ext;
    }

    let touched = cfg.pages as f64;
    VariantResult {
        mode: mode_label,
        workers,
        cold_pages_per_sec: touched * cfg.cold_rounds as f64 / cold_secs,
        cold_p50_us: cold_lat.p50() as f64 / 1_000.0,
        cold_p99_us: cold_lat.p99() as f64 / 1_000.0,
        warm_pages_per_sec: touched * cfg.warm_rounds as f64 / warm_secs,
        warm_p50_us: warm_lat.p50() as f64 / 1_000.0,
        warm_p99_us: warm_lat.p99() as f64 / 1_000.0,
        warm_hit_rate: if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        },
        extents_read: extents,
        cache_hits: hits,
        cache_misses: misses,
    }
}

fn emit_json(cfg: &BenchConfig, results: &[VariantResult], harness_secs: f64) -> String {
    // Serial eager throughput is the speedup reference for every row.
    let serial_eager = results
        .iter()
        .find(|r| r.mode == "eager" && r.workers == 1)
        .map(|r| r.cold_pages_per_sec)
        .unwrap_or(0.0);
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"restore_pipeline\",");
    let _ = writeln!(s, "  \"workload\": \"seeded_image_cold_and_warm_restores\",");
    let _ = writeln!(s, "  \"time_domain\": \"virtual\",");
    let _ = writeln!(s, "  \"image_pages\": {},", cfg.pages);
    let _ = writeln!(s, "  \"harness_wall_secs\": {harness_secs:.3},");
    let _ = writeln!(s, "  \"variants\": [");
    for (i, r) in results.iter().enumerate() {
        let speedup = if serial_eager > 0.0 {
            r.cold_pages_per_sec / serial_eager
        } else {
            0.0
        };
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"mode\": \"{}\",", r.mode);
        let _ = writeln!(s, "      \"workers\": {},", r.workers);
        let _ = writeln!(s, "      \"cold_pages_per_sec\": {:.1},", r.cold_pages_per_sec);
        let _ = writeln!(s, "      \"speedup_vs_serial_eager\": {:.3},", speedup);
        let _ = writeln!(s, "      \"cold_p50_us\": {:.1},", r.cold_p50_us);
        let _ = writeln!(s, "      \"cold_p99_us\": {:.1},", r.cold_p99_us);
        let _ = writeln!(s, "      \"warm_pages_per_sec\": {:.1},", r.warm_pages_per_sec);
        let _ = writeln!(s, "      \"warm_p50_us\": {:.1},", r.warm_p50_us);
        let _ = writeln!(s, "      \"warm_p99_us\": {:.1},", r.warm_p99_us);
        let _ = writeln!(s, "      \"warm_hit_rate\": {:.4},", r.warm_hit_rate);
        let _ = writeln!(s, "      \"read_cache_hits\": {},", r.cache_hits);
        let _ = writeln!(s, "      \"read_cache_misses\": {},", r.cache_misses);
        let _ = writeln!(s, "      \"extents_read\": {}", r.extents_read);
        let _ = write!(s, "    }}");
        let _ = writeln!(s, "{}", if i + 1 < results.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate: Option<f64> = args
        .iter()
        .position(|a| a == "--gate")
        .map(|i| args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(2.0));
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_restore.json".to_string());
    let cfg = if quick {
        BenchConfig::quick()
    } else {
        BenchConfig::standard()
    };

    let t0 = wall_now();
    let mut results = Vec::new();
    for (label, mode) in MODES {
        for w in WORKERS {
            results.push(run_variant(&cfg, label, mode, w));
        }
    }
    let harness_secs = t0.elapsed().as_secs_f64();
    let json = emit_json(&cfg, &results, harness_secs);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_restore: cannot write {out}: {e}");
        std::process::exit(2);
    }
    print!("{json}");

    let serial_eager = results
        .iter()
        .find(|r| r.mode == "eager" && r.workers == 1)
        .map(|r| r.cold_pages_per_sec)
        .unwrap_or(0.0);
    for r in &results {
        println!(
            "{} workers={}: cold {:.0} pages/sec ({:.2}x serial eager) p50 {:.0}us, \
             warm {:.0} pages/sec p50 {:.0}us hit rate {:.1}%, {} extents",
            r.mode,
            r.workers,
            r.cold_pages_per_sec,
            if serial_eager > 0.0 {
                r.cold_pages_per_sec / serial_eager
            } else {
                0.0
            },
            r.cold_p50_us,
            r.warm_pages_per_sec,
            r.warm_p50_us,
            100.0 * r.warm_hit_rate,
            r.extents_read,
        );
    }

    if let Some(min) = gate {
        let eager4 = results
            .iter()
            .find(|r| r.mode == "eager" && r.workers == 4)
            .expect("eager 4-worker variant");
        let speedup = if serial_eager > 0.0 {
            eager4.cold_pages_per_sec / serial_eager
        } else {
            0.0
        };
        let mut failed = false;
        if speedup < min {
            eprintln!("bench_restore: GATE FAILED: 4-worker eager speedup {speedup:.3} < {min}");
            failed = true;
        }
        if eager4.warm_pages_per_sec <= eager4.cold_pages_per_sec {
            eprintln!(
                "bench_restore: GATE FAILED: warm {:.0} pages/sec not above cold {:.0}",
                eager4.warm_pages_per_sec, eager4.cold_pages_per_sec
            );
            failed = true;
        }
        if eager4.warm_hit_rate <= 0.0 {
            eprintln!("bench_restore: GATE FAILED: warm hit rate is zero");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "gate passed: 4-worker eager {speedup:.3}x serial, warm beats cold, hit rate {:.1}%",
            100.0 * eager4.warm_hit_rate
        );
    }
}
