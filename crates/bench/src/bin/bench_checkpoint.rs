//! Flush-pipeline benchmark: serial vs parallel checkpoint trajectory.
//!
//! Runs the standard KV workload under repeated checkpoints at 1, 2, 4
//! and 8 flush workers and emits `BENCH_checkpoint.json` with flush
//! throughput (pages/sec), flush latency percentiles, the dedup hit
//! rate, and the serial-vs-parallel speedup per worker count. Workers
//! = 1 is the serial reference: the hash stage runs inline on the
//! driving thread.
//!
//! Throughput and latency are measured in **virtual time**: the flush
//! span charged to the simulation clock, which includes the hash stage
//! at the calibrated per-core bandwidth divided by worker count plus
//! the modeled device writes. That keeps the trajectory deterministic
//! and independent of how many physical CPUs the harness machine has
//! (CI runners are often single-core, where a wall-clock comparison
//! could never show thread-level speedup). `--hash-micro` is the
//! wall-clock companion: it times the *real* `hash_plan` implementation
//! to sanity-check the `HASH_BW_PER_CORE` calibration.
//!
//! Flags:
//!
//! * `--quick` — smaller workload and fewer rounds (CI smoke).
//! * `--gate <min>` — exit non-zero unless speedup at 4 workers ≥ min.
//! * `--out <path>` — output path (default `BENCH_checkpoint.json`).
//! * `--hash-micro` — wall-time the hash stage alone and exit.
//!
//! Wall time (harness runtime and the micro probe) is read through
//! `criterion_shim::wall_now`, the workspace's single sanctioned
//! wall-clock site.

use std::fmt::Write as _;

use aurora_apps::kv::{KvServer, PersistMode};
use aurora_apps::workload::{KeyDist, Workload};
use aurora_bench::bench_host;
use aurora_sim::stats::LogHistogram;
use criterion::wall_now;

/// Worker counts swept, serial reference first.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

struct BenchConfig {
    /// KV arena bytes.
    arena: u64,
    /// Distinct keys in the workload.
    keys: u64,
    /// Value size in bytes.
    val: usize,
    /// Mutations between checkpoints.
    ops_per_round: u64,
    /// Measured checkpoint rounds per worker count.
    rounds: u32,
}

impl BenchConfig {
    fn standard() -> Self {
        BenchConfig {
            arena: 64 << 20,
            keys: 16 * 1024,
            val: 256,
            ops_per_round: 4096,
            rounds: 4,
        }
    }

    fn quick() -> Self {
        BenchConfig {
            arena: 16 << 20,
            keys: 4 * 1024,
            val: 128,
            ops_per_round: 1024,
            rounds: 2,
        }
    }
}

/// Measured numbers for one worker count.
struct WorkerResult {
    workers: usize,
    pages: u64,
    flush_secs: f64,
    pages_per_sec: f64,
    flush_p50_us: f64,
    flush_p99_us: f64,
    hash_stage_us: f64,
    dedup_hit_rate: f64,
    extents: u64,
    extent_blocks: u64,
}

/// One full trajectory at a fixed worker count: build the server, take
/// a durable baseline, then `rounds` mutate-and-checkpoint cycles,
/// accumulating each checkpoint's flush span in virtual time.
fn run_workers(cfg: &BenchConfig, workers: usize) -> WorkerResult {
    let mut host = bench_host(512 * 1024);
    host.sls.flush_workers = workers;
    let mut server = KvServer::start(
        &mut host,
        PersistMode::AuroraTransparent,
        cfg.arena,
        16 * 1024,
    )
    .expect("kv server");
    let gid = server.gid.expect("transparent mode has a group");
    let mut w = Workload::new(42, cfg.keys, cfg.val, 0.0, KeyDist::Zipfian { theta: 0.99 });
    for op in w.load_ops() {
        server.exec(&mut host, &op).expect("load");
    }
    host.checkpoint(gid, true, None).expect("baseline");
    host.wait_durable(gid).expect("durable");

    let dedup0 = host.sls.primary.borrow().stats.dedup_hits;
    let written0 = host.sls.primary.borrow().stats.pages_written;
    let ext0 = host.sls.primary.borrow().stats.extents_coalesced;
    let blk0 = host.sls.primary.borrow().stats.blocks_coalesced;

    let mut pages = 0u64;
    let mut flush_secs = 0f64;
    let mut flush_lat = LogHistogram::new();
    let mut hash_us = 0f64;
    for _ in 0..cfg.rounds {
        for _ in 0..cfg.ops_per_round {
            let op = w.next_op();
            server.exec(&mut host, &op).expect("op");
        }
        // Full checkpoints keep the flush plan large (the whole resident
        // set is hashed; dedup absorbs the unchanged pages), which is
        // the regime the hash stage parallelizes.
        let bd = host.checkpoint(gid, true, None).expect("checkpoint");
        host.wait_durable(gid).expect("durable");
        pages += bd.pages;
        flush_secs += bd.flush_span.as_secs_f64();
        flush_lat.record_duration(bd.flush_span);
        hash_us += bd.hash_stage.as_micros_f64();
    }

    let store = host.sls.primary.borrow();
    let dedup_hits = store.stats.dedup_hits - dedup0;
    let written = store.stats.pages_written - written0;
    WorkerResult {
        workers,
        pages,
        flush_secs,
        pages_per_sec: if flush_secs > 0.0 {
            pages as f64 / flush_secs
        } else {
            0.0
        },
        flush_p50_us: flush_lat.p50() as f64 / 1_000.0,
        flush_p99_us: flush_lat.p99() as f64 / 1_000.0,
        hash_stage_us: hash_us / cfg.rounds as f64,
        dedup_hit_rate: if written > 0 {
            dedup_hits as f64 / written as f64
        } else {
            0.0
        },
        extents: store.stats.extents_coalesced - ext0,
        extent_blocks: store.stats.blocks_coalesced - blk0,
    }
}

/// Isolated hash-stage probe (`--hash-micro`): wall-times `hash_plan`
/// alone on a plan of materialized pages, per worker count. The 1-worker
/// ns/page figure is what `HASH_BW_PER_CORE` in `aurora_sim::cost` is
/// calibrated against (≈6 µs per 4 KiB page, ~0.7 GB/s).
fn hash_micro() {
    use aurora_core::flush;
    use aurora_objstore::ObjId;
    use aurora_vm::PageData;
    let n = 4096usize;
    let plan: Vec<flush::PlanPage> = (0..n)
        .map(|i| {
            let bytes: Vec<u8> = (0..4096).map(|j| ((i * 31 + j) % 251) as u8).collect();
            (ObjId(0), i as u64, PageData::from_bytes(&bytes))
        })
        .collect();
    for w in WORKERS {
        let t0 = wall_now();
        let out = flush::hash_plan(plan.clone(), w);
        let dt = t0.elapsed();
        println!(
            "hash_plan n={n} workers={w}: {:?} ({:.0} ns/page), out={}",
            dt,
            dt.as_nanos() as f64 / n as f64,
            out.len()
        );
    }
}

fn emit_json(results: &[WorkerResult], serial_pps: f64, harness_secs: f64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"checkpoint_flush_pipeline\",");
    let _ = writeln!(s, "  \"workload\": \"kv_zipfian_full_checkpoints\",");
    let _ = writeln!(s, "  \"time_domain\": \"virtual\",");
    let _ = writeln!(s, "  \"harness_wall_secs\": {harness_secs:.3},");
    let _ = writeln!(s, "  \"workers\": [");
    for (i, r) in results.iter().enumerate() {
        let speedup = if serial_pps > 0.0 {
            r.pages_per_sec / serial_pps
        } else {
            0.0
        };
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"workers\": {},", r.workers);
        let _ = writeln!(s, "      \"pages\": {},", r.pages);
        let _ = writeln!(s, "      \"flush_secs\": {:.6},", r.flush_secs);
        let _ = writeln!(s, "      \"pages_per_sec\": {:.1},", r.pages_per_sec);
        let _ = writeln!(s, "      \"speedup_vs_serial\": {:.3},", speedup);
        let _ = writeln!(s, "      \"flush_latency_p50_us\": {:.1},", r.flush_p50_us);
        let _ = writeln!(s, "      \"flush_latency_p99_us\": {:.1},", r.flush_p99_us);
        let _ = writeln!(s, "      \"hash_stage_us\": {:.1},", r.hash_stage_us);
        let _ = writeln!(s, "      \"dedup_hit_rate\": {:.4},", r.dedup_hit_rate);
        let _ = writeln!(s, "      \"extents_coalesced\": {},", r.extents);
        let _ = writeln!(s, "      \"blocks_coalesced\": {}", r.extent_blocks);
        let _ = write!(s, "    }}");
        let _ = writeln!(s, "{}", if i + 1 < results.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--hash-micro") {
        hash_micro();
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let gate: Option<f64> = args
        .iter()
        .position(|a| a == "--gate")
        .map(|i| args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(1.0));
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_checkpoint.json".to_string());
    let cfg = if quick {
        BenchConfig::quick()
    } else {
        BenchConfig::standard()
    };

    let t0 = wall_now();
    let results: Vec<WorkerResult> = WORKERS.iter().map(|&w| run_workers(&cfg, w)).collect();
    let harness_secs = t0.elapsed().as_secs_f64();
    let serial_pps = results
        .first()
        .map(|r| r.pages_per_sec)
        .unwrap_or_default();
    let json = emit_json(&results, serial_pps, harness_secs);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_checkpoint: cannot write {out}: {e}");
        std::process::exit(2);
    }
    print!("{json}");

    for r in &results {
        println!(
            "workers={}: {:.0} pages/sec ({:.2}x serial), flush p50 {:.0}us p99 {:.0}us, \
             dedup {:.1}%, {} extents / {} blocks",
            r.workers,
            r.pages_per_sec,
            if serial_pps > 0.0 { r.pages_per_sec / serial_pps } else { 0.0 },
            r.flush_p50_us,
            r.flush_p99_us,
            100.0 * r.dedup_hit_rate,
            r.extents,
            r.extent_blocks,
        );
    }

    if let Some(min) = gate {
        let speedup4 = results
            .iter()
            .find(|r| r.workers == 4)
            .map(|r| r.pages_per_sec / serial_pps)
            .unwrap_or(0.0);
        if speedup4 < min {
            eprintln!("bench_checkpoint: GATE FAILED: speedup at 4 workers {speedup4:.3} < {min}");
            std::process::exit(1);
        }
        println!("gate passed: speedup at 4 workers {speedup4:.3} >= {min}");
    }
}
