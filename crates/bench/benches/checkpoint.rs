//! Criterion: host-time cost of the checkpoint path (simulator
//! throughput — virtual-time numbers come from the `tables` binary).

use aurora_apps::profiles;
use aurora_bench::bench_host;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(10);

    // Full checkpoint of a 16 MiB Redis-class process.
    group.bench_function("full_16MiB", |b| {
        b.iter_batched(
            || {
                let mut host = bench_host(256 * 1024);
                let profile = profiles::redis_profile(16 << 20);
                let (pid, _) = profiles::build(&mut host, &profile, 6379).unwrap();
                let gid = host.persist("redis", pid).unwrap();
                (host, gid)
            },
            |(mut host, gid)| host.checkpoint(gid, true, None).unwrap(),
            BatchSize::LargeInput,
        )
    });

    // Steady-state incremental with a 10% dirty set.
    group.bench_function("incremental_16MiB_10pct", |b| {
        b.iter_batched(
            || {
                let mut host = bench_host(256 * 1024);
                let profile = profiles::redis_profile(16 << 20);
                let (pid, _) = profiles::build(&mut host, &profile, 6379).unwrap();
                let gid = host.persist("redis", pid).unwrap();
                host.checkpoint(gid, true, None).unwrap();
                profiles::dirty_data(&mut host, pid, &profile, 0.1).unwrap();
                (host, gid)
            },
            |(mut host, gid)| host.checkpoint(gid, false, None).unwrap(),
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
