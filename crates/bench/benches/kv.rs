//! Criterion: KV-server operation costs under each persistence mode
//! (host time; virtual-time comparisons come from `tables kvports`).

use aurora_apps::kv::{KvServer, PersistMode};
use aurora_apps::workload::{KeyDist, Workload};
use aurora_bench::bench_host;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_kv(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv");
    group.sample_size(10);

    for (name, mode) in [
        ("none", PersistMode::None),
        ("wal_fsync", PersistMode::WalFsync),
        ("aurora_port", PersistMode::AuroraPort),
    ] {
        group.bench_function(&format!("set_64x_{name}"), |b| {
            b.iter_batched(
                || {
                    let mut host = bench_host(256 * 1024);
                    let server = KvServer::start(&mut host, mode, 16 << 20, 4096).unwrap();
                    let w = Workload::new(3, 1024, 64, 0.0, KeyDist::Uniform);
                    (host, server, w)
                },
                |(mut host, mut server, mut w)| {
                    for _ in 0..64 {
                        let op = w.next_op();
                        server.exec(&mut host, &op).unwrap();
                    }
                    (host, server)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kv);
criterion_main!(benches);
