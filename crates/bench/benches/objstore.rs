//! Criterion: object-store primitive costs (host time).

use aurora_hw::ModelDev;
use aurora_objstore::{ObjId, ObjectStore, StoreConfig};
use aurora_sim::SimClock;
use aurora_vm::PageData;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn fresh_store() -> ObjectStore {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 128 * 1024));
    ObjectStore::format(dev, StoreConfig::default()).unwrap()
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("objstore");

    group.bench_function("write_page_unique", |b| {
        b.iter_batched(
            || {
                let mut s = fresh_store();
                s.create_object(ObjId(1), 1 << 20).unwrap();
                (s, 0u64)
            },
            |(mut s, mut i)| {
                for _ in 0..64 {
                    s.write_page(ObjId(1), i, &PageData::Seeded(i)).unwrap();
                    i += 1;
                }
                s
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("write_page_dedup_hit", |b| {
        b.iter_batched(
            || {
                let mut s = fresh_store();
                s.create_object(ObjId(1), 1 << 20).unwrap();
                s.write_page(ObjId(1), 0, &PageData::Seeded(7)).unwrap();
                s
            },
            |mut s| {
                for i in 1..65u64 {
                    s.write_page(ObjId(1), i, &PageData::Seeded(7)).unwrap();
                }
                s
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("commit_64_pages", |b| {
        b.iter_batched(
            || {
                let mut s = fresh_store();
                s.create_object(ObjId(1), 1 << 20).unwrap();
                for i in 0..64u64 {
                    s.write_page(ObjId(1), i, &PageData::Seeded(i)).unwrap();
                }
                s
            },
            |mut s| {
                s.commit(None).unwrap();
                s
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
