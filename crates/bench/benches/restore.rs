//! Criterion: host-time cost of the restore path.

use aurora_apps::profiles;
use aurora_bench::bench_host;
use aurora_core::restore::RestoreMode;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("restore");
    group.sample_size(10);

    for (name, mode) in [
        ("lazy_16MiB", RestoreMode::Lazy),
        ("prefetch_16MiB", RestoreMode::LazyPrefetch),
        ("eager_16MiB", RestoreMode::Eager),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut host = bench_host(256 * 1024);
                    let profile = profiles::redis_profile(16 << 20);
                    let (pid, _) = profiles::build(&mut host, &profile, 6379).unwrap();
                    let gid = host.persist("redis", pid).unwrap();
                    let bd = host.checkpoint(gid, true, None).unwrap();
                    host.clock.advance_to(bd.durable_at);
                    (host, bd.ckpt.unwrap())
                },
                |(mut host, ckpt)| {
                    let store = host.sls.primary.clone();
                    host.restore(&store, ckpt, mode).unwrap()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_restore);
criterion_main!(benches);
