//! Database persistence strategies compared (§4's Redis discussion).
//!
//! Runs the same write workload against the Redis-like KV server under
//! every persistence strategy and prints what each one costs — then
//! crashes the machine and shows what each recovers.
//!
//! ```text
//! cargo run --release --example kv_persistence
//! ```

use aurora::apps::kv::{KvServer, PersistMode};
use aurora::apps::workload::{KeyDist, Workload};
use aurora::core::restore::RestoreMode;
use aurora::core::Host;
use aurora::hw::ModelDev;
use aurora::objstore::StoreConfig;
use aurora::sim::SimClock;

const OPS: u64 = 300;

fn boot() -> Host {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 512 * 1024));
    Host::boot("kv", dev, StoreConfig::default()).expect("boot")
}

fn main() {
    println!("{OPS} durable zipfian mutations per strategy\n");
    println!(
        "{:<26} {:>12} {:>12} {:>16} {:>20}",
        "strategy", "total", "mean/op", "worst stall", "recovered after crash"
    );

    for (label, mode) in [
        ("fork snapshot (RDB)", PersistMode::ForkSnapshot { every: OPS / 3 }),
        ("WAL + fsync (AOF)", PersistMode::WalFsync),
        ("Aurora port (ntflush)", PersistMode::AuroraPort),
        ("Aurora transparent", PersistMode::AuroraTransparent),
    ] {
        let mut host = boot();
        let mut server = KvServer::start(&mut host, mode, 32 << 20, 8192).expect("server");
        let gid = server.gid;
        let mut w = Workload::new(7, 1024, 64, 0.0, KeyDist::Zipfian { theta: 0.99 });

        let start = host.clock.now();
        let mut worst = aurora::sim::time::SimDuration::ZERO;
        // Uniform client inter-arrival gap so transparent mode's periodic
        // checkpointing has a timeline to ride on.
        let think = aurora::sim::time::SimDuration::from_micros(100);
        for i in 0..OPS {
            let op = w.next_op();
            host.clock.charge(think);
            let t0 = host.clock.now();
            server.exec(&mut host, &op).expect("op");
            if mode == PersistMode::AuroraTransparent {
                host.checkpoint_tick(gid.expect("gid")).expect("tick");
            }
            if mode == PersistMode::AuroraPort && (i + 1) % (OPS / 3) == 0 {
                server.aurora_checkpoint(&mut host).expect("ckpt");
            }
            worst = worst.max(host.clock.now().since(t0));
        }
        let total = host.clock.now().since(start).saturating_sub(think * OPS);
        let keys_before = server.len(&mut host).expect("len");
        // Let in-flight flushes land before the crash (fair to all modes).
        if let Some(gid) = gid {
            host.wait_durable(gid).expect("durable");
        }

        // Crash and recover with the strategy's own mechanism.
        let mut host = host.crash_and_reboot().expect("reboot");
        let recovered = match mode {
            PersistMode::ForkSnapshot { every } => {
                KvServer::recover_rdb(&mut host, 32 << 20, 8192, every)
                    .map(|s| s.len(&mut host).unwrap_or(0))
                    .unwrap_or(0)
            }
            PersistMode::WalFsync => KvServer::recover_wal(&mut host, 32 << 20, 8192)
                .map(|s| s.len(&mut host).unwrap_or(0))
                .unwrap_or(0),
            PersistMode::AuroraPort => {
                let store = host.sls.primary.clone();
                let head = store.borrow().head().expect("head");
                let r = host.restore(&store, head, RestoreMode::Eager).expect("restore");
                let pid = r.root_pid().expect("pid");
                KvServer::recover_aurora_port(&mut host, pid, gid.expect("gid"))
                    .map(|s| s.len(&mut host).unwrap_or(0))
                    .unwrap_or(0)
            }
            PersistMode::AuroraTransparent => {
                let store = host.sls.primary.clone();
                let head = store.borrow().head().expect("head");
                let r = host.restore(&store, head, RestoreMode::Eager).expect("restore");
                let pid = r.root_pid().expect("pid");
                KvServer::attach(&mut host, pid, mode)
                    .map(|s| s.len(&mut host).unwrap_or(0))
                    .unwrap_or(0)
            }
            PersistMode::None => 0,
        };

        println!(
            "{label:<26} {:>12} {:>10.1}us {:>16} {:>13} / {} keys",
            format!("{total}"),
            (total / OPS).as_micros_f64(),
            format!("{}", worst.max(server.snapshot_stalls)),
            recovered,
            keys_before,
        );
    }
    println!("\nAurora port: durable per-op like the WAL, cheaper flushes, and no fsync semantics.");
    println!("Aurora transparent: zero persistence code; recovers to the last periodic checkpoint.");
}
