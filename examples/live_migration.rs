//! Live migration of a running application between hosts (`sls send`
//! / `sls recv` plus iterative pre-copy, §3.1).
//!
//! ```text
//! cargo run --release --example live_migration
//! ```

use aurora::apps::kv::{KvOp, KvServer, PersistMode};
use aurora::core::migrate::live_migrate;
use aurora::core::Host;
use aurora::hw::{LinkModel, ModelDev};
use aurora::objstore::StoreConfig;
use aurora::sim::SimClock;

fn boot(name: &str, clock: std::sync::Arc<aurora::sim::SimClock>) -> Host {
    let dev = Box::new(ModelDev::nvme(clock, &format!("{name}-nvme"), 256 * 1024));
    Host::boot(name, dev, StoreConfig::default()).expect("boot")
}

fn main() {
    // Two machines on one virtual timeline, joined by 10 GbE.
    let clock = SimClock::new();
    let mut src = boot("src", clock.clone());
    let mut dst = boot("dst", clock.clone());
    let mut link = LinkModel::ten_gbe(clock.clone());

    // A KV server with real data on the source.
    let mut server = KvServer::start(&mut src, PersistMode::None, 16 << 20, 2048).expect("server");
    for i in 0..500u32 {
        server
            .exec(
                &mut src,
                &KvOp::Set(
                    format!("key:{i}").into_bytes(),
                    format!("value {i} lives on the source").into_bytes(),
                ),
            )
            .expect("op");
    }
    let gid = src.persist("kv", server.pid).expect("persist");
    println!(
        "source: kv server with {} keys, {} ops executed",
        server.len(&mut src).expect("len"),
        server.ops_executed(&src)
    );

    // Live-migrate with iterative pre-copy.
    let stats = live_migrate(&mut src, &mut dst, gid, &mut link, 6).expect("migrate");
    println!("\nmigration rounds:");
    for (i, bytes) in stats.round_bytes.iter().enumerate() {
        println!(
            "  round {}: {:>10} bytes {}",
            i + 1,
            bytes,
            if i == 0 { "(full image)" } else { "(delta)" }
        );
    }
    println!(
        "total {} bytes over the wire; source downtime {}",
        stats.total_bytes, stats.downtime
    );

    // The destination instance has everything and keeps serving.
    let new_pid = stats.restore.root_pid().expect("pid");
    let mut server = KvServer::attach(&mut dst, new_pid, PersistMode::None).expect("attach");
    println!(
        "\ndestination: {} keys, {} ops executed",
        server.len(&mut dst).expect("len"),
        server.ops_executed(&dst)
    );
    let v = server
        .exec(&mut dst, &KvOp::Get(b"key:123".to_vec()))
        .expect("get")
        .expect("present");
    println!("  key:123 = {:?}", String::from_utf8_lossy(&v));
    println!("  processes left on the source: {}", src.kernel.procs.len());
}
