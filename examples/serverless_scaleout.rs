//! Serverless scale-out on Aurora (§4 of the paper).
//!
//! Builds function images (checkpoints of initialized runtimes), then:
//! * shows cold-start latencies for eager / lazy / prefetch restores,
//! * scales one function to many instances,
//! * shows the object store deduplicating images (density), and
//! * shows instances warming each other up through shared frames.
//!
//! ```text
//! cargo run --release --example serverless_scaleout
//! ```

use aurora::apps::serverless;
use aurora::core::restore::RestoreMode;
use aurora_bench_shim::*;

/// Tiny local shim so the example is self-contained.
mod aurora_bench_shim {
    use aurora::core::Host;
    use aurora::hw::ModelDev;
    use aurora::objstore::StoreConfig;
    use aurora::sim::SimClock;

    pub fn boot() -> Host {
        let clock = SimClock::new();
        let dev = Box::new(ModelDev::nvme(clock, "nvme0", 1 << 20));
        Host::boot("serverless", dev, StoreConfig::default()).expect("boot")
    }
}

fn main() {
    let mut host = boot();

    // Deploy: build 6 functions sharing one 512-page runtime.
    let mut images = Vec::new();
    let blocks0 = host.sls.primary.borrow().blocks_in_use();
    let mut prev = blocks0;
    for i in 0..6u64 {
        let image = serverless::build_image(&mut host, &format!("fn-{i}"), 512, 16, 0xF00 + i)
            .expect("image");
        let used = host.sls.primary.borrow().blocks_in_use();
        println!(
            "deployed fn-{i}: store now {} blocks (+{} for this function)",
            used,
            used - prev
        );
        prev = used;
        images.push(image);
    }
    let per_image = (host.sls.primary.borrow().blocks_in_use() - blocks0) as f64 / 6.0;
    println!(
        "average {per_image:.0} blocks/function for a 528-page image — dedup pays for the runtime\n"
    );

    // Cold starts: three restore strategies for the same image.
    for (label, mode) in [
        ("eager   ", RestoreMode::Eager),
        ("lazy    ", RestoreMode::Lazy),
        ("prefetch", RestoreMode::LazyPrefetch),
    ] {
        let t0 = host.clock.now();
        let (inst, bd) = serverless::instantiate(&mut host, &images[0], mode).expect("instantiate");
        let latency = host.clock.now().since(t0);
        let lat = serverless::invoke(&mut host, &images[0], inst, 32).expect("invoke");
        println!(
            "{label} start: restore {latency} ({} pages paged in), first invocation {lat}",
            bd.pages_prefetched
        );
        serverless::retire(&mut host, inst).expect("retire");
    }

    // Scale-out: 20 instances of fn-0, invoked round-robin.
    println!("\nscaling fn-0 to 20 instances:");
    let mut instances = Vec::new();
    let t0 = host.clock.now();
    for _ in 0..20 {
        let (inst, _) =
            serverless::instantiate(&mut host, &images[0], RestoreMode::Lazy).expect("instantiate");
        instances.push(inst);
    }
    println!(
        "  20 lazy restores in {} total virtual time",
        host.clock.now().since(t0)
    );

    let majors0 = host.kernel.vm.stats.major_faults;
    let mut first = None;
    let mut rest = aurora::sim::time::SimDuration::ZERO;
    for (i, inst) in instances.iter().enumerate() {
        let lat = serverless::invoke(&mut host, &images[0], *inst, 32).expect("invoke");
        if i == 0 {
            first = Some(lat);
        } else {
            rest += lat;
        }
    }
    println!(
        "  first invocation {} ({} major faults — the cold-start section above already \n\
         warmed the shared image cache, so instances start hot)",
        first.expect("ran"),
        host.kernel.vm.stats.major_faults - majors0
    );
    println!(
        "  later invocations averaged {} — instances share frames and warm each other up",
        rest / 19
    );
}
