//! Multi-process application with shared memory — the "Firefox case".
//!
//! Aurora's breadth claim is that it checkpoints applications "composed
//! of processes that share memory or files in arbitrary ways". This
//! example runs a worker-pool KV store: one leader, three forked
//! workers, all serving from a single System V shared-memory segment —
//! then crashes the machine and restores the whole tree, shared segment
//! and per-worker CPU state included.
//!
//! ```text
//! cargo run --release --example worker_pool
//! ```

use aurora::apps::kv::KvOp;
use aurora::apps::pool::KvPool;
use aurora::core::restore::RestoreMode;
use aurora::core::Host;
use aurora::hw::ModelDev;
use aurora::objstore::StoreConfig;
use aurora::posix::Pid;
use aurora::sim::SimClock;

fn main() {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 128 * 1024));
    let mut host = Host::boot("pool-demo", dev, StoreConfig::default()).expect("boot");

    // Leader + 3 workers over one 4 MiB shared segment.
    let mut pool = KvPool::start(&mut host, 3, 42, 4 << 20).expect("pool");
    println!(
        "pool: leader pid {} + workers {:?}",
        pool.leader.0,
        pool.workers.iter().map(|p| p.0).collect::<Vec<_>>()
    );

    // 60 writes round-robin across the workers.
    for i in 0..60u32 {
        pool.exec(
            &mut host,
            &KvOp::Set(format!("item:{i}").into_bytes(), format!("payload {i}").into_bytes()),
        )
        .expect("op");
    }
    println!(
        "loaded {} keys; per-process ops served: {:?}",
        pool.len(&mut host).expect("len"),
        pool.served_counts(&host).expect("counts")
    );

    // One checkpoint captures the WHOLE tree; the shared segment is one
    // object, captured once, no matter how many processes map it.
    let gid = host.persist("kv-pool", pool.leader).expect("persist");
    let bd = host.checkpoint(gid, true, None).expect("checkpoint");
    println!(
        "checkpointed 4 processes + shared segment: {} pages, stop {}",
        bd.pages, bd.stop_time
    );
    host.clock.advance_to(bd.durable_at);

    // Machine crash. Everything dies.
    let mut host = host.crash_and_reboot().expect("reboot");
    println!("\n-- machine crashed and rebooted --\n");

    let store = host.sls.primary.clone();
    let head = store.borrow().head().expect("image survived");
    let r = host.restore(&store, head, RestoreMode::Eager).expect("restore");
    let leader = r.restored_pid(pool.leader.0).expect("leader");
    let workers: Vec<Pid> = pool
        .workers
        .iter()
        .map(|w| r.restored_pid(w.0).expect("worker"))
        .collect();
    let restored = KvPool::attach(&mut host, leader, workers, 42).expect("attach");

    println!(
        "restored: {} keys; per-process ops served (from restored registers): {:?}",
        restored.len(&mut host).expect("len"),
        restored.served_counts(&host).expect("counts")
    );

    // Shared-memory coherence still holds across the restored tree.
    restored
        .exec_on(
            &mut host,
            restored.workers[1],
            &KvOp::Set(b"written-by".to_vec(), b"worker 1, after restore".to_vec()),
        )
        .expect("op");
    let seen = restored
        .exec_on(&mut host, restored.leader, &KvOp::Get(b"written-by".to_vec()))
        .expect("op")
        .expect("visible");
    println!(
        "worker 1 wrote, leader reads: {:?} — shared memory stayed shared",
        String::from_utf8_lossy(&seen)
    );
}
