//! Time-travel debugging with Aurora checkpoints (§4).
//!
//! A counter app runs with periodic checkpoints; a "bug" silently
//! corrupts one of its invariants partway through. We bisect the
//! checkpoint history to find the first bad image, inspect it, and roll
//! the live application back to the last good state.
//!
//! ```text
//! cargo run --example timetravel_debug
//! ```

use aurora::core::restore::RestoreMode;
use aurora::core::Host;
use aurora::hw::ModelDev;
use aurora::objstore::{CkptId, StoreConfig};
use aurora::posix::Pid;
use aurora::sim::SimClock;

/// The invariant: the app's two counters must stay equal. The "bug"
/// stops updating the second one after step 13.
fn step(host: &mut Host, pid: Pid) {
    let a = host.kernel.get_reg(pid, 0).expect("reg") + 1;
    host.kernel.set_reg(pid, 0, a).expect("reg");
    if a <= 13 {
        host.kernel.set_reg(pid, 1, a).expect("reg");
    }
}

fn invariant_holds(host: &Host, pid: Pid) -> bool {
    host.kernel.get_reg(pid, 0).expect("reg") == host.kernel.get_reg(pid, 1).expect("reg")
}

/// Restores a checkpoint on the side and checks the invariant there.
fn check_image(host: &mut Host, ckpt: CkptId) -> bool {
    let store = host.sls.primary.clone();
    let r = host
        .restore(&store, ckpt, RestoreMode::Eager)
        .expect("restore");
    let pid = r.root_pid().expect("pid");
    let ok = invariant_holds(host, pid);
    // Clean the probe up.
    let _ = host.kernel.exit(pid, 0);
    host.kernel.procs.remove(&pid);
    ok
}

fn main() {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 64 * 1024));
    let mut host = Host::boot("debugger", dev, StoreConfig::default()).expect("boot");

    let pid = host.kernel.spawn("buggy-app");
    host.kernel.mmap_anon(pid, 4096, false).expect("map");
    let gid = host.persist("buggy-app", pid).expect("persist");

    // Run 20 steps, checkpointing after each (Aurora's incremental
    // checkpoints leave old ones intact — a browsable history).
    let mut history = Vec::new();
    for i in 1..=20u64 {
        step(&mut host, pid);
        let bd = host
            .checkpoint(gid, false, Some(&format!("step-{i}")))
            .expect("checkpoint");
        history.push((i, bd.ckpt.expect("id")));
    }
    println!(
        "ran 20 steps with a checkpoint each; live invariant holds: {}",
        invariant_holds(&host, pid)
    );

    // Bisect the history for the first violating checkpoint.
    let mut lo = 0usize; // Known good (index into history).
    let mut hi = history.len() - 1; // Known bad.
    assert!(check_image(&mut host, history[lo].1), "step 1 is good");
    assert!(!check_image(&mut host, history[hi].1), "step 20 is bad");
    let mut probes = 0;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        probes += 1;
        if check_image(&mut host, history[mid].1) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    println!(
        "bisected in {probes} probes: invariant first broken at step {} (checkpoint {:?})",
        history[hi].0, history[hi].1
    );
    println!("last good state: step {} (checkpoint {:?})", history[lo].0, history[lo].1);

    // Roll the live application back to the last good state.
    let r = host.rollback(gid, Some(history[lo].1)).expect("rollback");
    let new_pid = r.root_pid().expect("pid");
    println!(
        "rolled back: live counter = {} (invariant holds: {}), rollback notified: {}",
        host.kernel.get_reg(new_pid, 0).expect("reg"),
        invariant_holds(&host, new_pid),
        host.sls_rollback_pending(new_pid),
    );
}
