//! Quickstart: transparent persistence in a dozen lines.
//!
//! Runs the hello-world app, checkpoints it transparently, crashes the
//! whole machine, and restores the application mid-run.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use aurora::apps::hello::HelloApp;
use aurora::core::restore::RestoreMode;
use aurora::core::Host;
use aurora::hw::ModelDev;
use aurora::objstore::StoreConfig;
use aurora::sim::SimClock;

fn main() {
    // Boot a simulated machine: kernel + SLS on an NVMe-class store.
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 64 * 1024));
    let mut host = Host::boot("quickstart", dev, StoreConfig::default()).expect("boot");

    // The application never writes a line of persistence code.
    let app = HelloApp::start(&mut host).expect("start");
    for _ in 0..7 {
        app.step(&mut host).expect("step");
    }
    println!("before checkpoint: {}", app.greeting(&mut host).expect("greeting"));

    // `sls persist` + one checkpoint.
    let gid = host.persist("hello", app.pid).expect("persist");
    let bd = host.checkpoint(gid, true, Some("demo")).expect("checkpoint");
    println!(
        "checkpointed: {} pages, stop time {}, durable at {}",
        bd.pages, bd.stop_time, bd.durable_at
    );
    host.clock.advance_to(bd.durable_at);

    // More work that the crash will eat.
    for _ in 0..5 {
        app.step(&mut host).expect("step");
    }
    println!("at crash time:    {}", app.greeting(&mut host).expect("greeting"));

    // Power failure: every process dies; the store recovers.
    let mut host = host.crash_and_reboot().expect("reboot");
    println!("\n-- machine crashed and rebooted --\n");

    let store = host.sls.primary.clone();
    let head = store.borrow().head().expect("checkpoint survived");
    let r = host
        .restore(&store, head, RestoreMode::Eager)
        .expect("restore");
    println!(
        "restored in {} (object store read {}, memory {}, metadata {})",
        r.total, r.objstore_read, r.memory_state, r.metadata_state
    );

    let app = HelloApp::attach(&host, r.root_pid().expect("pid")).expect("attach");
    println!("after restore:    {}", app.greeting(&mut host).expect("greeting"));
    let next = app.step(&mut host).expect("step");
    println!("and it keeps running: step #{next}");
}
